"""Structured JSON logging for the serving tier.

One JSON object per line on stderr: timestamp, level, logger name,
event, the current trace id, and whatever key/value fields the call
site attaches (``code=...`` for the HTTP error vocabulary, ``key=...``
for the session, a formatted ``traceback`` on exceptions).  This
replaces the ad-hoc ``BaseHTTPRequestHandler`` stderr lines and bare
``print`` calls — server-side faults used to vanish whenever stdout
was not a TTY; now they are grep-able and carry the trace id of the
request that hit them.

Built on :mod:`logging` so the standard ecosystem keeps working:
records propagate to the root logger (pytest's ``caplog`` sees them),
levels are the stdlib levels, and an application that wants different
routing can call :func:`configure` with its own stream — or attach its
own handlers to the ``"repro"`` logger before first use, in which case
:func:`get_logger` attaches nothing.

    >>> log = get_logger("repro.doctest")
    >>> log.info("session frozen", key="sensor-1", reason="ttl")
"""

from __future__ import annotations

import json
import logging
import sys
import threading
import time
import traceback
from typing import Optional, TextIO

from . import tracing

__all__ = [
    "JsonFormatter",
    "StructuredLogger",
    "configure",
    "get_logger",
]

#: Every serving-tier logger lives under this namespace; the default
#: JSON handler is attached here exactly once.
ROOT_LOGGER_NAME = "repro"

_configure_lock = threading.Lock()
_configured = False


class JsonFormatter(logging.Formatter):
    """Render a record as one compact JSON object per line."""

    def format(self, record: logging.LogRecord) -> str:
        created = time.gmtime(record.created)
        payload = {
            "ts": (
                time.strftime("%Y-%m-%dT%H:%M:%S", created)
                + f".{int(record.msecs):03d}Z"
            ),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": record.getMessage(),
        }
        fields = getattr(record, "structured", None)
        if isinstance(fields, dict):
            payload.update(fields)
        if record.exc_info and "traceback" not in payload:
            payload["traceback"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str, separators=(", ", ": "))


def configure(
    stream: Optional[TextIO] = None,
    level: int = logging.INFO,
    force: bool = False,
) -> logging.Logger:
    """Attach the JSON handler to the ``"repro"`` logger, once.

    A no-op when the logger already has handlers (an embedding
    application routed it first) unless ``force`` replaces them.
    Records still propagate upward, so test harness capture works.
    """
    global _configured
    logger = logging.getLogger(ROOT_LOGGER_NAME)
    with _configure_lock:
        if force:
            for handler in list(logger.handlers):
                logger.removeHandler(handler)
            _configured = False
        if _configured or logger.handlers:
            _configured = True
            return logger
        handler = logging.StreamHandler(
            stream if stream is not None else sys.stderr
        )
        handler.setFormatter(JsonFormatter())
        logger.addHandler(handler)
        logger.setLevel(level)
        _configured = True
    return logger


class StructuredLogger:
    """A thin field-carrying wrapper over a stdlib logger.

    Methods take an *event* (a short, stable, human-grep-able string)
    plus arbitrary key/value fields; the current trace id is attached
    automatically so one request's log lines correlate with its spans.
    """

    __slots__ = ("_logger",)

    def __init__(self, logger: logging.Logger) -> None:
        self._logger = logger

    @property
    def name(self) -> str:
        return self._logger.name

    def _log(self, level: int, event: str, fields: dict) -> None:
        if not self._logger.isEnabledFor(level):
            return
        trace_id = tracing.current_trace_id()
        if trace_id is not None and "trace_id" not in fields:
            fields["trace_id"] = trace_id
        self._logger.log(level, event, extra={"structured": fields})

    def debug(self, event: str, **fields: object) -> None:
        self._log(logging.DEBUG, event, fields)

    def info(self, event: str, **fields: object) -> None:
        self._log(logging.INFO, event, fields)

    def warning(self, event: str, **fields: object) -> None:
        self._log(logging.WARNING, event, fields)

    def error(self, event: str, **fields: object) -> None:
        self._log(logging.ERROR, event, fields)

    def exception(self, event: str, **fields: object) -> None:
        """``error`` with the in-flight exception's traceback attached."""
        fields.setdefault("traceback", traceback.format_exc())
        self._log(logging.ERROR, event, fields)


def get_logger(name: str) -> StructuredLogger:
    """The serving tier's logger factory (configures JSON output once)."""
    configure()
    return StructuredLogger(logging.getLogger(name))
