"""End-to-end observability: metrics, request tracing, structured logs.

A dependency-free layer threaded through every tier of the serving
stack — see ``docs/ARCHITECTURE.md`` ("Observability") for the metric
name table, the span hierarchy and the trace propagation rules.

* :mod:`repro.obs.metrics` — a thread-safe registry of counters,
  gauges and histograms (fixed log-scale latency buckets) with
  ``snapshot()`` and Prometheus text exposition, rendered by the HTTP
  front end's ``GET /metrics``.  Timing instrumentation is zero-cost
  when disarmed: one module-global read, in the style of
  :mod:`repro.util.failpoints`.
* :mod:`repro.obs.tracing` — lightweight spans under a ``trace_id``
  carried in a :class:`contextvars.ContextVar` and propagated via the
  ``X-Repro-Trace`` HTTP header and a ``trace_id`` field in the PTAF
  envelope meta, so one id follows a request HTTP → store → WAL →
  coordinator → remote reducer.
* :mod:`repro.obs.logs` — structured JSON logging (logger name, level,
  trace id, error code) replacing the serving tier's ad-hoc prints.
"""

from .logs import JsonFormatter, StructuredLogger, configure, get_logger
from .metrics import (
    LATENCY_BUCKETS,
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    counter,
    disabled,
    enabled,
    gauge,
    histogram,
    render,
    set_enabled,
    snapshot,
    value,
)
from .tracing import (
    TRACE_HEADER,
    SpanRecord,
    attach,
    clear_spans,
    current_trace_id,
    finished_spans,
    new_trace_id,
    record_span,
    span,
    trace,
    valid_trace_id,
)

__all__ = [
    "LATENCY_BUCKETS",
    "REGISTRY",
    "TRACE_HEADER",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonFormatter",
    "MetricError",
    "MetricsRegistry",
    "SpanRecord",
    "StructuredLogger",
    "attach",
    "clear_spans",
    "configure",
    "counter",
    "current_trace_id",
    "disabled",
    "enabled",
    "finished_spans",
    "gauge",
    "get_logger",
    "histogram",
    "new_trace_id",
    "record_span",
    "render",
    "set_enabled",
    "snapshot",
    "span",
    "trace",
    "valid_trace_id",
]
