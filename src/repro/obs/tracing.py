"""Lightweight request tracing: a trace id in a ``ContextVar`` + spans.

A *trace id* is a short opaque token identifying one logical request.
It is carried in :data:`_current` (a :class:`contextvars.ContextVar`,
so concurrent requests on the threaded HTTP server never observe each
other's id) and propagated across process boundaries two ways:

* the ``X-Repro-Trace`` HTTP header (:data:`TRACE_HEADER`) — the front
  end adopts a valid client-supplied id, mints one otherwise, and
  echoes it on every response;
* a ``trace_id`` field in the PTAF envelope meta — the cluster
  coordinator stamps it into every shard request and every replicated
  push frame, and :class:`~repro.cluster.worker.ReducerWorker` adopts
  it before reducing, so one id follows a request from the HTTP edge
  through the store, the WAL and out to the remote reducers (including
  across coordinator retries, which re-send the same envelope).

A *span* is one timed stage of that request (``wal_append``, ``fsync``,
``snapshot_delta``, ``shard_reduce``, ``frontier_merge``,
``replicate_ack``, ...).  Finishing a span feeds the
``repro_stage_seconds{stage=...}`` histogram and appends a
:class:`SpanRecord` to a bounded in-memory ring — enough to answer
"where did this slow push spend its time" from a live process (and for
the tests to assert end-to-end propagation) without a collector
dependency.  When observability is disarmed (:func:`metrics.enabled`
is ``False``), :func:`span` returns a shared no-op context manager:
the cost is one global read, no clock call, no allocation.

Plain threads do **not** inherit context variables, so code that fans
out to an executor must capture :func:`current_trace_id` first and
re-enter it in the worker via :func:`attach` — see
:func:`repro.cluster.coordinator.reduce_cluster`.
"""

from __future__ import annotations

import re
import threading
import uuid
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from time import perf_counter
from typing import ContextManager, Deque, Dict, Iterator, List, Optional

from . import metrics

__all__ = [
    "TRACE_HEADER",
    "SpanRecord",
    "attach",
    "clear_spans",
    "current_trace_id",
    "finished_spans",
    "new_trace_id",
    "record_span",
    "span",
    "trace",
    "valid_trace_id",
]

#: HTTP header carrying the trace id, both directions.
TRACE_HEADER = "X-Repro-Trace"

#: Accepted ids: short, URL/log-safe tokens.  Anything else from the
#: outside world (headers, envelopes) is ignored and a fresh id minted,
#: so untrusted bytes never reach the logs or the span ring verbatim.
_TRACE_ID_RE = re.compile(r"^[A-Za-z0-9_-]{1,64}$")

_current: ContextVar[Optional[str]] = ContextVar(
    "repro_trace_id", default=None
)


@dataclass(frozen=True)
class SpanRecord:
    """One finished span: which request, which stage, how long."""

    trace_id: str
    stage: str
    seconds: float


#: Bounded ring of recently finished spans (newest last).
_SPAN_RING_SIZE = 2048
_spans: Deque[SpanRecord] = deque(maxlen=_SPAN_RING_SIZE)
_spans_lock = threading.Lock()

#: Per-stage histogram children, cached so finishing a span is one dict
#: lookup instead of a registry round trip.
_stage_histograms: Dict[str, metrics.Histogram] = {}
_stage_lock = threading.Lock()


def new_trace_id() -> str:
    """Mint a fresh 16-hex-char trace id."""
    return uuid.uuid4().hex[:16]


def valid_trace_id(trace_id: object) -> bool:
    """Is this a well-formed trace id we accept from the outside?"""
    return isinstance(trace_id, str) and bool(_TRACE_ID_RE.match(trace_id))


def current_trace_id() -> Optional[str]:
    """The trace id of the current context, if any."""
    return _current.get()


@contextmanager
def trace(trace_id: Optional[str] = None) -> Iterator[str]:
    """Enter a trace context: adopt a valid supplied id or mint one.

    Yields the effective id (what the HTTP front end echoes back).
    """
    effective = (
        trace_id if trace_id is not None and valid_trace_id(trace_id)
        else new_trace_id()
    )
    token = _current.set(effective)
    try:
        yield effective
    finally:
        _current.reset(token)


@contextmanager
def attach(trace_id: Optional[str]) -> Iterator[None]:
    """Adopt a propagated id (envelope meta, captured before a thread
    hop); a ``None`` or malformed id leaves the context untouched."""
    if trace_id is None or not valid_trace_id(trace_id):
        yield
        return
    token = _current.set(trace_id)
    try:
        yield
    finally:
        _current.reset(token)


class _NoopSpan:
    """Shared do-nothing span for the disarmed path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NOOP = _NoopSpan()


class _Span:
    __slots__ = ("_t0", "stage")

    def __init__(self, stage: str) -> None:
        self.stage = stage
        self._t0 = 0.0

    def __enter__(self) -> "_Span":
        self._t0 = perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        record_span(self.stage, perf_counter() - self._t0)


def span(stage: str) -> ContextManager[object]:
    """Time one stage of the current request.

    One global read when disarmed; when armed, the elapsed wall time is
    recorded into ``repro_stage_seconds{stage=...}`` and the span ring
    under the current trace id.
    """
    if not metrics.enabled():
        return _NOOP
    return _Span(stage)


def record_span(stage: str, seconds: float) -> None:
    """Record an already-measured stage duration (span exit path)."""
    trace_id = _current.get() or ""
    with _spans_lock:
        _spans.append(SpanRecord(trace_id, stage, seconds))
    histogram = _stage_histograms.get(stage)
    if histogram is None:
        with _stage_lock:
            histogram = _stage_histograms.get(stage)
            if histogram is None:
                histogram = metrics.REGISTRY.histogram(
                    "repro_stage_seconds",
                    "Wall time per pipeline stage, labeled by stage name.",
                    stage=stage,
                )
                _stage_histograms[stage] = histogram
    histogram.observe(seconds)


def finished_spans(
    trace_id: Optional[str] = None, stage: Optional[str] = None
) -> List[SpanRecord]:
    """Recently finished spans, oldest first, optionally filtered."""
    with _spans_lock:
        records = list(_spans)
    if trace_id is not None:
        records = [r for r in records if r.trace_id == trace_id]
    if stage is not None:
        records = [r for r in records if r.stage == stage]
    return records


def clear_spans() -> None:
    """Empty the span ring (test isolation)."""
    with _spans_lock:
        _spans.clear()
    with _stage_lock:
        _stage_histograms.clear()
