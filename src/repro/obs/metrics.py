"""Dependency-free metrics: counters, gauges, histograms, Prometheus text.

The registry is the serving tier's single source of truth for runtime
counters: the HTTP front end, :class:`~repro.service.store.SessionStore`,
:class:`~repro.service.query.QueryEngine` and the shard/cluster reducers
all register their series here, ``GET /metrics`` renders them in the
Prometheus text exposition format, and ``/stats`` reads the store's
counters back *through* the registry rather than keeping a parallel set
of instance attributes.

Design rules, in priority order:

* **Stdlib only.**  Like the rest of the serving tier there is no
  client-library dependency; the exposition format is written by hand
  (it is a stable, line-oriented text format).
* **Zero cost when disabled.**  Mirroring the arming pattern of
  :mod:`repro.util.failpoints` (one module-global read on the hot
  path), timing instrumentation guards on :func:`enabled` — a single
  global read — and skips the clock calls and histogram updates
  entirely when observability is switched off.  The *store's* plain
  counters (pushed segments, evictions, disk errors) are *not* gated:
  they are one lock-protected addition on an already-locked slow path
  and the legacy ``/stats`` fields must stay truthful either way.  The
  query engine's counters ride the arming switch, keeping the warm
  read path lock-free when disarmed.  The residual overhead of
  the disabled mode on the warm query path is gated at ≤ 1.05× by
  ``benchmarks/bench_service.py`` (the ``metrics_disabled_overhead``
  series in ``BENCH_service.json``).
* **Thread safe.**  Every metric object carries its own lock; the
  registry itself is guarded by an ``RLock``.  Registration is
  idempotent — asking for an existing ``(name, labels)`` child returns
  the same object, so instances may re-register freely in ``__init__``.

Metric families follow Prometheus conventions: a family has one type
and help string; children are addressed by label values.  Counters end
in ``_total``, histograms in ``_seconds`` with log-scale latency
buckets (:data:`LATENCY_BUCKETS`, half-decade steps from 1 µs to 10 s).
"""

from __future__ import annotations

import os
import re
import threading
from bisect import bisect_left
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple, Union

__all__ = [
    "LATENCY_BUCKETS",
    "REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "counter",
    "disabled",
    "enabled",
    "gauge",
    "histogram",
    "render",
    "set_enabled",
    "snapshot",
    "value",
]


class MetricError(ValueError):
    """Invalid metric name, label, amount, or a conflicting registration."""


#: Fixed log-scale latency buckets: half-decade steps, 1 µs .. 10 s.
#: Small enough to render compactly, wide enough to cover a cache-hit
#: snapshot query (~10 µs) and a cold cluster reduction (~seconds).
LATENCY_BUCKETS: Tuple[float, ...] = tuple(
    round(10.0 ** (exponent / 2.0), 12) for exponent in range(-12, 3)
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: The failpoints-style arming global: hot paths read this once and skip
#: all timing work when it is ``False``.  Latency-critical call sites
#: (the warm snapshot-query path) read the module attribute directly —
#: ``if _metrics.armed:`` — one dict lookup, no call frame; everything
#: else goes through :func:`enabled`.  Always read it as an attribute
#: of the module: ``from .metrics import armed`` would freeze the value
#: at import time.  Counters feeding ``/stats`` ignore it — see the
#: module docstring.
armed: bool = os.environ.get("REPRO_OBS", "").lower() not in (
    "0",
    "off",
    "false",
    "no",
    "disabled",
)


def enabled() -> bool:
    """One global read: is timing instrumentation armed?"""
    return armed


def set_enabled(on: bool) -> bool:
    """Arm or disarm timing instrumentation; returns the previous state."""
    global armed
    previous = armed
    armed = bool(on)
    return previous


@contextmanager
def disabled() -> Iterator[None]:
    """Temporarily disarm timing instrumentation (benchmarks, tests)."""
    previous = set_enabled(False)
    try:
        yield
    finally:
        set_enabled(previous)


_LabelValues = Tuple[Tuple[str, str], ...]


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricError(
                f"counters only go up; cannot inc() by {amount!r}"
            )
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram; ``le`` semantics match Prometheus.

    An observation equal to a bucket edge counts into that bucket
    (upper edges are inclusive); anything above the last edge lands in
    the implicit ``+Inf`` overflow bucket.
    """

    __slots__ = ("_buckets", "_counts", "_lock", "_sum")

    def __init__(self, buckets: Tuple[float, ...] = LATENCY_BUCKETS) -> None:
        if not buckets:
            raise MetricError("a histogram needs at least one bucket edge")
        if any(b2 <= b1 for b1, b2 in zip(buckets, buckets[1:])):
            raise MetricError(
                f"bucket edges must be strictly increasing: {buckets!r}"
            )
        self._buckets = tuple(float(b) for b in buckets)
        self._counts = [0] * (len(self._buckets) + 1)
        self._sum = 0.0
        self._lock = threading.Lock()

    @property
    def buckets(self) -> Tuple[float, ...]:
        return self._buckets

    def observe(self, value: float) -> None:
        index = bisect_left(self._buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value

    @property
    def count(self) -> int:
        with self._lock:
            return sum(self._counts)

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def cumulative(self) -> List[Tuple[float, int]]:
        """``(upper_edge, cumulative_count)`` pairs, ``+Inf`` last."""
        with self._lock:
            counts = list(self._counts)
        edges = list(self._buckets) + [float("inf")]
        running = 0
        out: List[Tuple[float, int]] = []
        for edge, count in zip(edges, counts):
            running += count
            out.append((edge, running))
        return out


_Metric = Union[Counter, Gauge, Histogram]


class _Family:
    """One named family: a type, a help string, children per label set."""

    __slots__ = ("buckets", "children", "help", "kind", "label_names", "name")

    def __init__(
        self,
        name: str,
        kind: str,
        help_text: str,
        buckets: Optional[Tuple[float, ...]],
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.buckets = buckets
        self.label_names: Optional[Tuple[str, ...]] = None
        self.children: Dict[_LabelValues, _Metric] = {}


class MetricsRegistry:
    """Thread-safe family registry with Prometheus text exposition."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._families: Dict[str, _Family] = {}

    # ------------------------------------------------------------------
    # Registration (idempotent)
    # ------------------------------------------------------------------
    def counter(self, name: str, help_text: str = "", **labels: str) -> Counter:
        child = self._child("counter", name, help_text, labels, None)
        assert isinstance(child, Counter)
        return child

    def gauge(self, name: str, help_text: str = "", **labels: str) -> Gauge:
        child = self._child("gauge", name, help_text, labels, None)
        assert isinstance(child, Gauge)
        return child

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Tuple[float, ...] = LATENCY_BUCKETS,
        **labels: str,
    ) -> Histogram:
        child = self._child("histogram", name, help_text, labels, buckets)
        assert isinstance(child, Histogram)
        return child

    def _child(
        self,
        kind: str,
        name: str,
        help_text: str,
        labels: Dict[str, str],
        buckets: Optional[Tuple[float, ...]],
    ) -> _Metric:
        if not _NAME_RE.match(name):
            raise MetricError(f"invalid metric name {name!r}")
        for label in labels:
            if not _LABEL_RE.match(label) or label.startswith("__"):
                raise MetricError(f"invalid label name {label!r}")
        key: _LabelValues = tuple(
            (k, str(v)) for k, v in sorted(labels.items())
        )
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, kind, help_text, buckets)
                self._families[name] = family
            elif family.kind != kind:
                raise MetricError(
                    f"metric {name!r} is already registered as a "
                    f"{family.kind}, not a {kind}"
                )
            elif kind == "histogram" and family.buckets != buckets:
                raise MetricError(
                    f"histogram {name!r} is already registered with "
                    f"different buckets"
                )
            names = tuple(k for k, _ in key)
            if family.label_names is None:
                family.label_names = names
            elif family.label_names != names:
                raise MetricError(
                    f"metric {name!r} expects labels "
                    f"{family.label_names!r}, got {names!r}"
                )
            child = family.children.get(key)
            if child is None:
                if kind == "counter":
                    child = Counter()
                elif kind == "gauge":
                    child = Gauge()
                else:
                    assert buckets is not None
                    child = Histogram(buckets)
                family.children[key] = child
            return child

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def value(self, name: str, **labels: str) -> float:
        """Current value of a counter/gauge child; 0.0 when absent."""
        key: _LabelValues = tuple(
            (k, str(v)) for k, v in sorted(labels.items())
        )
        with self._lock:
            family = self._families.get(name)
            child = family.children.get(key) if family is not None else None
        if child is None or isinstance(child, Histogram):
            return 0.0
        return child.value

    def snapshot(self) -> Dict[str, object]:
        """A JSON-able dump of every family and child."""
        with self._lock:
            families = list(self._families.values())
        out: Dict[str, object] = {}
        for family in families:
            samples: List[Dict[str, object]] = []
            with self._lock:
                children = list(family.children.items())
            for key, child in children:
                labels = dict(key)
                if isinstance(child, Histogram):
                    samples.append(
                        {
                            "labels": labels,
                            "count": child.count,
                            "sum": child.sum,
                            "buckets": {
                                _format_value(edge): cum
                                for edge, cum in child.cumulative()
                            },
                        }
                    )
                else:
                    samples.append({"labels": labels, "value": child.value})
            out[family.name] = {
                "type": family.kind,
                "help": family.help,
                "samples": samples,
            }
        return out

    def render(self) -> str:
        """The Prometheus text exposition (version 0.0.4) of the registry."""
        with self._lock:
            families = sorted(self._families.values(), key=lambda f: f.name)
        lines: List[str] = []
        for family in families:
            if family.help:
                lines.append(
                    f"# HELP {family.name} {_escape_help(family.help)}"
                )
            lines.append(f"# TYPE {family.name} {family.kind}")
            with self._lock:
                children = sorted(family.children.items())
            for key, child in children:
                if isinstance(child, Histogram):
                    lines.extend(_render_histogram(family.name, key, child))
                else:
                    lines.append(
                        f"{family.name}{_render_labels(key)} "
                        f"{_format_value(child.value)}"
                    )
        return "\n".join(lines) + "\n" if lines else ""

    def reset(self) -> None:
        """Drop every family (test isolation only).

        Metric objects already handed out keep working, but they are no
        longer rendered; long-lived holders re-register on next use.
        """
        with self._lock:
            self._families.clear()


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(text: str) -> str:
    return (
        text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _render_labels(
    key: _LabelValues, extra: Optional[Tuple[str, str]] = None
) -> str:
    pairs = list(key)
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(value)}"' for name, value in pairs
    )
    return "{" + inner + "}"


def _render_histogram(
    name: str, key: _LabelValues, child: Histogram
) -> List[str]:
    lines = []
    for edge, cum in child.cumulative():
        le = "+Inf" if edge == float("inf") else _format_value(edge)
        lines.append(f"{name}_bucket{_render_labels(key, ('le', le))} {cum}")
    lines.append(f"{name}_sum{_render_labels(key)} {_format_value(child.sum)}")
    lines.append(f"{name}_count{_render_labels(key)} {child.count}")
    return lines


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


#: The process-global registry every layer registers into and
#: ``GET /metrics`` renders.
REGISTRY = MetricsRegistry()


def counter(name: str, help_text: str = "", **labels: str) -> Counter:
    return REGISTRY.counter(name, help_text, **labels)


def gauge(name: str, help_text: str = "", **labels: str) -> Gauge:
    return REGISTRY.gauge(name, help_text, **labels)


def histogram(
    name: str,
    help_text: str = "",
    buckets: Tuple[float, ...] = LATENCY_BUCKETS,
    **labels: str,
) -> Histogram:
    return REGISTRY.histogram(name, help_text, buckets, **labels)


def value(name: str, **labels: str) -> float:
    return REGISTRY.value(name, **labels)


def render() -> str:
    return REGISTRY.render()


def snapshot() -> Dict[str, object]:
    return REGISTRY.snapshot()
