"""The canonical typed surface of the PTA engine: one engine, three doors.

The paper's PTA operator is one conceptual pipeline — aggregate, then
reduce under a size or error budget — and this package is its single typed
description and dispatcher:

* :class:`Plan` — declarative builder
  (``Plan(source).group_by(...).aggregate(...).reduce(budget)``) with all
  validation at build time (:class:`PlanError`);
* :func:`execute` — the one dispatch function mapping a (plan, policy)
  pair onto the exact-DP, online-greedy or sharded-parallel engines,
  returning a unified :class:`Result`;
* :class:`Compressor` — the push-based incremental session for live
  ingest, with non-destructive :meth:`~Compressor.summary` snapshots
  bit-identical to batch runs over the same prefix.

The historical entry points :func:`repro.pta`, :func:`repro.compress` and
:func:`repro.parallel.reduce_segments_parallel` remain supported as thin
shims over :func:`execute`.

The serving layer built on :class:`Compressor` —
:class:`~repro.service.Service`, :class:`~repro.service.SessionStore` and
:class:`~repro.service.QueryEngine` — is re-exported here for
discoverability (resolved lazily to keep ``repro.api`` importable on its
own: :mod:`repro.service` imports this package's submodules).
"""

from typing import Any

from .executor import execute, iter_chunks
from .plan import (
    DEFAULT_CHUNK_SIZE,
    Backend,
    Budget,
    ErrorBudget,
    ExecutionPolicy,
    Method,
    Plan,
    PlanError,
    PlanSource,
    SizeBudget,
    resolve_budget,
    resolve_error_alias,
    validate_chunk_size,
    validate_delta,
    validate_workers_method,
)
from .result import Result
from .session import Compressor

#: Serving-layer names resolved lazily from :mod:`repro.service` (PEP 562).
_SERVICE_EXPORTS = frozenset(
    {"QueryEngine", "Service", "ServiceError", "SessionStore"}
)


def __getattr__(name: str) -> Any:
    if name in _SERVICE_EXPORTS:
        from .. import service

        return getattr(service, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Backend",
    "Budget",
    "Compressor",
    "DEFAULT_CHUNK_SIZE",
    "ErrorBudget",
    "ExecutionPolicy",
    "Method",
    "Plan",
    "PlanError",
    "PlanSource",
    "QueryEngine",
    "Result",
    "Service",
    "ServiceError",
    "SessionStore",
    "SizeBudget",
    "execute",
    "iter_chunks",
    "resolve_budget",
    "resolve_error_alias",
    "validate_chunk_size",
    "validate_delta",
    "validate_workers_method",
]
