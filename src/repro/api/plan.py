"""Declarative evaluation plans for parsimonious temporal aggregation.

This module is the *one place evaluation decisions live*: every typed knob
of the PTA pipeline — what to aggregate, under which budget to reduce, with
which method, backend and parallelism — is a dataclass or enum here, and
every combination is validated when the plan is *built*, not when it runs.
The legacy entry points :func:`repro.pta`, :func:`repro.compress` and
:func:`repro.parallel.reduce_segments_parallel` are thin shims that build a
:class:`Plan` and hand it to :func:`repro.api.execute`, so all three doors
raise the same :class:`PlanError` with the same message for the same
mistake.

Typical usage::

    from repro.api import Plan, SizeBudget, ExecutionPolicy

    result = (
        Plan(relation)
        .group_by("proj")
        .aggregate(avg_sal=("avg", "sal"))
        .reduce(SizeBudget(4))
        .run()
    )
    result.to_csv("summary.csv")

    # Same plan, executed on the sharded engine:
    result = plan.run(ExecutionPolicy(workers=4))
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Any, Iterable, Optional, Tuple, Union

from ..aggregation.functions import (
    AggregatesLike,
    AggregateSpec,
    normalize_aggregates,
)
from ..core.errors import Weights
from ..core.merge import AggregateSegment
from ..temporal import TemporalRelation
from .result import Result

#: Default number of segments pulled from a source per pipeline step.
#: Deliberately modest: the chunk buffer adds to the ``c + β`` heap bound,
#: so it should not dwarf typical output sizes.
DEFAULT_CHUNK_SIZE = 256

#: What a plan can evaluate: a temporal relation (aggregated with ITA before
#: reduction), any iterable of already aggregated segments, or the flat
#: column encoding used by the sharded engine.
PlanSource = Union[TemporalRelation, Iterable[AggregateSegment]]


class PlanError(ValueError):
    """An invalid plan, budget, or execution policy.

    Subclasses :class:`ValueError` so existing ``except ValueError`` /
    ``pytest.raises(ValueError)`` call sites keep working; the dedicated
    type lets new code distinguish build-time plan mistakes from runtime
    failures.
    """


# ----------------------------------------------------------------------
# Budgets
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SizeBudget:
    """Output size bound ``c`` (Definition 6 — reduce to ≤ ``c`` tuples)."""

    size: int

    def __post_init__(self) -> None:
        if self.size < 1:
            raise PlanError(
                f"size bound must be at least 1, got {self.size}"
            )


@dataclass(frozen=True)
class ErrorBudget:
    """Relative error bound ``ε ∈ [0, 1]`` (Definition 7).

    The reduction may introduce at most ``ε · SSE_max`` total error, where
    ``SSE_max`` is the error of collapsing every maximal run to one tuple.
    """

    epsilon: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.epsilon <= 1.0:
            raise PlanError(
                f"epsilon must be within [0, 1], got {self.epsilon}"
            )


Budget = Union[SizeBudget, ErrorBudget]


def resolve_budget(
    budget: Budget | None = None,
    size: int | None = None,
    max_error: float | None = None,
) -> Budget:
    """Normalise the three ways of stating a budget into one typed object.

    Accepts either an explicit :class:`SizeBudget` / :class:`ErrorBudget`
    or exactly one of the ``size`` / ``max_error`` keywords; anything else
    (none of them, or more than one) raises :class:`PlanError`.
    """
    if budget is not None:
        if size is not None or max_error is not None:
            raise PlanError("provide exactly one of 'size' and 'max_error'")
        if isinstance(budget, (SizeBudget, ErrorBudget)):
            return budget
        raise PlanError(
            f"budget must be a SizeBudget or ErrorBudget, got {budget!r}"
        )
    if (size is None) == (max_error is None):
        raise PlanError("provide exactly one of 'size' and 'max_error'")
    if size is not None:
        return SizeBudget(size)
    assert max_error is not None
    return ErrorBudget(max_error)


def resolve_error_alias(
    error: float | None, max_error: float | None
) -> float | None:
    """Collapse the legacy ``error=`` spelling into canonical ``max_error``.

    ``pta`` historically called the bound ``error`` while ``compress``
    called it ``max_error``; both shims now accept both spellings and route
    them here.  Passing both at once is rejected rather than silently
    preferring one, and the legacy spelling emits a
    :class:`DeprecationWarning` (the canonical ``max_error=`` stays
    silent).
    """
    if error is not None and max_error is not None:
        raise PlanError(
            "'error' is a legacy alias of 'max_error'; provide only one "
            "of the two spellings"
        )
    if error is not None:
        # stacklevel 3: resolve_error_alias <- pta/compress shim <- caller.
        warnings.warn(
            "the 'error' keyword is a deprecated legacy alias; pass "
            "max_error= instead",
            DeprecationWarning,
            stacklevel=3,
        )
        return error
    return max_error


# ----------------------------------------------------------------------
# Method / backend enums
# ----------------------------------------------------------------------
class Method(str, Enum):
    """Evaluation strategy: exact DP (Section 5) or online greedy (Section 6)."""

    DP = "dp"
    GREEDY = "greedy"

    @classmethod
    def coerce(cls, value: Union["Method", str]) -> "Method":
        if isinstance(value, Method):
            return value
        try:
            return cls(value)
        except ValueError:
            raise PlanError(
                f"method must be 'dp' or 'greedy', got {value!r}"
            ) from None


class Backend(str, Enum):
    """Kernel backend: pure-Python reference or vectorized NumPy arrays."""

    PYTHON = "python"
    NUMPY = "numpy"

    @classmethod
    def coerce(cls, value: Union["Backend", str]) -> "Backend":
        if isinstance(value, Backend):
            return value
        try:
            return cls(value)
        except ValueError:
            raise PlanError(
                f"backend must be 'python' or 'numpy', got {value!r}"
            ) from None


# ----------------------------------------------------------------------
# Shared validators (the single home of the former ad-hoc checks)
# ----------------------------------------------------------------------
def validate_chunk_size(chunk_size: int) -> None:
    """Producer-chunking knob: at least one segment per pipeline step."""
    if chunk_size < 1:
        raise PlanError(
            f"chunk_size must be at least 1, got {chunk_size}"
        )


def validate_delta(delta: float) -> None:
    """Greedy read-ahead ``δ``: a non-negative integer or ``∞``."""
    if delta != math.inf and (delta < 0 or int(delta) != delta):
        raise PlanError(
            f"delta must be a non-negative integer or DELTA_INFINITY, "
            f"got {delta!r}"
        )


def validate_workers_method(
    workers: int | None,
    method: Method,
    cluster: "Tuple[str, ...] | None" = None,
) -> None:
    """The sharded engine computes plain GMS; exact DP cannot be sharded."""
    if workers is not None and method is not Method.GREEDY:
        raise PlanError(
            "workers is only supported for method='greedy'; the exact DP "
            "optimum couples the shards through the global output budget"
        )
    if cluster is not None and method is not Method.GREEDY:
        raise PlanError(
            "cluster is only supported for method='greedy'; the exact DP "
            "optimum couples the shards through the global output budget"
        )


_STREAMS_ARE_AGGREGATED = (
    "group_by/aggregates only apply when compressing a "
    "TemporalRelation; segment streams are already aggregated"
)


# ----------------------------------------------------------------------
# Execution policy
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ExecutionPolicy:
    """*How* a plan runs — knobs that never change *what* is computed.

    Attributes
    ----------
    backend:
        Kernel backend for the single-process engines; both backends
        produce identical reductions.
    workers:
        ``None`` keeps the single-process online evaluation.  Any integer
        switches to the sharded engine of :mod:`repro.parallel` (``0`` uses
        every core, ``1`` runs the shards in-process); requires the greedy
        method, computes plain GMS (``δ = ∞`` semantics) and is
        bit-identical for every worker count.
    cluster:
        ``"host:port"`` addresses of remote reducer workers
        (:mod:`repro.cluster`).  Switches to the distributed engine:
        same shard plan and reconciliation as ``workers``, with shards
        shipped over the wire instead of a process pool — and the same
        guarantee: bit-identical to every ``workers`` value regardless
        of placement, cluster size or mid-job worker death.  Mutually
        exclusive with ``workers``; requires the greedy method.
    shard_size:
        Segments per shard for the sharded engine (default
        :data:`repro.parallel.DEFAULT_SHARD_SIZE`); a work-distribution
        knob only.
    chunk_size:
        Segments pulled from the source per pipeline step; a producer-side
        buffering knob only.
    delta:
        Greedy read-ahead ``δ`` (Propositions 3 and 4); bounds the online
        heap, ignored by DP and by the sharded engine.
    weights:
        Per-dimension error weights (uniform when ``None``).
    input_size_estimate / max_error_estimate:
        Estimates ``n̂`` / ``Êmax`` enabling early merging in gPTAε
        (Section 6.3); derived automatically for relations and materialised
        sequences when left ``None``.
    """

    backend: Backend = Backend.PYTHON
    workers: Optional[int] = None
    cluster: Optional[Tuple[str, ...]] = None
    shard_size: Optional[int] = None
    chunk_size: int = DEFAULT_CHUNK_SIZE
    delta: float = 1
    weights: Optional[Weights] = None
    input_size_estimate: Optional[int] = None
    max_error_estimate: Optional[float] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "backend", Backend.coerce(self.backend))
        validate_chunk_size(self.chunk_size)
        validate_delta(self.delta)
        if self.workers is not None and self.workers < 0:
            raise PlanError(
                f"workers must be non-negative, got {self.workers}"
            )
        if self.cluster is not None:
            if isinstance(self.cluster, str):
                raise PlanError(
                    "cluster must be a sequence of 'host:port' addresses, "
                    "not a single string"
                )
            object.__setattr__(self, "cluster", tuple(self.cluster))
            assert self.cluster is not None
            if not self.cluster:
                raise PlanError("cluster must name at least one address")
            if not all(
                isinstance(address, str) for address in self.cluster
            ):
                raise PlanError(
                    f"cluster addresses must be strings, got "
                    f"{list(self.cluster)!r}"
                )
            if self.workers is not None:
                raise PlanError(
                    "workers and cluster are mutually exclusive: the "
                    "reduction runs either on a local process pool or "
                    "on remote reducer workers"
                )
        if self.shard_size is not None and self.shard_size < 1:
            raise PlanError(
                f"shard_size must be at least 1, got {self.shard_size}"
            )


# ----------------------------------------------------------------------
# The plan itself
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Plan:
    """An immutable, fully validated description of one PTA evaluation.

    Built fluently — every builder method returns a new plan, so partial
    plans can be shared and specialised::

        base = Plan(relation).group_by("dept").aggregate(avg=("avg", "sal"))
        small = base.reduce(SizeBudget(50))
        tight = base.reduce(ErrorBudget(0.01), method=Method.DP)

    Invalid combinations raise :class:`PlanError` at build time: grouping a
    segment stream, zero or two budgets, unknown methods, malformed
    policies.  Cross-cutting checks that need both the plan and the policy
    (``workers`` × ``method``) run in :func:`repro.api.execute` before any
    work starts.
    """

    source: PlanSource
    group_columns: Tuple[str, ...] = ()
    aggregates: Tuple[AggregateSpec, ...] = ()
    budget: Optional[Budget] = None
    method: Method = Method.GREEDY
    policy: Optional[ExecutionPolicy] = field(default=None, compare=False)

    # ------------------------------------------------------------------
    # Builder steps
    # ------------------------------------------------------------------
    def group_by(self, *columns: str) -> "Plan":
        """Group the aggregation by ``columns`` (relation sources only)."""
        if not columns:
            return self
        self._require_relation_source()
        combined = self.group_columns + columns
        if len(set(combined)) != len(combined):
            raise PlanError(
                f"duplicate group_by columns in {list(combined)}"
            )
        return replace(self, group_columns=combined)

    def aggregate(
        self,
        aggregates: Optional[AggregatesLike] = None,
        **named: Tuple[str, Optional[str]],
    ) -> "Plan":
        """Add aggregate functions, as a mapping/specs or as keywords.

        ``aggregate(avg_sal=("avg", "sal"))`` and
        ``aggregate({"avg_sal": ("avg", "sal")})`` are equivalent.
        Output names must stay unique across every form and every chained
        ``aggregate`` call; clashes fail here, at build time.
        """
        if aggregates is None and not named:
            return self
        self._require_relation_source()
        specs: Tuple[AggregateSpec, ...] = ()
        try:
            if aggregates is not None:
                specs += normalize_aggregates(aggregates)
            if named:
                specs += normalize_aggregates(named)
            combined = self.aggregates + specs
            # Re-validate the merged tuple: each call/form is valid alone,
            # but outputs must be unique across the whole plan.
            normalize_aggregates(combined)
        except ValueError as error:
            raise PlanError(str(error)) from error
        return replace(self, aggregates=combined)

    def reduce(
        self,
        budget: Budget | None = None,
        *,
        size: int | None = None,
        max_error: float | None = None,
        method: Union[Method, str, None] = None,
    ) -> "Plan":
        """Set the reduction budget (exactly one) and optionally the method."""
        resolved = resolve_budget(budget, size=size, max_error=max_error)
        new_method = (
            Method.coerce(method) if method is not None else self.method
        )
        return replace(self, budget=resolved, method=new_method)

    def with_method(self, method: Union[Method, str]) -> "Plan":
        """Select the evaluation strategy (DP or greedy)."""
        return replace(self, method=Method.coerce(method))

    def with_policy(
        self, policy: ExecutionPolicy | None = None, **overrides: Any
    ) -> "Plan":
        """Attach a default execution policy (overridable at :meth:`run`)."""
        if policy is None:
            base = self.policy or ExecutionPolicy()
            policy = replace(base, **overrides)
        elif overrides:
            policy = replace(policy, **overrides)
        return replace(self, policy=policy)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, policy: ExecutionPolicy | None = None) -> Result:
        """Execute the plan; sugar for :func:`repro.api.execute`."""
        from .executor import execute

        return execute(self, policy)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _require_relation_source(self) -> None:
        if not isinstance(self.source, TemporalRelation):
            raise PlanError(_STREAMS_ARE_AGGREGATED)

    @property
    def value_columns(self) -> Tuple[str, ...]:
        """Output attribute names of the aggregate functions."""
        return tuple(spec.output for spec in self.aggregates)


__all__ = [
    "Backend",
    "Budget",
    "DEFAULT_CHUNK_SIZE",
    "ErrorBudget",
    "ExecutionPolicy",
    "Method",
    "Plan",
    "PlanError",
    "PlanSource",
    "SizeBudget",
    "resolve_budget",
    "resolve_error_alias",
    "validate_chunk_size",
    "validate_delta",
    "validate_workers_method",
]
