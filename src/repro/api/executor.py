"""The single executor every PTA entry point dispatches through.

:func:`execute` maps a validated :class:`~repro.api.plan.Plan` plus an
:class:`~repro.api.plan.ExecutionPolicy` onto the existing engines —

* exact dynamic programming (:mod:`repro.core.dp`, Section 5),
* the single-process online greedy state machine
  (:class:`repro.core.greedy.OnlineReducer`, Section 6),
* the sharded multiprocess engine (:mod:`repro.parallel`) —

and returns one :class:`~repro.api.result.Result` regardless of which
engine ran.  The legacy doors :func:`repro.pta`, :func:`repro.compress` and
:func:`repro.parallel.reduce_segments_parallel` are shims over this
function, parity-tested against the pre-refactor outputs.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, List, Optional, Tuple

from ..aggregation import iter_ita_segments
from ..core import dp
from ..core.greedy import GreedyResult, OnlineReducer
from ..core.errors import max_error as exact_max_error
from ..core.merge import AggregateSegment
from ..temporal import TemporalRelation
from .plan import (
    ErrorBudget,
    ExecutionPolicy,
    Method,
    Plan,
    PlanError,
    SizeBudget,
    validate_chunk_size,
    validate_workers_method,
)
from .result import Result


def execute(plan: Plan, policy: ExecutionPolicy | None = None) -> Result:
    """Run ``plan`` under ``policy`` and return the unified :class:`Result`.

    ``policy`` defaults to the plan's attached policy
    (:meth:`Plan.with_policy`), falling back to :class:`ExecutionPolicy`'s
    defaults.  Cross-cutting validation that needs both halves — the
    ``workers`` × ``method`` exclusion, a budget being present at all —
    happens here, before any tuple is read.
    """
    if not isinstance(plan, Plan):
        raise PlanError(f"execute() expects a Plan, got {plan!r}")
    if policy is None:
        policy = plan.policy if plan.policy is not None else ExecutionPolicy()
    budget = plan.budget
    if budget is None:
        raise PlanError(
            "plan has no reduction step; call Plan.reduce() with exactly "
            "one budget"
        )
    validate_workers_method(policy.workers, plan.method, policy.cluster)
    size = budget.size if isinstance(budget, SizeBudget) else None
    epsilon = budget.epsilon if isinstance(budget, ErrorBudget) else None

    if policy.cluster is not None:
        return _run_cluster(plan, policy, size, epsilon)
    if policy.workers is not None:
        return _run_sharded(plan, policy, size, epsilon)
    if plan.method is Method.DP:
        return _run_dp(plan, policy, size, epsilon)
    return _run_online(plan, policy, size, epsilon)


# ----------------------------------------------------------------------
# Engine adapters
# ----------------------------------------------------------------------
def _run_sharded(
    plan: Plan,
    policy: ExecutionPolicy,
    size: Optional[int],
    epsilon: Optional[float],
) -> Result:
    from ..parallel import run_sharded

    source: Any = plan.source
    if isinstance(source, TemporalRelation):
        _require_aggregates(plan)
        source = iter_ita_segments(
            source, plan.group_columns, plan.aggregates
        )
    assert policy.workers is not None  # execute() dispatches here only then
    greedy_result = run_sharded(
        source,
        size=size,
        max_error=epsilon,
        weights=policy.weights,
        workers=policy.workers,
        shard_size=policy.shard_size,
    )
    # The sharded engine always runs on the array kernels.
    return _wrap(plan, greedy_result, backend="numpy")


def _run_cluster(
    plan: Plan,
    policy: ExecutionPolicy,
    size: Optional[int],
    epsilon: Optional[float],
) -> Result:
    """The distributed engine: same shard plan, remote reducers.

    Workers that die, time out or garble answers are retried across the
    cluster and finally reduced in-process, so the result is always the
    bit-identical plain-GMS reduction (``docs/ARCHITECTURE.md``,
    Cluster tier).
    """
    from ..cluster import reduce_cluster

    source: Any = plan.source
    if isinstance(source, TemporalRelation):
        _require_aggregates(plan)
        source = iter_ita_segments(
            source, plan.group_columns, plan.aggregates
        )
    assert policy.cluster is not None  # execute() dispatches here only then
    greedy_result = reduce_cluster(
        source,
        size=size,
        max_error=epsilon,
        weights=policy.weights,
        cluster=policy.cluster,
        shard_size=policy.shard_size,
    )
    # Remote reducers run the same array kernels as the pool engine.
    return _wrap(plan, greedy_result, backend="numpy")


def _run_dp(
    plan: Plan,
    policy: ExecutionPolicy,
    size: Optional[int],
    epsilon: Optional[float],
) -> Result:
    stream, _, _ = _open_source(plan, policy, need_estimates=False)
    segments = list(stream)
    if size is not None:
        dp_result = dp.reduce_to_size(
            segments, size, policy.weights, backend=policy.backend.value
        )
    else:
        assert epsilon is not None
        dp_result = dp.reduce_to_error(
            segments, epsilon, policy.weights, backend=policy.backend.value
        )
    return Result(
        segments=dp_result.segments,
        error=dp_result.error,
        size=dp_result.size,
        input_size=len(segments),
        method=Method.DP.value,
        backend=policy.backend.value,
        group_columns=plan.group_columns,
        value_columns=plan.value_columns,
        timestamp_name=_timestamp_name(plan),
    )


def _run_online(
    plan: Plan,
    policy: ExecutionPolicy,
    size: Optional[int],
    epsilon: Optional[float],
) -> Result:
    stream, input_size_estimate, max_error_estimate = _open_source(
        plan, policy, need_estimates=epsilon is not None
    )
    reducer = OnlineReducer(
        size=size,
        max_error=epsilon,
        delta=policy.delta,
        weights=policy.weights,
        input_size_estimate=input_size_estimate,
        max_error_estimate=max_error_estimate,
        backend=policy.backend.value,
    )
    reducer.extend(_rechunk(stream, policy.chunk_size))
    return _wrap(plan, reducer.finalize(), backend=policy.backend.value)


def _wrap(plan: Plan, greedy_result: GreedyResult, backend: str) -> Result:
    return Result(
        segments=greedy_result.segments,
        error=greedy_result.error,
        size=greedy_result.size,
        input_size=greedy_result.input_size,
        method=plan.method.value,
        backend=backend,
        max_heap_size=greedy_result.max_heap_size,
        merges=greedy_result.merges,
        group_columns=plan.group_columns,
        value_columns=plan.value_columns,
        timestamp_name=_timestamp_name(plan),
    )


# ----------------------------------------------------------------------
# Source handling
# ----------------------------------------------------------------------
def _open_source(
    plan: Plan, policy: ExecutionPolicy, need_estimates: bool
) -> Tuple[Iterable[AggregateSegment], Optional[int], Optional[float]]:
    """Normalise the plan source into a segment stream plus gPTAε estimates.

    Relations are aggregated lazily with ITA; materialised sequences use
    their exact size and ``SSE_max``; opaque generators keep ``None``
    estimates, which is always correct but lets the online heap grow.
    """
    source = plan.source
    input_size_estimate = policy.input_size_estimate
    max_error_estimate = policy.max_error_estimate
    if isinstance(source, TemporalRelation):
        _require_aggregates(plan)
        stream: Iterable[AggregateSegment] = iter_ita_segments(
            source, plan.group_columns, plan.aggregates
        )
        if need_estimates:
            if input_size_estimate is None:
                input_size_estimate = max(2 * len(source) - 1, 1)
            if max_error_estimate is None:
                from ..core.pta import estimate_max_error

                max_error_estimate = estimate_max_error(
                    source,
                    plan.group_columns,
                    plan.aggregates,
                    weights=policy.weights,
                )
        return stream, input_size_estimate, max_error_estimate
    if _is_encoded(source):
        raise PlanError(
            "an EncodedSegments source requires the sharded engine; set "
            "ExecutionPolicy(workers=...)"
        )
    if isinstance(source, (list, tuple)) and need_estimates:
        # Materialised input: the exact values are cheap, use them.
        if input_size_estimate is None:
            input_size_estimate = max(len(source), 1)
        if max_error_estimate is None:
            max_error_estimate = exact_max_error(source, policy.weights)
    return iter(source), input_size_estimate, max_error_estimate


def _is_encoded(source: Any) -> bool:
    from ..parallel import EncodedSegments

    return isinstance(source, EncodedSegments)


def _require_aggregates(plan: Plan) -> None:
    if not plan.aggregates:
        raise PlanError(
            "at least one aggregate function is required to evaluate ITA "
            "over a TemporalRelation; call Plan.aggregate(...)"
        )


def _timestamp_name(plan: Plan) -> str:
    source = plan.source
    if isinstance(source, TemporalRelation):
        return source.schema.timestamp_name
    return "T"


# ----------------------------------------------------------------------
# Chunked streaming
# ----------------------------------------------------------------------
def iter_chunks(source: Iterable[Any], chunk_size: int) -> Iterator[List[Any]]:
    """Split ``source`` into lists of at most ``chunk_size`` items.

    The building block of the streaming pipeline; exposed (also as
    :func:`repro.pipeline.iter_chunks`) for tests and for callers that want
    to drive the chunking themselves.
    """
    validate_chunk_size(chunk_size)
    chunk: List[Any] = []
    for item in source:
        chunk.append(item)
        if len(chunk) >= chunk_size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


def _rechunk(
    stream: Iterable[AggregateSegment], chunk_size: int
) -> Iterator[AggregateSegment]:
    """Pull segments from ``stream`` in chunks, re-yielding them one by one.

    Chunking decouples the producer (ITA, a file reader, a socket) from the
    consumer (the merge heap): the producer is driven ``chunk_size`` tuples
    at a time while the consumer still observes a flat, order-preserving
    stream, so results are bit-identical to the unchunked evaluation.
    """
    for chunk in iter_chunks(stream, chunk_size):
        yield from chunk


__all__ = ["execute", "iter_chunks"]
