"""Push-based incremental compression sessions.

The online algorithms gPTAc / gPTAε (Section 6) are inherently push-based:
tuples arrive one at a time and the summary is maintained continuously.
:class:`Compressor` exposes exactly that shape — the missing piece for
serving live traffic, where a caller feeds segments as they are produced
and reads the current summary whenever a query arrives::

    from repro.api import Compressor, SizeBudget

    session = Compressor(SizeBudget(100))
    for segment in live_feed:
        session.push(segment)          # single segment or a whole chunk
        if query_arrived():
            snapshot = session.summary()   # non-destructive
    final = session.finalize()

Each :meth:`Compressor.summary` snapshot is **bit-identical** to running
batch :func:`repro.compress` over the prefix pushed so far with the same
parameters (asserted per prefix in ``tests/test_session.py``): the session
holds the resumable :class:`~repro.core.greedy.OnlineReducer` state machine
and snapshots it non-destructively, so the live online state is never
disturbed.

Snapshots are **delta-based**: the reducer keeps a merge delta log of every
committed insert/merge and patches a materialised mirror of the live
relation, so a snapshot costs amortised O(changes since the last snapshot)
plus the summary size — not O(live heap), let alone O(stream).  Snapshots
are additionally cached per :attr:`Compressor.generation`, so repeated
reads between pushes are free.  The clone-and-finalize path is retained as
:meth:`Compressor.summary_oracle` — the reference the delta path is
property-tested against (``tests/test_snapshot_delta.py``).
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple, Union

from ..core.greedy import GreedyResult, OnlineReducer
from ..core.kernels import SnapshotColumns
from ..core.merge import AggregateSegment
from .plan import (
    Budget,
    ErrorBudget,
    ExecutionPolicy,
    Method,
    PlanError,
    SizeBudget,
    resolve_budget,
)
from .result import Result


class Compressor:
    """An incremental gPTAc / gPTAε session over a segment stream.

    Parameters
    ----------
    budget:
        A :class:`SizeBudget` or :class:`ErrorBudget`; alternatively pass
        exactly one of the ``size`` / ``max_error`` keywords.
    policy:
        Execution knobs (backend, ``delta``, weights, gPTAε estimates).
        ``workers`` must stay ``None`` — an incremental session is
        single-process by nature; use :func:`repro.api.execute` with a
        worker policy for sharded batch reductions.

    The segments must arrive in group-then-time order, exactly as the
    online algorithms require.  Used as a context manager, a cleanly
    exited ``with`` block finalizes the session automatically.
    """

    def __init__(
        self,
        budget: Optional[Budget] = None,
        *,
        size: Optional[int] = None,
        max_error: Optional[float] = None,
        policy: Optional[ExecutionPolicy] = None,
    ) -> None:
        resolved = resolve_budget(budget, size=size, max_error=max_error)
        policy = policy if policy is not None else ExecutionPolicy()
        if policy.workers is not None:
            raise PlanError(
                "the incremental Compressor is single-process; workers "
                "only applies to batch execution via repro.api.execute"
            )
        self.budget = resolved
        self.policy = policy
        self._reducer = OnlineReducer(
            size=resolved.size if isinstance(resolved, SizeBudget) else None,
            max_error=(
                resolved.epsilon if isinstance(resolved, ErrorBudget) else None
            ),
            delta=policy.delta,
            weights=policy.weights,
            input_size_estimate=policy.input_size_estimate,
            max_error_estimate=policy.max_error_estimate,
            backend=policy.backend.value,
            track_deltas=True,
        )
        self._final: Optional[Result] = None
        self._generation = 0
        #: Per-generation snapshot cache: (generation, columns, stats,
        #: lazily materialised Result).  Two reads at the same generation
        #: share one snapshot; the Result's segment objects are only built
        #: if summary() itself is called (the column-consuming serving
        #: path never pays for them).
        self._snapshot: Optional[
            Tuple[int, SnapshotColumns, GreedyResult, Optional[Result]]
        ] = None

    # ------------------------------------------------------------------
    # Feeding
    # ------------------------------------------------------------------
    def push(
        self,
        segments: Union[AggregateSegment, Iterable[AggregateSegment]],
    ) -> "Compressor":
        """Feed one segment or a whole chunk; returns ``self`` for chaining.

        Chunks go through the heap's staged bulk-insert fast path when the
        NumPy backend is active; the result is bit-identical to pushing the
        same tuples one at a time.
        """
        self._check_open("push")
        if isinstance(segments, AggregateSegment):
            self._reducer.push(segments)
        else:
            self._reducer.push_chunk(
                segments if isinstance(segments, (list, tuple))
                else list(segments)
            )
        self._generation += 1
        return self

    def replay(
        self, chunks: Iterable[Iterable[AggregateSegment]]
    ) -> "Compressor":
        """Re-consume logged push chunks (the crash-recovery entry point).

        Each chunk is fed as one :meth:`push` call, so the generation
        counter advances exactly as it did live and every snapshot of the
        replayed session is bit-identical to the uncrashed one — the
        replay invariant of :meth:`repro.core.greedy.OnlineReducer.replay`
        surfaced at the session level.  Used by
        :mod:`repro.service.durability` to rebuild a store from its WAL.
        """
        self._check_open("replay")
        self._generation += self._reducer.replay(chunks)
        return self

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def summary(self) -> Result:
        """Return the summary of everything pushed so far, non-destructively.

        Equivalent — bit for bit — to running batch ``compress`` over the
        consumed prefix with the same parameters, but computed on the
        *delta path*: the reducer's merge delta log is replayed into a
        materialised mirror of the live relation and the end-of-input phase
        runs on the mirror, so the cost is amortised O(changes since the
        last snapshot) plus the summary size.  Repeated calls at the same
        :attr:`generation` return the cached result.  After
        :meth:`finalize` this returns the final result.
        """
        if self._final is not None:
            return self._final
        generation, columns, stats, result = self._delta_snapshot()
        if result is None:
            if not stats.segments:
                # Already populated on the tie-fallback oracle path.
                stats.segments = columns.segments()
            result = self._wrap(stats)
            self._snapshot = (generation, columns, stats, result)
        return result

    def summary_columns(self) -> SnapshotColumns:
        """The current summary in flat column form (the serving fast path).

        Same snapshot as :meth:`summary` — same generation cache — but as
        :class:`~repro.core.kernels.SnapshotColumns`, which the query layer
        indexes directly; the per-segment objects of :meth:`summary` are
        never materialised on this path.
        """
        if self._final is not None:
            return self._final_columns()
        return self._delta_snapshot()[1]

    def summary_oracle(self) -> Result:
        """The summary via the clone-and-finalize reference path.

        Clones the resumable online state and runs the end-of-input phase
        on the clone — O(live heap) per call.  This is the oracle the
        delta-based :meth:`summary` is property-tested against; production
        reads should use :meth:`summary`.
        """
        if self._final is not None:
            return self._final
        return self._wrap(self._reducer.clone().finalize())

    def _delta_snapshot(
        self,
    ) -> Tuple[int, SnapshotColumns, GreedyResult, Optional[Result]]:
        cached = self._snapshot
        if cached is not None and cached[0] == self._generation:
            return cached
        stats, columns = self._reducer.snapshot(materialize=False)
        snapshot = (self._generation, columns, stats, None)
        self._snapshot = snapshot
        return snapshot

    def _final_columns(self) -> SnapshotColumns:
        assert self._final is not None
        cached = self._snapshot
        if cached is not None and cached[0] == self._generation:
            return cached[1]
        columns = SnapshotColumns.from_segments(self._final.segments)
        self._snapshot = (
            self._generation,
            columns,
            GreedyResult(segments=self._final.segments),
            self._final,
        )
        return columns

    def finalize(self) -> Result:
        """End the session and return the final summary.

        Runs the end-of-input phase on the live state (no clone).  Further
        :meth:`push` calls raise; :meth:`summary` keeps returning the final
        result.  This is also the *frozen-summary handoff* used by the
        serving layer: when :class:`repro.service.SessionStore` evicts an
        idle session it finalizes it and keeps the returned result
        queryable, so eviction never discards pushed tuples.
        """
        if self._final is None:
            self._final = self._wrap(self._reducer.finalize())
            self._generation += 1
        return self._final

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pushed(self) -> int:
        """Number of segments consumed so far."""
        return self._reducer.consumed

    @property
    def generation(self) -> int:
        """Counter bumped by every state change (push call or finalize).

        Two :meth:`summary` calls at the same generation are guaranteed to
        return equal results, so callers that cache derived artifacts — the
        serving layer's :class:`repro.service.QueryEngine` caches a
        query-ready snapshot index per session — can use the generation as
        their invalidation token instead of re-finalizing a clone per read.
        """
        return self._generation

    @property
    def heap_size(self) -> int:
        """Number of tuples currently buffered in the merge heap."""
        return len(self._reducer.heap)

    @property
    def finalized(self) -> bool:
        return self._final is not None

    def __len__(self) -> int:
        return self.heap_size

    def __enter__(self) -> "Compressor":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        # A cleanly exited session is finalized; after an exception the
        # stream is torn mid-push, so the partial state is left untouched
        # for inspection instead of being passed off as a final summary.
        if exc_type is None and self._final is None:
            self.finalize()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _wrap(self, greedy_result: GreedyResult) -> Result:
        return Result(
            segments=greedy_result.segments,
            error=greedy_result.error,
            size=greedy_result.size,
            input_size=greedy_result.input_size,
            method=Method.GREEDY.value,
            backend=self.policy.backend.value,
            max_heap_size=greedy_result.max_heap_size,
            merges=greedy_result.merges,
        )

    def _check_open(self, operation: str) -> None:
        if self._final is not None:
            raise RuntimeError(
                f"cannot {operation}() on a finalized Compressor"
            )


__all__ = ["Compressor"]
