"""The unified result of every PTA evaluation door.

Whatever engine a plan dispatches to — exact DP, single-process online
greedy, the sharded multiprocess engine, or an incremental
:class:`~repro.api.session.Compressor` session — the caller gets one
:class:`Result`: the reduced segments, the evaluation statistics, and sink
helpers (``to_relation`` / ``to_csv`` / iteration) to move the summary
wherever it needs to go.

:class:`repro.pipeline.CompressionResult` is an alias of this class, kept
for backwards compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Tuple, Union

from ..core.merge import AggregateSegment, segments_to_relation
from ..temporal import TemporalRelation


@dataclass
class Result:
    """Result of a PTA evaluation, uniform across methods and engines.

    Attributes
    ----------
    segments:
        The reduced relation in group-then-time order.
    error:
        Total SSE introduced with respect to the (conceptual) ITA input.
    size:
        Number of output segments.
    input_size:
        Number of ITA tuples consumed from the source.
    method / backend:
        The evaluation strategy and kernel backend that produced the result
        (the sharded engine always reports ``"numpy"``).
    max_heap_size:
        Largest number of tuples simultaneously buffered by the greedy
        merge heap (0 for the DP method and the sharded engine, which
        materialise the input instead).
    merges:
        Number of merge steps performed (greedy engines only).
    group_columns / value_columns / timestamp_name:
        Schema metadata carried over from the plan when known; used as the
        defaults by :meth:`to_relation` and :meth:`to_csv`.
    """

    segments: List[AggregateSegment] = field(default_factory=list)
    error: float = 0.0
    size: int = 0
    input_size: int = 0
    method: str = "greedy"
    backend: str = "python"
    max_heap_size: int = 0
    merges: int = 0
    group_columns: Tuple[str, ...] = ()
    value_columns: Tuple[str, ...] = ()
    timestamp_name: str = "T"

    def __iter__(self) -> Iterator[AggregateSegment]:
        return iter(self.segments)

    def __len__(self) -> int:
        return self.size

    # ------------------------------------------------------------------
    # Sinks
    # ------------------------------------------------------------------
    def to_relation(
        self,
        group_columns: Optional[Sequence[str]] = None,
        value_columns: Optional[Sequence[str]] = None,
        timestamp_name: Optional[str] = None,
    ) -> TemporalRelation:
        """Materialise the summary as a :class:`TemporalRelation`.

        Column names default to the plan's schema metadata; sources without
        names (raw segment streams) fall back to ``g1..gk`` / ``v1..vp``.
        """
        groups = tuple(group_columns) if group_columns is not None else None
        values = tuple(value_columns) if value_columns is not None else None
        if groups is None:
            groups = self.group_columns or self._default_names("g", "group")
        if values is None:
            values = self.value_columns or self._default_names("v", "values")
        return segments_to_relation(
            self.segments,
            groups,
            values,
            timestamp_name or self.timestamp_name,
        )

    def to_csv(
        self,
        path: Union[str, Path],
        group_columns: Optional[Sequence[str]] = None,
        value_columns: Optional[Sequence[str]] = None,
        timestamp_name: Optional[str] = None,
    ) -> Path:
        """Write the summary to ``path`` as CSV; returns the path written."""
        from ..storage import write_relation

        relation = self.to_relation(group_columns, value_columns, timestamp_name)
        target = Path(path)
        write_relation(relation, target)
        return target

    def _default_names(self, prefix: str, attribute: str) -> Tuple[str, ...]:
        if not self.segments:
            return ()
        width = len(getattr(self.segments[0], attribute))
        return tuple(f"{prefix}{i}" for i in range(1, width + 1))


__all__ = ["Result"]
