"""Aggregate functions used by the temporal aggregation operators.

The paper writes a query's aggregate functions as ``F = {f1/B1, ..., fp/Bp}``
where each ``fi`` is applied to the tuples of an aggregation group valid at a
time instant, and the result is stored in attribute ``Bi`` (Definition 1).
This module provides the built-in functions (``avg``, ``sum``, ``min``,
``max``, ``count``) and the :class:`AggregateSpec` binding a function to a
source attribute and an output attribute name.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Sequence, Tuple, Union

AggregateCallable = Callable[[Sequence[float]], float]


class UnknownAggregateError(ValueError):
    """Raised when an aggregate function name is not registered."""


def _avg(values: Sequence[float]) -> float:
    return sum(values) / len(values)


def _sum(values: Sequence[float]) -> float:
    return float(sum(values))


def _min(values: Sequence[float]) -> float:
    return float(min(values))


def _max(values: Sequence[float]) -> float:
    return float(max(values))


def _count(values: Sequence[float]) -> float:
    return float(len(values))


_REGISTRY: Dict[str, AggregateCallable] = {
    "avg": _avg,
    "mean": _avg,
    "sum": _sum,
    "min": _min,
    "max": _max,
    "count": _count,
}


def register_aggregate(name: str, function: AggregateCallable) -> None:
    """Register a custom aggregate function under ``name``.

    The function receives the list of attribute values of all tuples valid at
    a time instant and must return a single float.
    """
    _REGISTRY[name.lower()] = function


def resolve_aggregate(name: str) -> AggregateCallable:
    """Look up a registered aggregate function by name (case-insensitive)."""
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        raise UnknownAggregateError(
            f"unknown aggregate function {name!r}; "
            f"known: {sorted(_REGISTRY)}"
        ) from None


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate of a temporal aggregation query: ``f(attribute) AS output``.

    Parameters
    ----------
    output:
        Name of the result attribute (``Bi`` in the paper).
    function:
        Name of a registered aggregate function (``fi``).
    attribute:
        Source attribute the function is applied to.  ``count`` may use
        ``None`` to count tuples regardless of attribute values.
    """

    output: str
    function: str
    attribute: str | None

    def __post_init__(self) -> None:
        resolve_aggregate(self.function)
        if self.attribute is None and self.function.lower() != "count":
            raise ValueError(
                f"aggregate {self.function!r} requires a source attribute"
            )

    def evaluate(self, values: Sequence[float]) -> float:
        """Apply the aggregate function to the given attribute values."""
        return resolve_aggregate(self.function)(values)


AggregatesLike = Union[
    Sequence[AggregateSpec],
    Mapping[str, Tuple[str, str | None]],
]


def normalize_aggregates(aggregates: AggregatesLike) -> Tuple[AggregateSpec, ...]:
    """Normalise the user-facing aggregate description to ``AggregateSpec``s.

    Accepted forms::

        [AggregateSpec("avg_sal", "avg", "sal"), ...]
        {"avg_sal": ("avg", "sal"), "n": ("count", None)}
    """
    if isinstance(aggregates, Mapping):
        specs = tuple(
            AggregateSpec(output, function, attribute)
            for output, (function, attribute) in aggregates.items()
        )
    else:
        specs = tuple(aggregates)
        if not all(isinstance(spec, AggregateSpec) for spec in specs):
            raise TypeError(
                "aggregates must be AggregateSpec instances or a mapping "
                "{output: (function, attribute)}"
            )
    if not specs:
        raise ValueError("at least one aggregate function is required")
    outputs = [spec.output for spec in specs]
    if len(set(outputs)) != len(outputs):
        raise ValueError(f"duplicate output attribute names in {outputs}")
    return specs
