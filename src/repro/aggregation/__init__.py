"""Temporal aggregation operators: ITA, STA and MWTA."""

from .functions import (
    AggregateSpec,
    UnknownAggregateError,
    normalize_aggregates,
    register_aggregate,
    resolve_aggregate,
)
from .ita import ita, ita_schema, iter_ita, iter_ita_segments
from .mwta import mwta
from .sta import regular_spans, sta

__all__ = [
    "AggregateSpec",
    "UnknownAggregateError",
    "normalize_aggregates",
    "register_aggregate",
    "resolve_aggregate",
    "ita",
    "ita_schema",
    "iter_ita",
    "iter_ita_segments",
    "mwta",
    "sta",
    "regular_spans",
]
