"""Instant temporal aggregation (ITA).

ITA computes, for every time instant ``t`` and every combination of grouping
attribute values ``g``, the aggregate functions over all argument tuples that
belong to group ``g`` and are valid at ``t``; value-equivalent results over
consecutive instants are then coalesced into maximal intervals
(Definition 1).  The result size is at most ``2n - 1`` for ``n`` argument
tuples.

The implementation is a *watermark* sweep: within each aggregation group the
active tuple set only changes at interval start points and at points
immediately after interval ends, so aggregates are evaluated once per
*constant segment* instead of once per chronon.  The sweep keeps its tuples
ordered by start point and retires them through a min-heap of expiry points;
each constant segment is emitted as soon as the watermark (the next change
point) passes it, so the producer side of the streaming pipeline holds only
the currently active tuples plus the group's pending start-ordered list —
never a materialised event table.
"""

from __future__ import annotations

import heapq
from typing import Any, Dict, Iterator, List, Sequence, Tuple

from ..temporal import Interval, TemporalRelation, TemporalSchema
from .functions import AggregatesLike, normalize_aggregates

ItaTuple = Tuple[Tuple[Any, ...], Tuple[float, ...], Interval]


def ita(
    relation: TemporalRelation,
    group_by: Sequence[str] = (),
    aggregates: AggregatesLike = (),
) -> TemporalRelation:
    """Evaluate instant temporal aggregation over ``relation``.

    Parameters
    ----------
    relation:
        The argument temporal relation.
    group_by:
        Grouping attributes ``A``; may be empty for a single global group.
    aggregates:
        Aggregate functions ``F``, e.g. ``{"avg_sal": ("avg", "sal")}``.

    Returns
    -------
    TemporalRelation
        A sequential relation with schema ``(A..., B..., T)`` sorted by the
        grouping attributes and chronologically within each group, with
        value-equivalent adjacent tuples coalesced.
    """
    schema = ita_schema(relation, group_by, aggregates)
    result = TemporalRelation(schema)
    for group_values, aggregate_values, interval in iter_ita(
        relation, group_by, aggregates
    ):
        result.append(group_values + aggregate_values, interval)
    return result


def iter_ita(
    relation: TemporalRelation,
    group_by: Sequence[str] = (),
    aggregates: AggregatesLike = (),
) -> Iterator[ItaTuple]:
    """Yield ITA result tuples one at a time, in group-then-time order.

    Each yielded element is ``(group_values, aggregate_values, interval)``.
    The greedy PTA algorithms consume this iterator directly so that merging
    can start before the full ITA result has been produced (Section 6).
    Result tuples are emitted incrementally by the watermark sweep of
    :func:`_constant_segments`: once the sweep's watermark passes a constant
    segment it is evaluated and handed downstream immediately, so the
    producer-side state per group is bounded by the start-ordered pending
    list plus the set of currently valid tuples.
    """
    specs = normalize_aggregates(aggregates)
    group_by = tuple(group_by)
    group_indices = relation.schema.indices_of(group_by)
    value_indices = tuple(
        relation.schema.index_of(spec.attribute)
        if spec.attribute is not None
        else None
        for spec in specs
    )

    groups: Dict[Tuple[Any, ...], List[int]] = {}
    for row_index, (values, _) in enumerate(relation.rows()):
        key = tuple(values[i] for i in group_indices)
        groups.setdefault(key, []).append(row_index)

    rows = relation.rows()
    pending: ItaTuple | None = None
    for key in sorted(groups, key=_group_sort_key):
        row_indices = groups[key]
        for segment, members in _constant_segments(rows, row_indices):
            aggregate_values: List[float] = []
            for spec, value_index in zip(specs, value_indices):
                if value_index is None:
                    member_values: Sequence[float] = [1.0] * len(members)
                else:
                    member_values = [rows[m][0][value_index] for m in members]
                aggregate_values.append(spec.evaluate(member_values))
            candidate: ItaTuple = (key, tuple(aggregate_values), segment)

            if pending is None:
                pending = candidate
                continue
            p_key, p_values, p_interval = pending
            if (
                p_key == key
                and p_values == candidate[1]
                and p_interval.meets(segment)
            ):
                pending = (p_key, p_values, p_interval.union(segment))
            else:
                yield pending
                pending = candidate
    if pending is not None:
        yield pending


def iter_ita_segments(
    relation: TemporalRelation,
    group_by: Sequence[str] = (),
    aggregates: AggregatesLike = (),
) -> Iterator["AggregateSegment"]:
    """Yield the ITA result as :class:`~repro.core.merge.AggregateSegment`\\ s.

    This is the producer side of the streaming pipeline
    (:func:`repro.pipeline.compress`): tuples are handed to the consumer one
    at a time in group-then-time order, so the online greedy algorithms can
    merge while aggregation is still running and the full ITA result is never
    materialised.
    """
    # Imported lazily: repro.core imports repro.aggregation at package load.
    from ..core.merge import AggregateSegment

    for group_values, aggregate_values, interval in iter_ita(
        relation, group_by, aggregates
    ):
        yield AggregateSegment(group_values, aggregate_values, interval)


def ita_schema(
    relation: TemporalRelation,
    group_by: Sequence[str],
    aggregates: AggregatesLike,
) -> TemporalSchema:
    """Return the schema ``(A1..Ak, B1..Bp, T)`` of the ITA result."""
    specs = normalize_aggregates(aggregates)
    for name in group_by:
        relation.schema.index_of(name)
    return TemporalSchema(
        tuple(group_by) + tuple(spec.output for spec in specs),
        relation.schema.timestamp_name,
    )


# ----------------------------------------------------------------------
# Internals
# ----------------------------------------------------------------------
def _group_sort_key(key: Tuple[Any, ...]) -> Tuple:
    """Order group keys deterministically even for mixed value types."""
    return tuple((str(type(v)), str(v)) for v in key)


def _constant_segments(
    rows: List[Tuple[Tuple[Any, ...], Interval]],
    row_indices: List[int],
) -> Iterator[Tuple[Interval, List[int]]]:
    """Yield ``(interval, active_row_indices)`` for each constant segment.

    Within one aggregation group the set of valid tuples changes only at
    interval starts and at the chronon following an interval end.  The sweep
    is watermark-driven: tuples are admitted from a start-ordered pending
    list and retired through a min-heap of expiry points, and every constant
    segment is emitted as soon as the watermark (the next change point)
    passes its end.  Working state is the pending list plus the currently
    active tuples — no per-group event table is ever materialised.  Segments
    where no tuple is valid are skipped (they become temporal gaps in the
    ITA result).
    """
    pending = sorted(row_indices, key=lambda index: rows[index][1].start)
    total = len(pending)
    position = 0
    active: set = set()
    expiries: List[Tuple[int, int]] = []  # (end + 1, row_index) min-heap
    watermark = 0
    while position < total or active:
        if not active:
            # A temporal gap (or the very beginning): jump the watermark to
            # the next interval start.
            watermark = rows[pending[position]][1].start
        while (
            position < total
            and rows[pending[position]][1].start == watermark
        ):
            row_index = pending[position]
            active.add(row_index)
            heapq.heappush(
                expiries, (rows[row_index][1].end + 1, row_index)
            )
            position += 1
        next_change = expiries[0][0]
        if position < total:
            next_start = rows[pending[position]][1].start
            if next_start < next_change:
                next_change = next_start
        yield Interval(watermark, next_change - 1), sorted(active)
        watermark = next_change
        while expiries and expiries[0][0] == watermark:
            _, row_index = heapq.heappop(expiries)
            active.discard(row_index)
