"""Span temporal aggregation (STA).

STA partitions the time line into application-specified spans (e.g. one span
per trimester) and reports, for each aggregation group and each span that
intersects at least one argument tuple, the aggregate computed over *all*
argument tuples overlapping that span (Section 2.1 and Fig. 1(b) of the
paper).  The result size is therefore predictable, but the spans ignore the
distribution of the data.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

from ..temporal import Interval, TemporalRelation, TemporalSchema
from .functions import AggregatesLike, normalize_aggregates
from .ita import ita_schema


def regular_spans(cover: Interval, span_length: int) -> List[Interval]:
    """Partition ``cover`` into consecutive spans of ``span_length`` chronons.

    The last span is truncated to the end of ``cover`` if the length does not
    divide evenly.  This is the usual way STA queries express granularities
    such as "each trimester" or "each year".
    """
    if span_length <= 0:
        raise ValueError(f"span_length must be positive, got {span_length}")
    spans = []
    start = cover.start
    while start <= cover.end:
        end = min(start + span_length - 1, cover.end)
        spans.append(Interval(start, end))
        start = end + 1
    return spans


def sta(
    relation: TemporalRelation,
    group_by: Sequence[str] = (),
    aggregates: AggregatesLike = (),
    spans: Sequence[Interval] | None = None,
    span_length: int | None = None,
) -> TemporalRelation:
    """Evaluate span temporal aggregation over ``relation``.

    Exactly one of ``spans`` or ``span_length`` must be provided.  With
    ``span_length`` the spans are derived from the relation's covering
    interval via :func:`regular_spans`.

    Returns
    -------
    TemporalRelation
        One tuple per (group, span) pair for which at least one argument
        tuple overlaps the span, with schema ``(A..., B..., T)``.
    """
    if (spans is None) == (span_length is None):
        raise ValueError("provide exactly one of 'spans' or 'span_length'")
    if spans is None:
        spans = regular_spans(relation.timespan(), int(span_length))

    specs = normalize_aggregates(aggregates)
    group_by = tuple(group_by)
    group_indices = relation.schema.indices_of(group_by)
    value_indices = tuple(
        relation.schema.index_of(spec.attribute)
        if spec.attribute is not None
        else None
        for spec in specs
    )

    groups: Dict[Tuple[Any, ...], List[int]] = {}
    for row_index, (values, _) in enumerate(relation.rows()):
        key = tuple(values[i] for i in group_indices)
        groups.setdefault(key, []).append(row_index)

    schema: TemporalSchema = ita_schema(relation, group_by, aggregates)
    result = TemporalRelation(schema)
    rows = relation.rows()
    for key in sorted(groups, key=_group_sort_key):
        for span in spans:
            members = [
                row_index
                for row_index in groups[key]
                if rows[row_index][1].overlaps(span)
            ]
            if not members:
                continue
            aggregate_values = []
            for spec, value_index in zip(specs, value_indices):
                if value_index is None:
                    member_values: Sequence[float] = [1.0] * len(members)
                else:
                    member_values = [rows[m][0][value_index] for m in members]
                aggregate_values.append(spec.evaluate(member_values))
            result.append(key + tuple(aggregate_values), span)
    return result


def _group_sort_key(key: Tuple[Any, ...]) -> Tuple:
    return tuple((str(type(v)), str(v)) for v in key)
