"""Moving-window (cumulative) temporal aggregation (MWTA).

MWTA extends ITA: the aggregate at time instant ``t`` is computed over all
tuples that hold anywhere in a window around ``t`` (Section 2.1 of the
paper).  A window of zero width degenerates to plain ITA.  MWTA is included
for completeness of the temporal-aggregation substrate; the PTA operator
itself always reduces an ITA result.
"""

from __future__ import annotations

from typing import Sequence

from ..temporal import Interval, TemporalRelation
from .functions import AggregatesLike
from .ita import ita


def mwta(
    relation: TemporalRelation,
    group_by: Sequence[str] = (),
    aggregates: AggregatesLike = (),
    window_before: int = 0,
    window_after: int = 0,
) -> TemporalRelation:
    """Evaluate moving-window temporal aggregation over ``relation``.

    A tuple valid over ``[tb, te]`` contributes to every instant in
    ``[tb - window_after, te + window_before]``: an instant ``t`` "sees" the
    tuple when the window ``[t - window_before, t + window_after]``
    intersects the tuple's validity interval.  The implementation widens each
    argument interval accordingly and then runs the ITA sweep, which yields
    exactly the per-instant window semantics.

    Parameters
    ----------
    window_before:
        Number of chronons before ``t`` included in the window (``>= 0``).
    window_after:
        Number of chronons after ``t`` included in the window (``>= 0``).
    """
    if window_before < 0 or window_after < 0:
        raise ValueError("window extents must be non-negative")
    if window_before == 0 and window_after == 0:
        return ita(relation, group_by, aggregates)

    widened = TemporalRelation(relation.schema)
    for values, interval in relation.rows():
        widened.append(
            values,
            Interval(interval.start - window_after,
                     interval.end + window_before),
        )
    return ita(widened, group_by, aggregates)
