"""Sharded multiprocess reduction engine for greedy PTA.

The merge operator never crosses a maximal-run boundary (a temporal gap or a
change of aggregation group), so the runs produced by
:func:`repro.core.merge.maximal_runs` are fully independent units of work.
This module exploits that structure to scale the greedy reduction across
cores:

1. **Encode** — the segment stream is materialised once into flat NumPy
   columns (:func:`encode_segments`), so a shard travels to a worker process
   as a handful of array buffers instead of thousands of
   :class:`~repro.core.merge.AggregateSegment` objects.
2. **Shard** — the columns are cut into shards at run boundaries
   (:func:`plan_shards`).  The shard plan depends only on the input and the
   ``shard_size`` knob — never on the worker count — so the reduction is
   bit-identical for every ``workers`` value.
3. **Reduce** — each shard's complete greedy merge schedule (the
   boundary-removal order and per-step merge errors down to the shard's
   ``cmin``) is computed by
   :func:`repro.core.kernels.greedy_merge_trajectory`, either in-process or
   on a :class:`~concurrent.futures.ProcessPoolExecutor`.
4. **Reconcile** — because the merge performed by global GMS is always the
   globally cheapest one and that merge is necessarily the *next step of
   some shard's local schedule*, the global reduction is exactly a k-way
   merge over the shard frontiers: repeatedly consume the smallest next key
   across shards until the size budget is met (global top-k selection) or
   the error budget ``ε·SSE_max`` is exhausted (``SSE_max`` is additive
   across shards).
5. **Rebuild** — each shard's output partition is materialised with one
   ``reduceat`` pass over the encoded columns; merged values follow the
   single-pass weighted-mean semantics of
   :func:`repro.core.merge.merge_run` (less rounding drift than folding
   pairwise merges).

The engine therefore computes the *plain greedy merging strategy* (GMS) —
equivalently, the online algorithms with read-ahead ``δ = ∞`` — not the
finite-``δ`` online heuristics, whose early merges depend on global heap
occupancy and would couple the shards.  Cross-shard key ties break towards
the earlier shard, which matches the sequential heap's insertion-order
tie-break for initial keys; for distinct keys (the generic case) the result
is identical to the sequential GMS reduction step for step.

Exact dynamic programming is *not* sharded: the optimal allocation of the
output budget across shards couples them globally, and computing the
per-shard error curves needed to decouple it costs ``O(n_i^2)`` per shard —
more than the sequential DP it would replace.
"""

from __future__ import annotations

import heapq
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .core.errors import Weights, resolve_weights
from .core.greedy import GreedyResult
from .core.kernels import (
    adjacent_pair_mask,
    greedy_merge_trajectory,
    shard_sse_max,
)
from .core.merge import AggregateSegment
from .obs import metrics as _metrics
from .obs.tracing import span
from .temporal import Interval
from .util import failpoints
from .util.backoff import DEFAULT_CAP_S as DEFAULT_BACKOFF_CAP
from .util.backoff import Backoff

#: Default number of segments per shard.  A function of the input only —
#: never of the worker count — so that the shard plan (and with it the
#: reduction) is identical for every ``workers`` value.  At 8k segments per
#: shard a 100k-segment input yields ~12 shards, enough to keep 4–16 cores
#: busy while keeping the per-task serialisation overhead negligible.
DEFAULT_SHARD_SIZE = 8192

#: Pool rebuilds attempted after worker deaths before the engine gives up
#: on multiprocessing and finishes the remaining shards in-process.
SHARD_RETRIES = 2

#: Base of the exponential backoff between pool rebuilds, in seconds
#: (decorrelated jitter, shared ladder: :class:`repro.util.backoff.Backoff`).
RETRY_BACKOFF_S = 0.05


@dataclass
class EncodedSegments:
    """A segment stream as flat columns (the engine's wire format).

    ``starts`` / ``ends`` are ``int64`` interval endpoints, ``values`` is a
    ``float64`` array of shape ``(n, p)``, ``groups`` holds dense interned
    group ids and ``group_keys`` maps them back to the original group
    tuples.
    """

    starts: np.ndarray
    ends: np.ndarray
    values: np.ndarray
    groups: np.ndarray
    group_keys: List[tuple]

    def __len__(self) -> int:
        return len(self.starts)

    @property
    def dimensions(self) -> int:
        return self.values.shape[1]


def encode_segments(
    segments: Iterable[AggregateSegment],
) -> EncodedSegments:
    """Materialise a segment stream into :class:`EncodedSegments` columns."""
    starts: List[int] = []
    ends: List[int] = []
    values: List[tuple] = []
    groups: List[int] = []
    group_keys: List[tuple] = []
    group_ids: dict = {}
    last_group: tuple | None = None
    last_group_id = -1
    for segment in segments:
        interval = segment.interval
        starts.append(interval.start)
        ends.append(interval.end)
        values.append(segment.values)
        group = segment.group
        if group != last_group:
            last_group = group
            last_group_id = group_ids.get(group, -1)
            if last_group_id < 0:
                last_group_id = len(group_keys)
                group_ids[group] = last_group_id
                group_keys.append(group)
        groups.append(last_group_id)
    count = len(starts)
    try:
        value_array = (
            np.asarray(values, dtype=np.float64)
            if count
            else np.zeros((0, 0), dtype=np.float64)
        )
    except ValueError as error:
        raise ValueError(
            "all segments must have the same number of aggregate values"
        ) from error
    if value_array.ndim != 2:
        raise ValueError(
            "all segments must have the same number of aggregate values"
        )
    return EncodedSegments(
        np.asarray(starts, dtype=np.int64),
        np.asarray(ends, dtype=np.int64),
        value_array,
        np.asarray(groups, dtype=np.int64),
        group_keys,
    )


def plan_shards(
    encoded: EncodedSegments, shard_size: int = DEFAULT_SHARD_SIZE
) -> List[Tuple[int, int]]:
    """Cut the encoded stream into ``[lo, hi)`` shards at run boundaries.

    Walks the maximal-run boundaries and closes a shard as soon as it holds
    at least ``shard_size`` segments; a single run longer than ``shard_size``
    stays whole (it cannot be split without coupling the shards).
    """
    if shard_size < 1:
        raise ValueError(f"shard_size must be at least 1, got {shard_size}")
    count = len(encoded)
    if count == 0:
        return []
    adjacent = adjacent_pair_mask(
        encoded.starts, encoded.ends, encoded.groups
    )
    run_starts = np.flatnonzero(~adjacent) + 1
    shards: List[Tuple[int, int]] = []
    shard_start = 0
    for boundary in run_starts.tolist():
        if boundary - shard_start >= shard_size:
            shards.append((shard_start, boundary))
            shard_start = boundary
    shards.append((shard_start, count))
    return shards


#: One shard as it travels to a reducer: ``(starts, ends, values,
#: groups, w2)`` array slices.  The same tuple shape crosses a process
#: boundary on the pool path and (PTAS-encoded) a network boundary on the
#: cluster path (:mod:`repro.cluster`).
ShardPayload = Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]

#: One shard's reduction output: the complete merge schedule (boundary
#: indices + per-step keys) plus the shard's ``SSE_max``.
ShardTrajectory = Tuple[np.ndarray, np.ndarray, float]


def validate_budget(size: int | None, max_error: float | None) -> None:
    """The one-budget rule shared by every sharded entry point."""
    if (size is None) == (max_error is None):
        raise ValueError("provide exactly one of 'size' and 'max_error'")
    if size is not None and size < 1:
        raise ValueError(f"size bound must be at least 1, got {size}")
    if max_error is not None and not 0.0 <= max_error <= 1.0:
        raise ValueError(f"epsilon must be within [0, 1], got {max_error}")


def shard_payloads(
    encoded: EncodedSegments,
    shards: Sequence[Tuple[int, int]],
    w2: np.ndarray,
) -> List[ShardPayload]:
    """The per-shard worker payloads for a shard plan (zero-copy slices)."""
    return [
        (
            encoded.starts[lo:hi],
            encoded.ends[lo:hi],
            encoded.values[lo:hi],
            encoded.groups[lo:hi],
            w2,
        )
        for lo, hi in shards
    ]


def reduce_shard(payload: ShardPayload) -> ShardTrajectory:
    """Worker task: complete merge schedule plus ``SSE_max`` of one shard.

    This is the unit of remote work for both the process-pool engine and
    the cluster tier's reducer workers (:mod:`repro.cluster.worker`).
    """
    failpoints.fail("parallel.worker")
    starts, ends, values, groups, w2 = payload
    with span("shard_reduce"):
        boundaries, keys = greedy_merge_trajectory(
            starts, ends, values, groups, w2
        )
        sse = shard_sse_max(starts, ends, values, groups, w2)
    return boundaries, keys, sse


# Backwards-compatible name (the pool pickles tasks by qualified name).
_reduce_shard = reduce_shard


def assemble_result(
    encoded: EncodedSegments,
    shards: Sequence[Tuple[int, int]],
    trajectories: Sequence[ShardTrajectory],
    size: int | None,
    max_error: float | None,
) -> GreedyResult:
    """Reconcile shard trajectories under the global budget and rebuild.

    The deterministic back half of every sharded reduction: a k-way merge
    over the shard frontiers (:func:`_reconcile`) followed by one
    ``reduceat`` rebuild per shard.  Because it consumes ``trajectories``
    by shard index — never by completion order — the output is
    bit-identical no matter where or in what order the shard schedules
    were computed (pool workers, remote cluster workers, in-process
    fallback, or any mix).
    """
    with span("frontier_merge"):
        counts, total_error, merges = _reconcile(
            trajectories, size, max_error, len(encoded)
        )
        output: List[AggregateSegment] = []
        for (lo, hi), (boundaries, _, _), taken in zip(
            shards, trajectories, counts
        ):
            output.extend(
                _rebuild_shard(encoded, lo, hi, boundaries[:taken])
            )
    return GreedyResult(
        segments=output,
        error=total_error,
        size=len(output),
        max_heap_size=0,
        merges=merges,
        input_size=len(encoded),
    )


def _reduce_shards_pooled(
    payloads: Sequence[tuple],
    pool_width: int,
    retries: int,
    backoff: float,
) -> List[Tuple[np.ndarray, np.ndarray, float]]:
    """Run every shard on a process pool, surviving worker deaths.

    Shards that completed before a :class:`BrokenProcessPool` keep their
    results; the pool is rebuilt (after an exponential backoff with
    decorrelated jitter) and only the missing shards are resubmitted, up
    to ``retries`` rebuilds.  After
    that the remaining shards run in-process — slower, never wrong.
    Results are indexed by shard, so the reconciliation order (and with
    it the output) is bit-identical to the fault-free run no matter
    which workers died when.
    """
    results: List[Optional[Tuple[np.ndarray, np.ndarray, float]]] = [
        None
    ] * len(payloads)
    pending = list(range(len(payloads)))
    rebuilds = 0
    ladder = Backoff(backoff, max(backoff, DEFAULT_BACKOFF_CAP))
    while pending:
        try:
            width = min(pool_width, len(pending))
            with ProcessPoolExecutor(max_workers=width) as pool:
                futures = {
                    pool.submit(_reduce_shard, payloads[index]): index
                    for index in pending
                }
                for future in as_completed(futures):
                    results[futures[future]] = future.result()
            pending = []
        except BrokenProcessPool:
            pending = [
                index for index in pending if results[index] is None
            ]
            rebuilds += 1
            if rebuilds > retries:
                _metrics.counter(
                    "repro_shard_fallbacks_total",
                    "Shards finished in-process after the pool gave up.",
                    tier="pool",
                ).inc(len(pending))
                for index in pending:
                    results[index] = _reduce_shard(payloads[index])
                pending = []
            else:
                _metrics.counter(
                    "repro_shard_retries_total",
                    "Process-pool rebuilds after worker deaths.",
                    tier="pool",
                ).inc()
                delay = ladder.next()
                if delay > 0:
                    time.sleep(delay)
    assert all(result is not None for result in results)
    return results  # type: ignore[return-value]


def reduce_segments_parallel(
    segments: Iterable[AggregateSegment] | EncodedSegments,
    size: int | None = None,
    max_error: float | None = None,
    weights: Weights | None = None,
    workers: int = 1,
    shard_size: int | None = None,
) -> GreedyResult:
    """Sharded greedy reduction (plain GMS semantics) of a segment stream.

    A compatibility shim over the canonical :func:`repro.api.execute`
    dispatcher: it builds a greedy :class:`repro.api.Plan` with a worker
    policy, so validation errors are identical across all entry points.
    Exactly one of ``size`` and ``max_error`` must be given, with the same
    meaning as in :func:`repro.core.greedy.gms_reduce_to_size` /
    ``gms_reduce_to_error``.  ``workers`` is the process-pool width (``0``
    means ``os.cpu_count()``; ``1`` runs every shard in-process); the result
    is bit-identical for every value.  ``shard_size`` overrides
    :data:`DEFAULT_SHARD_SIZE` — it changes how work is distributed, not
    what is computed (only exact cross-shard key ties are sensitive to it).

    Returns a :class:`~repro.core.greedy.GreedyResult`; ``max_heap_size`` is
    reported as 0 because the engine materialises the input instead of
    bounding a streaming heap.
    """
    from .api import ExecutionPolicy, Method, Plan, execute

    plan = Plan(segments).reduce(
        size=size, max_error=max_error, method=Method.GREEDY
    )
    policy = ExecutionPolicy(
        workers=workers, shard_size=shard_size, weights=weights
    )
    result = execute(plan, policy)
    return GreedyResult(
        segments=result.segments,
        error=result.error,
        size=result.size,
        max_heap_size=result.max_heap_size,
        merges=result.merges,
        input_size=result.input_size,
    )


def run_sharded(
    segments: Iterable[AggregateSegment] | EncodedSegments,
    size: int | None = None,
    max_error: float | None = None,
    weights: Weights | None = None,
    workers: int = 1,
    shard_size: int | None = None,
    shard_retries: int | None = None,
    retry_backoff: float | None = None,
) -> GreedyResult:
    """The sharded engine proper (encode → shard → reduce → reconcile).

    This is the raw engine invoked by :func:`repro.api.execute`; its
    defensive validation mirrors the build-time checks of
    :mod:`repro.api.plan` for direct callers.

    Worker deaths (``BrokenProcessPool``) are survived: completed shards
    keep their results, the pool is rebuilt with exponential backoff up
    to ``shard_retries`` times (default :data:`SHARD_RETRIES`), and the
    remaining shards then fall back to in-process execution — the output
    is bit-identical to the fault-free run in every case, because the
    shard plan and the reconciliation consume results by shard index,
    never by completion order.
    """
    validate_budget(size, max_error)
    if workers < 0:
        raise ValueError(f"workers must be non-negative, got {workers}")
    if shard_size is None:
        shard_size = DEFAULT_SHARD_SIZE
    elif shard_size < 1:
        raise ValueError(f"shard_size must be at least 1, got {shard_size}")
    if shard_retries is None:
        shard_retries = SHARD_RETRIES
    elif shard_retries < 0:
        raise ValueError(
            f"shard_retries must be non-negative, got {shard_retries}"
        )
    if retry_backoff is None:
        retry_backoff = RETRY_BACKOFF_S
    elif retry_backoff < 0:
        raise ValueError(
            f"retry_backoff must be non-negative, got {retry_backoff}"
        )

    encoded = (
        segments
        if isinstance(segments, EncodedSegments)
        else encode_segments(segments)
    )
    count = len(encoded)
    if count == 0:
        return GreedyResult()

    w2 = (
        np.asarray(
            resolve_weights(weights, encoded.dimensions), dtype=np.float64
        )
        ** 2
    )
    shards = plan_shards(encoded, shard_size)
    payloads = shard_payloads(encoded, shards, w2)
    pool_width = workers if workers else (os.cpu_count() or 1)
    if pool_width > 1 and len(payloads) > 1:
        pool_width = min(pool_width, len(payloads))
        trajectories = _reduce_shards_pooled(
            payloads, pool_width, shard_retries, retry_backoff
        )
    else:
        trajectories = [reduce_shard(payload) for payload in payloads]

    return assemble_result(encoded, shards, trajectories, size, max_error)


# ----------------------------------------------------------------------
# Internals
# ----------------------------------------------------------------------
def _reconcile(
    trajectories: Sequence[Tuple[np.ndarray, np.ndarray, float]],
    size: int | None,
    max_error: float | None,
    input_size: int,
) -> Tuple[List[int], float, int]:
    """Decide how many schedule steps each shard takes under the budget.

    A k-way merge over the shard frontiers: the heap holds each shard's
    *next* merge key, and consuming the global minimum advances that shard's
    schedule by one step — exactly the merge global GMS would perform.  Ties
    break towards the earlier shard (then the earlier step).
    """
    key_lists = [keys.tolist() for _, keys, _ in trajectories]
    frontier = [
        (keys[0], shard, 0) for shard, keys in enumerate(key_lists) if keys
    ]
    heapq.heapify(frontier)
    counts = [0] * len(trajectories)
    total_error = 0.0
    merges = 0

    if size is not None:
        live = input_size
        while live > size and frontier:
            key, shard, step = heapq.heappop(frontier)
            counts[shard] += 1
            total_error += key
            merges += 1
            live -= 1
            keys = key_lists[shard]
            if step + 1 < len(keys):
                heapq.heappush(frontier, (keys[step + 1], shard, step + 1))
        return counts, total_error, merges

    # Error-bounded: SSE_max is additive across shards, so the global budget
    # is the sum of the per-shard budgets; the stop rule mirrors
    # gms_reduce_to_error's threshold check.  The slack is relative as well
    # as absolute: the engine's keys and the threshold come from different
    # float summation orders, so at ``ε = 1`` (where the consumed keys
    # telescope to exactly ``SSE_max``) an absolute slack alone would stop
    # one merge short of ``cmin``.
    threshold = max_error * sum(sse for _, _, sse in trajectories)
    budget = threshold + 1e-9 + 1e-9 * threshold
    while frontier:
        key, shard, step = frontier[0]
        if total_error + key > budget:
            break
        heapq.heappop(frontier)
        counts[shard] += 1
        total_error += key
        merges += 1
        keys = key_lists[shard]
        if step + 1 < len(keys):
            heapq.heappush(frontier, (keys[step + 1], shard, step + 1))
    return counts, total_error, merges


def _rebuild_shard(
    encoded: EncodedSegments, lo: int, hi: int, removed: np.ndarray
) -> List[AggregateSegment]:
    """Materialise one shard's output partition after ``removed`` merges.

    ``removed`` holds the shard-local boundary indices consumed from the
    shard's schedule; the surviving boundaries delimit the output segments,
    whose values are computed with one weighted ``reduceat`` pass
    (:func:`repro.core.merge.merge_run` semantics).
    """
    starts = encoded.starts[lo:hi]
    ends = encoded.ends[lo:hi]
    values = encoded.values[lo:hi]
    groups = encoded.groups[lo:hi]
    count = hi - lo
    keep = np.ones(count, dtype=bool)
    if removed.size:
        keep[removed] = False
    part_starts = np.flatnonzero(keep)
    part_ends = np.append(part_starts[1:] - 1, count - 1)
    lengths = (ends - starts + 1).astype(np.float64)
    totals = np.add.reduceat(lengths, part_starts)
    merged = (
        np.add.reduceat(values * lengths[:, None], part_starts, axis=0)
        / totals[:, None]
    )
    group_keys = encoded.group_keys
    output: List[AggregateSegment] = []
    for part, (first, last) in enumerate(zip(part_starts, part_ends)):
        if first == last:
            segment_values = tuple(float(v) for v in values[first])
        else:
            segment_values = tuple(float(v) for v in merged[part])
        output.append(
            AggregateSegment(
                group_keys[int(groups[first])],
                segment_values,
                Interval(int(starts[first]), int(ends[last])),
            )
        )
    return output


__all__ = [
    "DEFAULT_SHARD_SIZE",
    "RETRY_BACKOFF_S",
    "SHARD_RETRIES",
    "EncodedSegments",
    "ShardPayload",
    "ShardTrajectory",
    "assemble_result",
    "encode_segments",
    "plan_shards",
    "reduce_segments_parallel",
    "reduce_shard",
    "run_sharded",
    "shard_payloads",
    "validate_budget",
]
