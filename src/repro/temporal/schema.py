"""Relation schemas for temporal relations.

Following Section 3 of the paper, a temporal relation schema is an ordered
list of named attributes together with one distinguished timestamp attribute
``T`` ranging over the chronon domain.  The non-temporal attributes are plain
Python values; the library does not enforce domains beyond the timestamp.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence, Tuple


class SchemaError(ValueError):
    """Raised when a schema is malformed or an attribute is unknown."""


@dataclass(frozen=True)
class TemporalSchema:
    """Schema of a temporal relation: named attributes plus a timestamp.

    The timestamp attribute is implicit and always named ``timestamp_name``
    (default ``"T"``); it is not listed in :attr:`columns`.

    Parameters
    ----------
    columns:
        Ordered names of the non-temporal attributes ``A1, ..., Am``.
    timestamp_name:
        Name of the timestamp attribute, ``"T"`` by default.
    """

    columns: Tuple[str, ...]
    timestamp_name: str = "T"
    _index: dict = field(init=False, repr=False, compare=False, default=None)

    def __post_init__(self) -> None:
        columns = tuple(self.columns)
        if len(set(columns)) != len(columns):
            raise SchemaError(f"duplicate attribute names in {columns}")
        if self.timestamp_name in columns:
            raise SchemaError(
                f"timestamp attribute {self.timestamp_name!r} must not be "
                f"listed among the value columns"
            )
        object.__setattr__(self, "columns", columns)
        object.__setattr__(
            self, "_index", {name: i for i, name in enumerate(columns)}
        )

    def __len__(self) -> int:
        return len(self.columns)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def index_of(self, name: str) -> int:
        """Return the positional index of attribute ``name``."""
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(
                f"unknown attribute {name!r}; schema has {self.columns}"
            ) from None

    def indices_of(self, names: Iterable[str]) -> Tuple[int, ...]:
        """Return positional indices for a sequence of attribute names."""
        return tuple(self.index_of(name) for name in names)

    def project(self, names: Sequence[str]) -> "TemporalSchema":
        """Return a new schema keeping only ``names`` (order as given)."""
        for name in names:
            self.index_of(name)
        return TemporalSchema(tuple(names), self.timestamp_name)

    def extend(self, names: Sequence[str]) -> "TemporalSchema":
        """Return a new schema with ``names`` appended."""
        return TemporalSchema(self.columns + tuple(names), self.timestamp_name)
