"""Temporal relations: bags of tuples carrying a validity interval.

A :class:`TemporalRelation` is the central data container of the library.  It
stores rows as plain Python tuples of attribute values plus an
:class:`~repro.temporal.interval.Interval`, which keeps iteration cheap for
the sweep-line and dynamic-programming algorithms while still offering a
friendly record-style API through :class:`TemporalTuple`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, List, Sequence, Tuple

from .interval import Interval
from .schema import SchemaError, TemporalSchema


@dataclass(frozen=True)
class TemporalTuple:
    """A single temporal tuple: attribute values plus a validity interval."""

    schema: TemporalSchema
    values: Tuple[Any, ...]
    interval: Interval

    def __getitem__(self, name: str) -> Any:
        return self.values[self.schema.index_of(name)]

    def value_dict(self) -> dict:
        """Return the non-temporal attributes as an ordered dict."""
        return dict(zip(self.schema.columns, self.values))

    def project(self, names: Sequence[str]) -> Tuple[Any, ...]:
        """Return the values of ``names`` in the given order."""
        return tuple(self.values[self.schema.index_of(n)] for n in names)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(
            f"{name}={value!r}"
            for name, value in zip(self.schema.columns, self.values)
        )
        return f"({parts}, T={self.interval})"


class TemporalRelation:
    """An ordered bag of temporal tuples sharing one schema.

    The relation preserves insertion order; algorithms that require a
    particular order (e.g. the PTA merging step needs group-then-time order)
    call :meth:`sorted_sequential` explicitly.

    Parameters
    ----------
    schema:
        The relation schema (non-temporal attributes).
    rows:
        Iterable of ``(values, interval)`` pairs where ``values`` is a tuple
        matching ``schema.columns`` and ``interval`` is an
        :class:`Interval`.
    """

    __slots__ = ("schema", "_rows")

    def __init__(
        self,
        schema: TemporalSchema,
        rows: Iterable[Tuple[Tuple[Any, ...], Interval]] = (),
    ) -> None:
        self.schema = schema
        self._rows: List[Tuple[Tuple[Any, ...], Interval]] = []
        for values, interval in rows:
            self.append(values, interval)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_records(
        cls,
        columns: Sequence[str],
        records: Iterable[Sequence[Any]],
        timestamp_name: str = "T",
    ) -> "TemporalRelation":
        """Build a relation from records whose last element is the interval.

        Each record is a sequence ``(v1, ..., vm, interval)`` where
        ``interval`` is either an :class:`Interval` or a ``(start, end)``
        pair.
        """
        schema = TemporalSchema(tuple(columns), timestamp_name)
        relation = cls(schema)
        for record in records:
            *values, interval = record
            if not isinstance(interval, Interval):
                start, end = interval
                interval = Interval(int(start), int(end))
            relation.append(tuple(values), interval)
        return relation

    def append(self, values: Tuple[Any, ...], interval: Interval) -> None:
        """Append one tuple; validates arity and the interval type."""
        if len(values) != len(self.schema):
            raise SchemaError(
                f"expected {len(self.schema)} values for schema "
                f"{self.schema.columns}, got {len(values)}"
            )
        if not isinstance(interval, Interval):
            raise TypeError(f"interval must be an Interval, got {interval!r}")
        self._rows.append((tuple(values), interval))

    def copy(self) -> "TemporalRelation":
        """Return a shallow copy of the relation."""
        return TemporalRelation(self.schema, list(self._rows))

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rows)

    def __bool__(self) -> bool:
        return bool(self._rows)

    def __iter__(self) -> Iterator[TemporalTuple]:
        for values, interval in self._rows:
            yield TemporalTuple(self.schema, values, interval)

    def __getitem__(self, index: int) -> TemporalTuple:
        values, interval = self._rows[index]
        return TemporalTuple(self.schema, values, interval)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TemporalRelation):
            return NotImplemented
        return (
            self.schema.columns == other.schema.columns
            and self._rows == other._rows
        )

    def rows(self) -> List[Tuple[Tuple[Any, ...], Interval]]:
        """Return the raw ``(values, interval)`` row list (not a copy)."""
        return self._rows

    def intervals(self) -> List[Interval]:
        """Return the validity intervals of all tuples in order."""
        return [interval for _, interval in self._rows]

    def column(self, name: str) -> List[Any]:
        """Return all values of one attribute, in row order."""
        idx = self.schema.index_of(name)
        return [values[idx] for values, _ in self._rows]

    def timespan(self) -> Interval:
        """Return the smallest interval covering every tuple's timestamp."""
        if not self._rows:
            raise ValueError("timespan() of an empty relation")
        return Interval(
            min(iv.start for _, iv in self._rows),
            max(iv.end for _, iv in self._rows),
        )

    def total_duration(self) -> int:
        """Return the sum of interval lengths over all tuples."""
        return sum(iv.length for _, iv in self._rows)

    # ------------------------------------------------------------------
    # Relational-style helpers
    # ------------------------------------------------------------------
    def filter(
        self, predicate: Callable[[TemporalTuple], bool]
    ) -> "TemporalRelation":
        """Return a new relation keeping only tuples satisfying ``predicate``."""
        result = TemporalRelation(self.schema)
        for row in self:
            if predicate(row):
                result.append(row.values, row.interval)
        return result

    def project(self, names: Sequence[str]) -> "TemporalRelation":
        """Return a new relation keeping only the attributes ``names``."""
        indices = self.schema.indices_of(names)
        projected = TemporalRelation(self.schema.project(names))
        for values, interval in self._rows:
            projected.append(tuple(values[i] for i in indices), interval)
        return projected

    def groups(self, group_by: Sequence[str]) -> dict:
        """Partition tuple indices by the values of the grouping attributes.

        Returns a dict mapping each grouping-value combination ``g`` to the
        list of row indices having ``row.A = g``.  With an empty ``group_by``
        every row falls into the single group ``()``.
        """
        indices = self.schema.indices_of(group_by)
        partition: dict = {}
        for row_index, (values, _) in enumerate(self._rows):
            key = tuple(values[i] for i in indices)
            partition.setdefault(key, []).append(row_index)
        return partition

    def sorted_sequential(
        self, group_by: Sequence[str] | None = None
    ) -> "TemporalRelation":
        """Return a copy sorted by grouping attributes, then chronologically.

        This is the order required by the PTA merging step (Section 5.1): all
        tuples of one aggregation group are contiguous and, within a group,
        sorted by interval start.
        """
        group_by = tuple(group_by or ())
        indices = self.schema.indices_of(group_by)

        def key(row: Tuple[Tuple[Any, ...], Interval]):
            values, interval = row
            return (
                tuple(values[i] for i in indices),
                interval.start,
                interval.end,
            )

        return TemporalRelation(self.schema, sorted(self._rows, key=key))

    def is_sequential(self, group_by: Sequence[str] | None = None) -> bool:
        """Check that timestamps within each group are pairwise disjoint.

        A relation is *sequential* (Section 3) when, for every pair of
        distinct tuples with identical grouping attribute values, the
        timestamps do not intersect.  ITA results are always sequential.

        ``group_by=None`` (the default) groups by every non-temporal
        attribute; an explicit empty sequence means a single global group.
        """
        group_by = (
            self.schema.columns if group_by is None else tuple(group_by)
        )
        for rows in self.groups(group_by).values():
            intervals = sorted(
                (self._rows[i][1] for i in rows),
                key=lambda iv: (iv.start, iv.end),
            )
            for left, right in zip(intervals, intervals[1:]):
                if left.overlaps(right):
                    return False
        return True

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        header = ", ".join(self.schema.columns + (self.schema.timestamp_name,))
        lines = [header]
        for row in self:
            lines.append(str(row))
        return "\n".join(lines)
