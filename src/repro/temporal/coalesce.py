"""Temporal coalescing of value-equivalent tuples.

Coalescing (Böhlen, Snodgrass and Soo, VLDB 1996) merges tuples that agree on
all non-temporal attributes and whose validity intervals are adjacent or
overlapping into single tuples over maximal intervals.  ITA uses it as its
final step: per-chronon aggregate tuples with identical values are collapsed
into maximal constant-value intervals (Definition 1).
"""

from __future__ import annotations

from typing import Sequence

from .relation import TemporalRelation


def coalesce(
    relation: TemporalRelation,
    value_columns: Sequence[str] | None = None,
) -> TemporalRelation:
    """Coalesce value-equivalent tuples over maximal time intervals.

    Two tuples are coalesced when they agree on ``value_columns`` (all
    non-temporal attributes by default) and their intervals overlap or meet.
    The output contains one tuple per maximal such run and is sorted by the
    value columns and then chronologically.

    Parameters
    ----------
    relation:
        The input temporal relation.
    value_columns:
        Attributes that must be equal for tuples to be coalesced.  Defaults
        to every non-temporal attribute of the relation.

    Returns
    -------
    TemporalRelation
        A new relation with the same schema where no two value-equivalent
        tuples have adjacent or overlapping intervals.
    """
    columns = tuple(value_columns or relation.schema.columns)
    indices = relation.schema.indices_of(columns)

    runs: dict = {}
    for values, interval in relation.rows():
        key = tuple(values[i] for i in indices)
        runs.setdefault(key, []).append((values, interval))

    result = TemporalRelation(relation.schema)
    for key in sorted(runs, key=_sort_key):
        rows = sorted(runs[key], key=lambda row: (row[1].start, row[1].end))
        current_values, current_interval = rows[0]
        for values, interval in rows[1:]:
            if current_interval.adjacent_or_overlapping(interval):
                current_interval = current_interval.union(interval)
            else:
                result.append(current_values, current_interval)
                current_values, current_interval = values, interval
        result.append(current_values, current_interval)
    return result


def _sort_key(key: tuple) -> tuple:
    """Order group keys deterministically even for mixed value types.

    Equal values must map to equal sort keys or coalescing would not be
    idempotent: ``0.0 == -0.0`` puts both spellings in one run bucket, but
    ``str()`` distinguishes them, so whichever spelling happened to enter
    the dict first would decide the bucket's position relative to other
    keys — and that spelling can change between passes.  Negative zero is
    therefore folded to positive zero before stringifying.
    """
    return tuple(
        (
            str(type(v)),
            str(0.0 if isinstance(v, float) and v == 0.0 else v),
        )
        for v in key
    )


def split_into_maximal_segments(
    relation: TemporalRelation,
    group_by: Sequence[str],
) -> list[list[int]]:
    """Return runs of row indices forming maximal adjacent segments.

    The relation must already be sorted sequentially (group attributes, then
    time).  Each returned list contains the indices of a maximal run of
    tuples that belong to the same group and are not separated by temporal
    gaps — i.e. the segments between the *boundaries* that the PTA merging
    step may never cross (Section 5.1).
    """
    indices = relation.schema.indices_of(group_by)
    segments: list[list[int]] = []
    current: list[int] = []
    previous = None
    for row_index, (values, interval) in enumerate(relation.rows()):
        key = tuple(values[i] for i in indices)
        if previous is not None:
            prev_key, prev_interval = previous
            if key == prev_key and prev_interval.meets(interval):
                current.append(row_index)
            else:
                segments.append(current)
                current = [row_index]
        else:
            current = [row_index]
        previous = (key, interval)
    if current:
        segments.append(current)
    return segments
