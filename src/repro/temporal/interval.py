"""Closed time intervals over a discrete chronon domain.

The paper models time as a discrete, totally ordered domain of *chronons*
(time instants).  A timestamp is a convex set of chronons represented by its
inclusive start and end points ``[tb, te]`` (Section 3 of the paper).  This
module provides the :class:`Interval` value type used throughout the library
for validity intervals of temporal tuples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional


@dataclass(frozen=True, order=True)
class Interval:
    """A closed interval ``[start, end]`` of integer chronons.

    Both endpoints are inclusive, matching the paper's ``[tb, te]`` notation.
    Intervals compare lexicographically by ``(start, end)`` which is the
    chronological order used when sorting sequential relations.

    Parameters
    ----------
    start:
        Inclusive starting chronon ``tb``.
    end:
        Inclusive ending chronon ``te``; must satisfy ``end >= start``.
    """

    start: int
    end: int

    def __post_init__(self) -> None:
        if not isinstance(self.start, int) or not isinstance(self.end, int):
            raise TypeError(
                f"interval endpoints must be integers, got "
                f"({self.start!r}, {self.end!r})"
            )
        if self.end < self.start:
            raise ValueError(
                f"interval end {self.end} precedes start {self.start}"
            )

    # ------------------------------------------------------------------
    # Basic geometry
    # ------------------------------------------------------------------
    @property
    def length(self) -> int:
        """Number of chronons covered, ``|T| = te - tb + 1``."""
        return self.end - self.start + 1

    def __len__(self) -> int:
        return self.length

    def __contains__(self, chronon: int) -> bool:
        return self.start <= chronon <= self.end

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.start, self.end + 1))

    # ------------------------------------------------------------------
    # Relationships between intervals
    # ------------------------------------------------------------------
    def overlaps(self, other: "Interval") -> bool:
        """Return ``True`` if the two intervals share at least one chronon."""
        return self.start <= other.end and other.start <= self.end

    def intersect(self, other: "Interval") -> Optional["Interval"]:
        """Return the intersection interval, or ``None`` if disjoint."""
        lo = max(self.start, other.start)
        hi = min(self.end, other.end)
        if lo > hi:
            return None
        return Interval(lo, hi)

    def meets(self, other: "Interval") -> bool:
        """Return ``True`` if ``other`` starts immediately after ``self``.

        This is Allen's *meets* relation on closed integer intervals:
        ``self.end + 1 == other.start``.  Two tuples whose intervals meet and
        whose grouping attributes agree are *adjacent* in the sense of
        Definition 2 and may be merged by the PTA operator.
        """
        return self.end + 1 == other.start

    def adjacent_or_overlapping(self, other: "Interval") -> bool:
        """Return ``True`` if the union of the two intervals is convex."""
        return self.overlaps(other) or self.meets(other) or other.meets(self)

    def union(self, other: "Interval") -> "Interval":
        """Return the covering interval of two adjacent/overlapping intervals.

        Raises
        ------
        ValueError
            If the two intervals are separated by a gap, in which case their
            union would not be convex.
        """
        if not self.adjacent_or_overlapping(other):
            raise ValueError(
                f"cannot union {self} and {other}: separated by a gap"
            )
        return Interval(min(self.start, other.start), max(self.end, other.end))

    def precedes(self, other: "Interval") -> bool:
        """Return ``True`` if ``self`` ends strictly before ``other`` starts."""
        return self.end < other.start

    def contains_interval(self, other: "Interval") -> bool:
        """Return ``True`` if ``other`` is fully contained in ``self``."""
        return self.start <= other.start and other.end <= self.end

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def instant(cls, chronon: int) -> "Interval":
        """Return the degenerate interval ``[t, t]`` for a single chronon."""
        return cls(chronon, chronon)

    def split_at(self, chronon: int) -> tuple["Interval", "Interval"]:
        """Split into ``[start, chronon]`` and ``[chronon + 1, end]``.

        ``chronon`` must lie strictly inside the interval (it may not equal
        ``end``), otherwise the right part would be empty.
        """
        if not (self.start <= chronon < self.end):
            raise ValueError(
                f"split point {chronon} not strictly inside {self}"
            )
        return Interval(self.start, chronon), Interval(chronon + 1, self.end)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.start}, {self.end}]"


def span(intervals: "list[Interval] | tuple[Interval, ...]") -> Interval:
    """Return the smallest interval covering all the given intervals."""
    if not intervals:
        raise ValueError("span() of an empty interval collection")
    return Interval(
        min(iv.start for iv in intervals),
        max(iv.end for iv in intervals),
    )
