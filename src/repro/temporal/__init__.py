"""Temporal relational model: intervals, schemas, relations and coalescing."""

from .coalesce import coalesce, split_into_maximal_segments
from .interval import Interval, span
from .relation import TemporalRelation, TemporalTuple
from .schema import SchemaError, TemporalSchema

__all__ = [
    "Interval",
    "span",
    "SchemaError",
    "TemporalSchema",
    "TemporalRelation",
    "TemporalTuple",
    "coalesce",
    "split_into_maximal_segments",
]
