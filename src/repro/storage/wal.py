"""Write-ahead-log segment files and mmap-backed checkpoint files.

This module is the byte-level half of the durability tier
(:mod:`repro.service.durability`): append-only **WAL segment files** that
record every acknowledged push, and atomically-written **checkpoint
files** that hold a finalized epoch's summary columns.  Together they
carry the *replay invariant* the recovery path relies on:

    loading the last checkpoint and replaying the WAL tail through
    :meth:`repro.core.greedy.OnlineReducer.replay` reproduces the live
    reducer state **bit-identically** — the recovered store serves the
    same summary bytes the uncrashed process would have served.

**WAL layout** (all integers little-endian; normative spec in
``docs/FORMATS.md``)::

    file header   magic  4 bytes  b"PTAW"
                  version u16     1
    then frames:  length  u32     payload byte count
                  crc32   u32     zlib.crc32 of the payload
                  payload ...     opaque bytes (the serving layer nests a
                                  PTAS segment payload per push generation)

A crash can only tear the *final* frame (appends are sequential), so
:func:`read_wal` stops at the first frame whose header or payload is
short or whose CRC mismatches; with ``recover=True`` the file is
truncated back to the last intact frame — a torn tail is *dropped*, never
propagated and never an error.  Without ``recover`` the same condition
raises :class:`WalError`, which is how tests distinguish "dirty but
recoverable" from silent data loss.

**Checkpoint files** are one :func:`repro.storage.columns.pack_columns`
buffer (magic ``b"PTAC"``) written via *temp file + fsync + atomic
rename*, so a checkpoint either exists completely or not at all.
:func:`load_checkpoint` maps the file read-only (``mmap=True``) and
returns zero-copy column views over the mapping — frozen epochs are paged
in by the OS on demand instead of occupying private process memory.

Doctest — a torn final frame is truncated, the intact prefix survives:

>>> import tempfile, os
>>> from repro.storage.wal import WalWriter, read_wal
>>> path = os.path.join(tempfile.mkdtemp(), "epoch-00000001.wal")
>>> with WalWriter(path) as wal:
...     wal.append(b"first push")
...     wal.append(b"second push")
>>> with open(path, "ab") as f:        # simulate a crash mid-append
...     _ = f.write(b"\\x99\\x00\\x00\\x00torn")
>>> read_wal(path, recover=True)
[b'first push', b'second push']
"""

from __future__ import annotations

import mmap
import os
import struct
import zlib
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional, Tuple, Union

import numpy as np

from ..util import failpoints
from .columns import ColumnCodecError, pack_columns, unpack_columns

#: Magic tag and version of WAL segment files.  Bump the version on any
#: frame-layout change; readers reject every other version.
WAL_MAGIC = b"PTAW"
WAL_VERSION = 1

#: Magic tag and version of checkpoint files (one packed column buffer).
CHECKPOINT_MAGIC = b"PTAC"
CHECKPOINT_VERSION = 1

_FILE_HEADER = struct.Struct("<4sH")
_FRAME_HEADER = struct.Struct("<II")  # payload length, crc32(payload)

PathLike = Union[str, Path]


class WalError(ValueError):
    """A malformed WAL file: wrong magic/version, or a corrupt frame that
    the caller did not ask to recover from."""


# Per-frame durability only needs the data (and the size, which every
# fdatasync implementation flushes when it changed) on stable storage —
# not atime/mtime.  fdatasync is what production WALs use; fall back to
# fsync on platforms without it.
_datasync = getattr(os, "fdatasync", os.fsync)


class WalWriter:
    """Appender for one WAL segment file.

    Opens the file for appending (creating it with a header when new or
    empty) and writes one length-prefixed, CRC-checked frame per
    :meth:`append`.  ``fsync_every=n`` issues an ``fsync`` after every
    ``n``-th frame (``1`` — the default — makes every acknowledged append
    durable; ``0`` leaves flushing to the OS, trading the tail of the log
    on power loss for append latency).  Usable as a context manager.

    **Failed appends never poison the tail.**  If the frame write raises
    (``ENOSPC``, ``EIO``, an injected fault), the writer truncates the
    file back to the end of the last complete frame before re-raising,
    so the log stays byte-clean and later appends stay readable.  Only
    if that rollback truncation *itself* fails does the writer mark
    itself :attr:`broken` and refuse further appends — a torn tail must
    never be appended after, because readers stop at the first torn
    frame and would silently drop everything behind it.
    """

    def __init__(self, path: PathLike, fsync_every: int = 1) -> None:
        if fsync_every < 0:
            raise WalError(
                f"fsync_every must be a non-negative integer, got {fsync_every}"
            )
        self.path = Path(path)
        self.fsync_every = fsync_every
        self._since_sync = 0
        #: Set when a failed append could not be rolled back: the file may
        #: end in a torn frame, so appending after it would hide data.
        self.broken = False
        fresh = not self.path.exists() or self.path.stat().st_size == 0
        # Unbuffered: each frame is handed to the kernel as ONE write, so
        # there is no buffered copy to flush before the datasync and a
        # crash can only ever tear the final frame.
        self._file = open(self.path, "ab", buffering=0)
        if fresh:
            self._file.write(_FILE_HEADER.pack(WAL_MAGIC, WAL_VERSION))
            _datasync(self._file.fileno())
        self._offset = os.fstat(self._file.fileno()).st_size

    def tell(self) -> int:
        """Byte offset of the end of the last complete frame."""
        return self._offset

    def append(self, payload: bytes) -> None:
        """Append one frame; durable per the ``fsync_every`` cadence.

        On a write error the file is truncated back to :meth:`tell`
        (see the class docstring) and the error propagates.
        """
        if self.broken:
            raise WalError(
                f"{self.path}: writer is broken (an earlier failed append "
                f"could not be rolled back); rotate the epoch"
            )
        file = self._file
        begin = self._offset
        try:
            failpoints.fail("wal.append")
            file.write(
                _FRAME_HEADER.pack(len(payload), zlib.crc32(payload))
                + payload
            )
        except OSError:
            self.truncate_to(begin)
            raise
        self._offset = begin + _FRAME_HEADER.size + len(payload)
        if self.fsync_every:
            self._since_sync += 1
            if self._since_sync >= self.fsync_every:
                self.sync()

    def truncate_to(self, offset: int) -> None:
        """Truncate the file back to ``offset`` (a frame boundary).

        The rollback half of the append contract — also used by the
        store to undo a durably-appended frame whose in-memory
        application failed.  Failure marks the writer :attr:`broken`
        and re-raises.
        """
        try:
            failpoints.fail("wal.rollback")
            os.ftruncate(self._file.fileno(), offset)
            _datasync(self._file.fileno())
        except OSError:
            self.broken = True
            raise
        self._offset = offset

    def sync(self) -> None:
        """Force an fsync now, regardless of the cadence."""
        failpoints.fail("wal.fsync")
        _datasync(self._file.fileno())
        self._since_sync = 0

    def close(self) -> None:
        if not self._file.closed:
            _datasync(self._file.fileno())
            self._file.close()

    def __enter__(self) -> "WalWriter":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()


def read_wal(path: PathLike, recover: bool = False) -> List[bytes]:
    """Read every intact frame of a WAL segment file, in append order.

    Validation stops at the first frame that is torn (header or payload
    runs past end-of-file) or corrupt (CRC mismatch).  With
    ``recover=True`` the file is truncated back to the end of the last
    intact frame and the intact prefix is returned — the crash-recovery
    contract: a torn final frame is dropped, never served.  With
    ``recover=False`` the same condition raises :class:`WalError`.
    A wrong magic tag or version always raises — recovery must never
    reinterpret a foreign or future-format file.
    """
    data = Path(path).read_bytes()
    if len(data) < _FILE_HEADER.size:
        raise WalError(
            f"{path}: too short for a WAL header ({len(data)} bytes)"
        )
    magic, version = _FILE_HEADER.unpack_from(data, 0)
    if magic != WAL_MAGIC:
        raise WalError(
            f"{path}: wrong magic tag {magic!r} (expected {WAL_MAGIC!r})"
        )
    if version != WAL_VERSION:
        raise WalError(
            f"{path}: unsupported WAL version {version}; this reader "
            f"understands version {WAL_VERSION}"
        )
    frames: List[bytes] = []
    offset = _FILE_HEADER.size
    good_end = offset
    size = len(data)
    why = ""
    while offset < size:
        if offset + _FRAME_HEADER.size > size:
            why = f"torn frame header at offset {offset}"
            break
        length, crc = _FRAME_HEADER.unpack_from(data, offset)
        begin = offset + _FRAME_HEADER.size
        end = begin + length
        if end > size:
            why = (
                f"torn frame payload at offset {offset}: header promises "
                f"{length} bytes, {size - begin} remain"
            )
            break
        payload = data[begin:end]
        if zlib.crc32(payload) != crc:
            why = f"CRC mismatch in the frame at offset {offset}"
            break
        frames.append(payload)
        offset = good_end = end
    if good_end != size:
        if not recover:
            raise WalError(f"{path}: {why}")
        with open(path, "r+b") as file:
            file.truncate(good_end)
            file.flush()
            os.fsync(file.fileno())
    return frames


def iter_wal_frames(
    path: PathLike, offset: Optional[int] = None
) -> Iterator[Tuple[int, bytes]]:
    """Yield ``(next_offset, payload)`` for every intact frame — tailing.

    The incremental cousin of :func:`read_wal`, built for readers that
    *follow* a live WAL (the replication tier streams a primary's frames
    to a warm standby from here): start at ``offset`` — ``None`` means
    just past the file header, anything else must be a frame boundary a
    previous call yielded — and stop silently at the first torn or
    CRC-mismatching frame.  A torn tail is not an error for a tailer:
    the writer may be mid-append, and the next call resumes from the
    last yielded offset to pick the frame up once it is complete.
    Wrong magic/version still raise :class:`WalError` — tailing a
    foreign file is never recoverable.
    """
    data = Path(path).read_bytes()
    if len(data) < _FILE_HEADER.size:
        raise WalError(
            f"{path}: too short for a WAL header ({len(data)} bytes)"
        )
    magic, version = _FILE_HEADER.unpack_from(data, 0)
    if magic != WAL_MAGIC:
        raise WalError(
            f"{path}: wrong magic tag {magic!r} (expected {WAL_MAGIC!r})"
        )
    if version != WAL_VERSION:
        raise WalError(
            f"{path}: unsupported WAL version {version}; this reader "
            f"understands version {WAL_VERSION}"
        )
    position = _FILE_HEADER.size if offset is None else offset
    if position < _FILE_HEADER.size:
        raise WalError(
            f"{path}: offset {position} is inside the file header"
        )
    size = len(data)
    while position < size:
        if position + _FRAME_HEADER.size > size:
            return  # torn header: the writer may still be appending
        length, crc = _FRAME_HEADER.unpack_from(data, position)
        begin = position + _FRAME_HEADER.size
        end = begin + length
        if end > size:
            return  # torn payload
        payload = data[begin:end]
        if zlib.crc32(payload) != crc:
            return  # corrupt tail: recovery (not tailing) truncates it
        position = end
        yield position, payload


# ----------------------------------------------------------------------
# Checkpoint files
# ----------------------------------------------------------------------
def write_checkpoint(
    path: PathLike,
    columns: Mapping[str, np.ndarray],
    magic: bytes = CHECKPOINT_MAGIC,
    version: int = CHECKPOINT_VERSION,
) -> None:
    """Atomically persist packed columns: temp file, fsync, rename.

    After the rename is durable (the directory is fsynced too), the
    checkpoint is visible under ``path`` completely or not at all — a
    crash mid-write leaves only a stale ``.tmp`` file, which recovery
    ignores and the next checkpoint overwrites.
    """
    target = Path(path)
    payload = pack_columns(columns, magic, version)
    temp = target.with_name(target.name + ".tmp")
    failpoints.fail("checkpoint.write")
    with open(temp, "wb") as file:
        file.write(payload)
        file.flush()
        os.fsync(file.fileno())
    failpoints.fail("checkpoint.rename")
    os.replace(temp, target)
    directory_fd = os.open(target.parent, os.O_RDONLY)
    try:
        os.fsync(directory_fd)
    finally:
        os.close(directory_fd)


def load_checkpoint(
    path: PathLike,
    magic: bytes = CHECKPOINT_MAGIC,
    version: int = CHECKPOINT_VERSION,
    use_mmap: bool = True,
) -> Dict[str, np.ndarray]:
    """Load a checkpoint's columns, mmap-backed by default.

    With ``use_mmap=True`` the returned arrays are read-only views over a
    private read-only memory map of the file: loading costs one header
    parse, the payload is paged in lazily by the OS, and the mapping
    stays alive exactly as long as the arrays reference it.  With
    ``use_mmap=False`` the arrays are ordinary owning copies.  Malformed,
    truncated, cross-version or wrong-magic files raise
    :class:`WalError` naming the first mismatch.
    """
    try:
        if not use_mmap:
            return unpack_columns(Path(path).read_bytes(), magic, version)
        with open(path, "rb") as file:
            mapped = mmap.mmap(file.fileno(), 0, access=mmap.ACCESS_READ)
        return unpack_columns(memoryview(mapped), magic, version, copy=False)
    except ColumnCodecError as error:
        raise WalError(f"{path}: {error}") from error
    except ValueError as error:
        # mmap of an empty file raises a bare ValueError.
        raise WalError(f"{path}: {error}") from error


def frame_overhead() -> Tuple[int, int]:
    """(file header bytes, per-frame header bytes) — for capacity math."""
    return _FILE_HEADER.size, _FRAME_HEADER.size


__all__ = [
    "CHECKPOINT_MAGIC",
    "CHECKPOINT_VERSION",
    "WAL_MAGIC",
    "WAL_VERSION",
    "WalError",
    "WalWriter",
    "frame_overhead",
    "iter_wal_frames",
    "load_checkpoint",
    "read_wal",
    "write_checkpoint",
]
