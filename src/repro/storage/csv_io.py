"""CSV persistence for temporal relations.

The paper stores its relations in an Oracle 11g database; this module is the
light-weight stand-in: temporal relations round-trip through plain CSV files
with two extra columns for the interval endpoints, which is sufficient for
feeding external data into the operators and for persisting experiment
inputs/outputs.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Sequence

from ..temporal import Interval, TemporalRelation, TemporalSchema

_START_COLUMN = "t_start"
_END_COLUMN = "t_end"


def write_relation(relation: TemporalRelation, path: str | Path) -> None:
    """Write ``relation`` to ``path`` as CSV with interval endpoint columns."""
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(relation.schema.columns) + [_START_COLUMN, _END_COLUMN])
        for values, interval in relation.rows():
            writer.writerow(list(values) + [interval.start, interval.end])


def read_relation(
    path: str | Path,
    numeric_columns: Sequence[str] = (),
    timestamp_name: str = "T",
) -> TemporalRelation:
    """Read a relation previously written by :func:`write_relation`.

    CSV stores everything as text; ``numeric_columns`` lists the attributes
    to convert back to ``float``.
    """
    path = Path(path)
    with path.open("r", newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        if header[-2:] != [_START_COLUMN, _END_COLUMN]:
            raise ValueError(
                f"{path} does not look like a temporal relation CSV "
                f"(missing {_START_COLUMN}/{_END_COLUMN} columns)"
            )
        columns = tuple(header[:-2])
        numeric = set(numeric_columns)
        schema = TemporalSchema(columns, timestamp_name)
        relation = TemporalRelation(schema)
        for record in reader:
            *values, start, end = record
            converted = tuple(
                float(value) if name in numeric else value
                for name, value in zip(columns, values)
            )
            relation.append(converted, Interval(int(start), int(end)))
    return relation
