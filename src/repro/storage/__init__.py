"""Storage substrate: in-memory tables and CSV persistence."""

from .csv_io import read_relation, write_relation
from .table import Table

__all__ = ["Table", "read_relation", "write_relation"]
