"""Storage substrate: tables, CSV persistence, binary column buffers."""

from .columns import ColumnCodecError, pack_columns, unpack_columns
from .csv_io import read_relation, write_relation
from .table import Table

__all__ = [
    "ColumnCodecError",
    "Table",
    "pack_columns",
    "read_relation",
    "unpack_columns",
    "write_relation",
]
