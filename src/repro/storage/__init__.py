"""Storage substrate: tables, CSV, column buffers, WAL + checkpoints."""

from .columns import ColumnCodecError, pack_columns, unpack_columns
from .csv_io import read_relation, write_relation
from .table import Table
from .wal import (
    CHECKPOINT_MAGIC,
    CHECKPOINT_VERSION,
    WAL_MAGIC,
    WAL_VERSION,
    WalError,
    WalWriter,
    load_checkpoint,
    read_wal,
    write_checkpoint,
)

__all__ = [
    "CHECKPOINT_MAGIC",
    "CHECKPOINT_VERSION",
    "ColumnCodecError",
    "Table",
    "WAL_MAGIC",
    "WAL_VERSION",
    "WalError",
    "WalWriter",
    "load_checkpoint",
    "pack_columns",
    "read_relation",
    "read_wal",
    "unpack_columns",
    "write_checkpoint",
    "write_relation",
]
