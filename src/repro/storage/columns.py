"""Versioned binary container for flat NumPy column sets.

The sharded engine (:mod:`repro.parallel`) established flat column arrays —
``int64`` interval endpoints, a ``float64`` value matrix, dense group ids —
as the internal representation a segment stream travels in.  This module
gives that representation a *byte-level* form: a self-describing, versioned
container that packs any mapping of named arrays into one buffer and
restores it dtype- and shape-preserving.  The serving wire format
(:mod:`repro.service.wire`) builds on it, so the columns that cross a
process boundary today are byte-for-byte the columns that would cross a
network boundary in a multi-host reduction.

Layout (all integers little-endian)::

    magic    4 bytes   caller-chosen tag, e.g. b"PTAS"
    version  u16       caller-chosen format version
    ncols    u16       number of columns
    then per column:
      name_len   u16   UTF-8 byte length of the column name
      name       ...   column name
      dtype_len  u16   ASCII byte length of the NumPy dtype string
      dtype      ...   e.g. "<f8", "<i8", "|u1"
      ndim       u8    number of dimensions
      shape      u64 × ndim
      nbytes     u64   payload size
      payload    ...   raw C-order array bytes

Decoding validates the magic, the version, every length field and the
total size, and raises :class:`ColumnCodecError` with a message naming the
first mismatch, so corrupted or cross-version buffers fail loudly instead
of deserialising garbage.
"""

from __future__ import annotations

import struct
from typing import Dict, Mapping

import numpy as np

_HEADER = struct.Struct("<4sHH")
_U16 = struct.Struct("<H")
_U8 = struct.Struct("<B")
_U64 = struct.Struct("<Q")


class ColumnCodecError(ValueError):
    """A malformed, truncated, or wrong-magic/version column buffer."""


def pack_columns(
    columns: Mapping[str, np.ndarray], magic: bytes, version: int
) -> bytes:
    """Serialise named arrays into one self-describing binary buffer."""
    if len(magic) != 4:
        raise ColumnCodecError(
            f"magic tag must be exactly 4 bytes, got {magic!r}"
        )
    if not 0 <= version <= 0xFFFF:
        raise ColumnCodecError(f"version must fit in uint16, got {version}")
    parts = [_HEADER.pack(magic, version, len(columns))]
    for name, array in columns.items():
        array = np.ascontiguousarray(array)
        encoded_name = name.encode("utf-8")
        encoded_dtype = array.dtype.str.encode("ascii")
        parts.append(_U16.pack(len(encoded_name)))
        parts.append(encoded_name)
        parts.append(_U16.pack(len(encoded_dtype)))
        parts.append(encoded_dtype)
        parts.append(_U8.pack(array.ndim))
        for extent in array.shape:
            parts.append(_U64.pack(extent))
        payload = array.tobytes()
        parts.append(_U64.pack(len(payload)))
        parts.append(payload)
    return b"".join(parts)


def unpack_columns(
    data: "bytes | memoryview", magic: bytes, version: int, copy: bool = True
) -> Dict[str, np.ndarray]:
    """Restore the named arrays packed by :func:`pack_columns`.

    The caller states which ``magic`` tag and ``version`` it understands;
    buffers carrying anything else are rejected (that is how a future
    format revision keeps old readers from misinterpreting new bytes).

    With ``copy=False`` the returned arrays are *views* into ``data``
    instead of owning copies: zero deserialisation cost, but the arrays
    are read-only whenever the buffer is (and they keep ``data`` alive).
    This is what lets the durability tier serve frozen-epoch checkpoints
    straight out of an ``mmap`` of the file — the OS pages columns in on
    demand and they never occupy private process memory
    (:func:`repro.storage.wal.load_checkpoint`).
    """
    if len(data) < _HEADER.size:
        raise ColumnCodecError(
            f"buffer too short for a column header: {len(data)} bytes"
        )
    found_magic, found_version, ncols = _HEADER.unpack_from(data, 0)
    if found_magic != magic:
        raise ColumnCodecError(
            f"wrong magic tag: expected {magic!r}, found {found_magic!r}"
        )
    if found_version != version:
        raise ColumnCodecError(
            f"unsupported format version {found_version}; this reader "
            f"understands version {version}"
        )
    offset = _HEADER.size
    columns: Dict[str, np.ndarray] = {}
    for _ in range(ncols):
        name, offset = _read_sized(data, offset, "column name")
        dtype_str, offset = _read_sized(data, offset, "dtype string")
        offset = _check_room(data, offset, _U8.size, "ndim")
        (ndim,) = _U8.unpack_from(data, offset - _U8.size)
        shape = []
        for _ in range(ndim):
            offset = _check_room(data, offset, _U64.size, "shape extent")
            shape.append(_U64.unpack_from(data, offset - _U64.size)[0])
        offset = _check_room(data, offset, _U64.size, "payload size")
        (nbytes,) = _U64.unpack_from(data, offset - _U64.size)
        offset = _check_room(data, offset, nbytes, "column payload")
        try:
            dtype = np.dtype(dtype_str.decode("ascii"))
        except (TypeError, UnicodeDecodeError) as error:
            raise ColumnCodecError(
                f"invalid dtype string {dtype_str!r}"
            ) from error
        expected = dtype.itemsize * int(np.prod(shape, dtype=np.int64))
        if expected != nbytes:
            raise ColumnCodecError(
                f"column {name.decode('utf-8', 'replace')!r}: payload of "
                f"{nbytes} bytes does not match dtype {dtype.str} and "
                f"shape {tuple(shape)}"
            )
        array = np.frombuffer(
            data, dtype=dtype, count=int(np.prod(shape, dtype=np.int64)),
            offset=offset - nbytes,
        ).reshape(tuple(int(extent) for extent in shape))
        if copy:
            array = array.copy()  # writable, owns its data
        columns[name.decode("utf-8")] = array
    if offset != len(data):
        raise ColumnCodecError(
            f"{len(data) - offset} trailing bytes after the last column"
        )
    return columns


def _read_sized(data: "bytes | memoryview", offset: int, what: str) -> tuple:
    offset = _check_room(data, offset, _U16.size, f"{what} length")
    (length,) = _U16.unpack_from(data, offset - _U16.size)
    offset = _check_room(data, offset, length, what)
    return bytes(data[offset - length : offset]), offset


def _check_room(
    data: "bytes | memoryview", offset: int, need: int, what: str
) -> int:
    if offset + need > len(data):
        raise ColumnCodecError(
            f"truncated buffer: expected {need} more bytes for {what} at "
            f"offset {offset}, only {len(data) - offset} remain"
        )
    return offset + need


__all__ = ["ColumnCodecError", "pack_columns", "unpack_columns"]
