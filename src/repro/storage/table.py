"""A minimal in-memory table standing in for the paper's Oracle storage.

The authors keep their relations in an Oracle 11g instance and read them into
the aggregation operators; only the merging phase is ever timed.  This module
provides the equivalent substrate for the reproduction: an append-only table
with named columns, simple predicate scans and conversion to/from
:class:`~repro.temporal.TemporalRelation`, so examples can model a small
"database layer" without any external dependency.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Iterator, List, Sequence, Tuple

from ..temporal import Interval, TemporalRelation, TemporalSchema


class Table:
    """An append-only, in-memory table with named columns."""

    def __init__(self, name: str, columns: Sequence[str]) -> None:
        if not columns:
            raise ValueError("a table needs at least one column")
        if len(set(columns)) != len(columns):
            raise ValueError(f"duplicate column names in {columns}")
        self.name = name
        self.columns = tuple(columns)
        self._index = {column: i for i, column in enumerate(self.columns)}
        self._rows: List[Tuple[Any, ...]] = []

    def __len__(self) -> int:
        return len(self._rows)

    def insert(self, row: Sequence[Any]) -> None:
        """Insert one row; arity must match the column list."""
        row = tuple(row)
        if len(row) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(row)}"
            )
        self._rows.append(row)

    def insert_many(self, rows: Iterable[Sequence[Any]]) -> None:
        """Insert several rows."""
        for row in rows:
            self.insert(row)

    def scan(
        self, predicate: Callable[[Dict[str, Any]], bool] | None = None
    ) -> Iterator[Dict[str, Any]]:
        """Iterate over rows as dicts, optionally filtered by ``predicate``."""
        for row in self._rows:
            record = dict(zip(self.columns, row))
            if predicate is None or predicate(record):
                yield record

    def select(
        self,
        columns: Sequence[str],
        predicate: Callable[[Dict[str, Any]], bool] | None = None,
    ) -> List[Tuple[Any, ...]]:
        """Return the projection of the (optionally filtered) rows."""
        indices = [self._index[column] for column in columns]
        result = []
        for row in self._rows:
            record = dict(zip(self.columns, row))
            if predicate is None or predicate(record):
                result.append(tuple(row[i] for i in indices))
        return result

    # ------------------------------------------------------------------
    # Temporal conversions
    # ------------------------------------------------------------------
    def to_temporal_relation(
        self,
        value_columns: Sequence[str],
        start_column: str,
        end_column: str,
        timestamp_name: str = "T",
    ) -> TemporalRelation:
        """Interpret two integer columns as interval endpoints."""
        schema = TemporalSchema(tuple(value_columns), timestamp_name)
        relation = TemporalRelation(schema)
        value_indices = [self._index[column] for column in value_columns]
        start_index = self._index[start_column]
        end_index = self._index[end_column]
        for row in self._rows:
            relation.append(
                tuple(row[i] for i in value_indices),
                Interval(int(row[start_index]), int(row[end_index])),
            )
        return relation

    @classmethod
    def from_temporal_relation(
        cls,
        name: str,
        relation: TemporalRelation,
        start_column: str = "t_start",
        end_column: str = "t_end",
    ) -> "Table":
        """Store a temporal relation as a table with endpoint columns."""
        table = cls(name, relation.schema.columns + (start_column, end_column))
        for values, interval in relation.rows():
            table.insert(values + (interval.start, interval.end))
        return table
