"""Plain-text rendering of experiment results.

The benchmark harness prints the rows and series of every reproduced table
and figure; these helpers format them consistently (fixed-width tables and
``x y`` series blocks that can be piped straight into gnuplot, the tool the
original figures were drawn with).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render rows as a fixed-width text table."""
    rendered_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))

    def line(values: Sequence[str]) -> str:
        return "  ".join(value.ljust(widths[i]) for i, value in enumerate(values))

    parts = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append(line(["-" * width for width in widths]))
    parts.extend(line(row) for row in rendered_rows)
    return "\n".join(parts)


def format_series(
    series: Mapping[str, Sequence[tuple]],
    x_label: str,
    y_label: str,
    title: str | None = None,
) -> str:
    """Render named (x, y) series as labelled text blocks."""
    parts = []
    if title:
        parts.append(title)
    parts.append(f"# x = {x_label}, y = {y_label}")
    for name, points in series.items():
        parts.append(f"## series: {name}")
        for x, y in points:
            parts.append(f"{_cell(x)}\t{_cell(y)}")
        parts.append("")
    return "\n".join(parts)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000 or (abs(value) < 0.01 and value != 0):
            return f"{value:.3e}"
        return f"{value:.3f}"
    return str(value)
