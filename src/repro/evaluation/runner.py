"""Helpers to run and time the experiments of the evaluation section.

The paper times only the merging phase of each algorithm (Section 7.3); the
:func:`timed` helper mirrors that by timing a single callable, and
:class:`ExperimentLog` collects named measurement rows so benchmark scripts
stay small and uniform.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Sequence, Tuple


@dataclass
class TimedResult:
    """A return value together with its wall-clock runtime in seconds."""

    value: Any
    seconds: float


def timed(function: Callable[..., Any], *args: Any, **kwargs: Any) -> TimedResult:
    """Call ``function`` and measure its wall-clock runtime."""
    start = time.perf_counter()
    value = function(*args, **kwargs)
    return TimedResult(value, time.perf_counter() - start)


def best_of(
    function: Callable[..., Any],
    *args: Any,
    repeats: int = 3,
    **kwargs: Any,
) -> TimedResult:
    """Call ``function`` ``repeats`` times and keep the fastest run.

    Wall-clock minima are far less noisy than single measurements, which
    matters for the backend speedup tables (``benchmarks/bench_kernels.py``)
    where two implementations of the same kernel are compared directly.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be at least 1, got {repeats}")
    best: TimedResult | None = None
    for _ in range(repeats):
        run = timed(function, *args, **kwargs)
        if best is None or run.seconds < best.seconds:
            best = run
    return best


def speedup(baseline_seconds: float, candidate_seconds: float) -> float:
    """Speedup factor of a candidate over a baseline (>1 means faster).

    Defined as ``baseline / candidate``; returns ``inf`` when the candidate
    round to zero time, 0.0 when the baseline did.
    """
    if candidate_seconds <= 0.0:
        return float("inf")
    return baseline_seconds / candidate_seconds


@dataclass
class ExperimentLog:
    """A uniform container for experiment measurements.

    Rows are dictionaries; the log remembers the column order of the first
    row so the output table stays stable.
    """

    name: str
    rows: List[Dict[str, Any]] = field(default_factory=list)

    def record(self, **measurements: Any) -> None:
        """Append one measurement row."""
        self.rows.append(dict(measurements))

    def columns(self) -> Sequence[str]:
        """Column names, in first-appearance order."""
        seen: Dict[str, None] = {}
        for row in self.rows:
            for key in row:
                seen.setdefault(key, None)
        return list(seen)

    def as_table(self) -> Tuple[Sequence[str], List[Sequence[Any]]]:
        """Return ``(headers, rows)`` suitable for ``format_table``."""
        headers = self.columns()
        return headers, [
            [row.get(column, "") for column in headers] for row in self.rows
        ]

    def series(
        self, x: str, y: str, split_by: str | None = None
    ) -> Dict[str, List[Tuple[Any, Any]]]:
        """Group rows into named (x, y) series, optionally split by a column."""
        result: Dict[str, List[Tuple[Any, Any]]] = {}
        for row in self.rows:
            key = str(row.get(split_by, self.name)) if split_by else self.name
            if x in row and y in row:
                result.setdefault(key, []).append((row[x], row[y]))
        return result
