"""Helpers to run and time the experiments of the evaluation section.

The paper times only the merging phase of each algorithm (Section 7.3); the
:func:`timed` helper mirrors that by timing a single callable, and
:class:`ExperimentLog` collects named measurement rows so benchmark scripts
stay small and uniform.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Sequence, Tuple

#: The timing clock, pinned at import time.  Every measurement in a process
#: uses the same monotonic clock object even if ``time.perf_counter`` is
#: later monkeypatched, and the per-call attribute lookup disappears from
#: the measured region.
_CLOCK = time.perf_counter


@dataclass
class TimedResult:
    """A return value together with its wall-clock runtime in seconds.

    For :func:`best_of`, ``seconds`` is the fastest of the ``runs`` repeats
    and ``mean_seconds`` / ``spread_seconds`` describe the per-run variance
    (mean and max−min); a large spread relative to the mean flags a noisy
    measurement whose ratio should not be trusted.
    """

    value: Any
    seconds: float
    runs: int = 1
    mean_seconds: float = 0.0
    spread_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.runs == 1 and self.mean_seconds == 0.0:
            self.mean_seconds = self.seconds


def timed(function: Callable[..., Any], *args: Any, **kwargs: Any) -> TimedResult:
    """Call ``function`` and measure its wall-clock runtime."""
    start = _CLOCK()
    value = function(*args, **kwargs)
    return TimedResult(value, _CLOCK() - start)


def best_of(
    function: Callable[..., Any],
    *args: Any,
    repeats: int = 3,
    **kwargs: Any,
) -> TimedResult:
    """Call ``function`` ``repeats`` times and keep the fastest run.

    Wall-clock minima are far less noisy than single measurements, which
    matters for the backend speedup tables (``benchmarks/bench_kernels.py``)
    where two implementations of the same kernel are compared directly.  The
    returned result also reports the repeat count, the mean runtime and the
    max−min spread, so callers can surface measurement variance instead of
    presenting a lone minimum as the truth.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be at least 1, got {repeats}")
    best: TimedResult | None = None
    durations: List[float] = []
    for _ in range(repeats):
        run = timed(function, *args, **kwargs)
        durations.append(run.seconds)
        if best is None or run.seconds < best.seconds:
            best = run
    best.runs = repeats
    best.mean_seconds = sum(durations) / repeats
    best.spread_seconds = max(durations) - min(durations)
    return best


def speedup(baseline_seconds: float, candidate_seconds: float) -> float:
    """Speedup factor of a candidate over a baseline (>1 means faster).

    Defined as ``baseline / candidate``.  Zero durations happen for kernels
    faster than the clock's resolution: a zero candidate against a positive
    baseline reports ``inf``, while two unmeasurably fast sides report a
    neutral ``1.0`` instead of dividing zero by zero.
    """
    if candidate_seconds <= 0.0:
        return 1.0 if baseline_seconds <= 0.0 else float("inf")
    return baseline_seconds / candidate_seconds


@dataclass
class ExperimentLog:
    """A uniform container for experiment measurements.

    Rows are dictionaries; the log remembers the column order of the first
    row so the output table stays stable.
    """

    name: str
    rows: List[Dict[str, Any]] = field(default_factory=list)

    def record(self, **measurements: Any) -> None:
        """Append one measurement row."""
        self.rows.append(dict(measurements))

    def columns(self) -> Sequence[str]:
        """Column names, in first-appearance order."""
        seen: Dict[str, None] = {}
        for row in self.rows:
            for key in row:
                seen.setdefault(key, None)
        return list(seen)

    def as_table(self) -> Tuple[Sequence[str], List[Sequence[Any]]]:
        """Return ``(headers, rows)`` suitable for ``format_table``."""
        headers = self.columns()
        return headers, [
            [row.get(column, "") for column in headers] for row in self.rows
        ]

    def series(
        self, x: str, y: str, split_by: str | None = None
    ) -> Dict[str, List[Tuple[Any, Any]]]:
        """Group rows into named (x, y) series, optionally split by a column."""
        result: Dict[str, List[Tuple[Any, Any]]] = {}
        for row in self.rows:
            key = str(row.get(split_by, self.name)) if split_by else self.name
            if x in row and y in row:
                result.setdefault(key, []).append((row[x], row[y]))
        return result
