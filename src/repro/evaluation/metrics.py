"""Metrics used throughout the experimental evaluation.

The figures of the paper report errors in three normalised forms: the error
relative to the maximal possible error (``SSE / SSE_max``, Fig. 14), the
*error ratio* of an approximation against the optimal DP reduction of the
same size (Figs. 15–17) and the *reduction ratio* describing how much of the
ITA result was merged away.  This module collects those definitions so the
benchmarks and the tests agree on them.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean, stdev
from typing import Dict, Iterable, List, Sequence

from ..core.errors import Weights, max_error, sse_between
from ..core.merge import AggregateSegment, cmin


def reduction_ratio(input_size: int, output_size: int) -> float:
    """Fraction of the ITA result merged away, in percent (0–100)."""
    if input_size <= 0:
        raise ValueError(f"input size must be positive, got {input_size}")
    return 100.0 * (input_size - output_size) / input_size


def size_for_reduction_ratio(input_size: int, ratio_percent: float) -> int:
    """Output size corresponding to a reduction ratio in percent."""
    if not 0.0 <= ratio_percent <= 100.0:
        raise ValueError(f"ratio must be in [0, 100], got {ratio_percent}")
    return max(int(round(input_size * (1.0 - ratio_percent / 100.0))), 1)


def relative_error(
    segments: Sequence[AggregateSegment],
    reduced: Sequence[AggregateSegment],
    weights: Weights | None = None,
) -> float:
    """Error of a reduction as a percentage of ``SSE_max`` (0–100)."""
    maximum = max_error(segments, weights)
    if maximum == 0.0:
        return 0.0
    return 100.0 * sse_between(segments, reduced, weights) / maximum


@dataclass
class ErrorRatioSummary:
    """Mean and standard error of a collection of error ratios."""

    mean_ratio: float
    standard_error: float
    count: int


def summarize_error_ratios(ratios: Iterable[float]) -> ErrorRatioSummary:
    """Average error ratios the way Fig. 16/17 report them (mean ± std err)."""
    values: List[float] = [ratio for ratio in ratios if ratio == ratio]
    if not values:
        return ErrorRatioSummary(float("nan"), float("nan"), 0)
    if len(values) == 1:
        return ErrorRatioSummary(values[0], 0.0, 1)
    return ErrorRatioSummary(
        mean(values), stdev(values) / len(values) ** 0.5, len(values)
    )


def feasible_sizes(
    segments: Sequence[AggregateSegment], count: int = 20
) -> List[int]:
    """Evenly spaced feasible output sizes between ``cmin`` and ``n``.

    Used by the sweep benchmarks to pick representative size bounds without
    evaluating every single ``c``.
    """
    n = len(segments)
    lower = cmin(segments)
    if n <= lower:
        return [n]
    count = max(min(count, n - lower + 1), 1)
    step = (n - lower) / count
    sizes = sorted({max(lower, int(round(n - step * (i + 1)))) for i in range(count)})
    return sizes


def error_curve_normalized(curve: Dict[int, float], input_size: int,
                           maximum_error: float) -> List[tuple]:
    """Convert an ``{size: error}`` curve into (reduction %, error %) points."""
    points = []
    for size in sorted(curve, reverse=True):
        error = curve[size]
        if error != error or error == float("inf"):
            continue
        normalized = 0.0 if maximum_error == 0 else 100.0 * error / maximum_error
        points.append((reduction_ratio(input_size, size), normalized))
    return points
