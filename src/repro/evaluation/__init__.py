"""Experiment harness: metrics, runners and plain-text reporting."""

from .metrics import (
    ErrorRatioSummary,
    error_curve_normalized,
    feasible_sizes,
    reduction_ratio,
    relative_error,
    size_for_reduction_ratio,
    summarize_error_ratios,
)
from .reporting import format_series, format_table
from .runner import ExperimentLog, TimedResult, best_of, speedup, timed

__all__ = [
    "ErrorRatioSummary",
    "ExperimentLog",
    "TimedResult",
    "best_of",
    "speedup",
    "error_curve_normalized",
    "feasible_sizes",
    "format_series",
    "format_table",
    "reduction_ratio",
    "relative_error",
    "size_for_reduction_ratio",
    "summarize_error_ratios",
    "timed",
]
