"""Delta-log replication to a warm standby, and its promotion to primary.

The durability tier already reduced every acknowledged push to one WAL
frame of ``PTAS`` bytes whose replay is bit-identical (the replay
invariant of :mod:`repro.service.durability`).  Replication is therefore
just *shipping that same delta log over a socket as it is written*:

* :class:`ReplicationLink` is the primary-side
  :class:`~repro.service.store.ReplicationSink`.  :meth:`attach` catches
  the standby up under the store lock — frozen epochs as ``KIND_FROZEN``
  frames (``PTAR`` bytes, installed verbatim), the live epochs'
  acknowledged pushes as ``KIND_PUSH`` frames tailed straight from the
  primary's WAL files, every catch-up frame carrying the
  ``CATCH_UP_SEQ`` sentinel and a final ``KIND_CATCHUP`` marker
  carrying the real frontier (so a catch-up severed mid-stream leaves
  the standby reporting no progress plus a ``seeding`` taint, never a
  frontier it does not hold) — then registers itself, after which every
  acknowledged push and every freeze streams synchronously: the link
  sends the frame, waits for the standby's ``KIND_ACK`` and records the
  acknowledged sequence number (the store's replication-lag metric).  A
  socket fault disconnects the link (``connected = False``) without
  failing the primary's push — and, by default (``auto_resync=True``),
  starts a background **reconnect loop**: exponential backoff with
  decorrelated jitter (:mod:`repro.util.backoff`), gated by the shared
  per-peer circuit breaker (:mod:`repro.util.health`), re-``HELLO``-ing
  the standby and replaying exactly the missed gap through
  :meth:`~repro.service.store.SessionStore.resync` with the standby's
  self-reported ``applied_seq`` as the resume cursor.  The loop gives
  up permanently only when the store refuses the standby (divergence
  after a quorum abort, or a resync window trimmed past its frontier).
  The replicated push body is **byte-identical to the primary's WAL
  frame payload** — no re-encoding on the hot path.  The
  ``repro_replica_link_state`` gauge (0 detached, 1 reconnecting,
  2 connected) tracks every link.
* :class:`StandbyServer` owns its own
  :class:`~repro.service.store.SessionStore` (``role = "standby"``) and
  applies the frames in arrival order: ``PUSH`` through ``store.push``
  (the same staged-insert path the primary ran, hence bit-identical
  state), ``FREEZE`` through ``store.freeze`` (finalize is
  deterministic, so the standby's frozen summary equals the primary's),
  ``FROZEN`` through ``store.install_frozen``.  Acks are sent only
  *after* the frame is applied, so an acknowledged generation is never
  lost by a primary failure.
* :meth:`StandbyServer.promote` is failover: frame application stops,
  the store's role flips to ``"primary"``, and the returned store serves
  — through its own :class:`~repro.service.query.QueryEngine` —
  answers bit-identical to the failed primary's at every acknowledged
  push generation.

The standby's store must be configured like the primary's (same budget,
policy and backend) but with **no eviction bounds and no checkpoint/
compaction triggers** — epoch boundaries come exclusively from the
primary's replicated freeze events, never from local policy, or the two
stores' epoch structure would diverge.  :func:`standby_store` builds a
correctly-restricted store.
"""

from __future__ import annotations

import socket
import socketserver
import threading
import time
from pathlib import Path
from typing import Optional, Tuple, Union

from ..api.plan import Budget, ExecutionPolicy
from ..obs import metrics as _metrics
from ..service.store import CATCH_UP_SEQ, ServiceError, SessionStore
from ..service.wire import WireError, decode_result, decode_segments
from ..util import failpoints
from ..util.backoff import DEFAULT_CAP_S as DEFAULT_RECONNECT_CAP_S
from ..util.backoff import Backoff
from ..util.deadline import current_deadline
from ..util.health import SHARED as SHARED_HEALTH
from ..util.health import PeerHealth
from .transport import (
    DEFAULT_BACKOFF_S,
    DEFAULT_CONNECT_TIMEOUT,
    DEFAULT_READ_TIMEOUT,
    KIND_ACK,
    KIND_CATCHUP,
    KIND_ERROR,
    KIND_FREEZE,
    KIND_FROZEN,
    KIND_HELLO,
    KIND_OK,
    KIND_PUSH,
    Connection,
    TransportError,
    decode_json,
    error_payload,
    pack_envelope,
    recv_frame,
    send_frame,
)

__all__ = [
    "LINK_CONNECTED",
    "LINK_DETACHED",
    "LINK_RECONNECTING",
    "ReplicationLink",
    "StandbyServer",
    "standby_store",
    "start_standby",
]

#: ``repro_replica_link_state`` gauge values.
LINK_DETACHED = 0
LINK_RECONNECTING = 1
LINK_CONNECTED = 2


def standby_store(
    budget: Optional[Budget] = None,
    *,
    size: Optional[int] = None,
    max_error: Optional[float] = None,
    policy: Optional[ExecutionPolicy] = None,
    data_dir: Optional[Union[str, Path]] = None,
    fsync_every: int = 1,
) -> SessionStore:
    """A store configured to mirror a primary: same budget and policy,
    no local eviction/checkpoint/compaction triggers (epoch boundaries
    come only from replicated freeze events), ``role = "standby"``."""
    store = SessionStore(
        budget,
        size=size,
        max_error=max_error,
        policy=policy,
        data_dir=data_dir,
        fsync_every=fsync_every,
    )
    store.role = "standby"
    return store


class ReplicationLink:
    """Primary-side sink streaming the delta log to one standby.

    Implements the :class:`~repro.service.store.ReplicationSink`
    protocol; :meth:`attach` performs catch-up and registration in one
    atomic step.  All ``on_*`` hooks run under the store's lock, so
    frames hit the wire in apply order with no interleaving.

    With ``auto_resync=True`` (the default) a ship fault additionally
    arms a background reconnect loop: exponential backoff with
    decorrelated jitter, per-peer circuit breaker (``health``, the
    process-shared tracker unless one is injected), then
    ``HELLO`` → :meth:`SessionStore.resync` with the standby's reported
    ``applied_seq`` — the missed gap replays from the store's journal
    (or the full history, if the standby restarted empty) and streaming
    resumes, all without an operator touching ``replicate_to``.
    """

    def __init__(
        self,
        address: str,
        connect_timeout: float = DEFAULT_CONNECT_TIMEOUT,
        read_timeout: Optional[float] = DEFAULT_READ_TIMEOUT,
        auto_resync: bool = True,
        reconnect_backoff: float = DEFAULT_BACKOFF_S,
        reconnect_cap: float = DEFAULT_RECONNECT_CAP_S,
        health: Optional[PeerHealth] = None,
    ) -> None:
        self.address = address
        self.connect_timeout = connect_timeout
        self.read_timeout = read_timeout
        self.auto_resync = auto_resync
        self.reconnect_backoff = reconnect_backoff
        self.reconnect_cap = max(reconnect_cap, reconnect_backoff)
        self.connected = False
        self.acked_seq = -1
        self._health = health if health is not None else SHARED_HEALTH
        self._conn: Optional[Connection] = None
        self._store: Optional[SessionStore] = None
        self._closed = False
        self._reconnect_lock = threading.Lock()
        self._reconnector: Optional[threading.Thread] = None

    def attach(self, store: SessionStore) -> None:
        """Connect, catch the standby up, and start streaming.

        Raises :class:`TransportError` if the standby is unreachable and
        :class:`~repro.service.store.ServiceError` if the primary's live
        state cannot be caught up from its WAL (memory-only primary with
        live pushes, or a degraded one), or if the standby is not empty
        — catch-up replays the full history, so attaching a standby
        that already applied frames would double-apply it (a returning
        standby rejoins through the auto-resync loop instead).  In all
        cases nothing is registered.
        """
        conn, applied, seeding = self._dial()
        if applied != -1 or seeding:
            conn.close()
            if seeding:
                raise ServiceError(
                    f"standby {self.address} is half-seeded by an "
                    f"interrupted catch-up and cannot be attached; "
                    f"restart it empty and re-attach"
                )
            raise ServiceError(
                f"standby {self.address} reports applied sequence "
                f"{applied}; attach requires an empty standby (returning "
                f"standbys rejoin via resync)"
            )
        self._conn = conn
        self._store = store
        self._closed = False
        self.connected = True
        try:
            store.replicate_to(self)  # atomic catch-up + registration
        except ServiceError:
            self.detach()
            raise
        self._publish(LINK_CONNECTED)

    def detach(self) -> None:
        """Stop streaming (and any reconnect loop), deregister."""
        self._closed = True
        self.connected = False
        if self._store is not None:
            self._store.remove_replication_sink(self)
            self._store = None
        if self._conn is not None:
            self._conn.close()
            self._conn = None
        self._publish(LINK_DETACHED)

    # ------------------------------------------------------------------
    # ReplicationSink hooks (called under the store lock; never raise)
    # ------------------------------------------------------------------
    def on_push(self, key: str, payload: bytes, seq: int) -> None:
        self._ship(KIND_PUSH, pack_envelope({"key": key, "seq": seq}, payload))

    def on_freeze(self, key: str, seq: int) -> None:
        self._ship(KIND_FREEZE, pack_envelope({"key": key, "seq": seq}, b""))

    def on_frozen(self, key: str, payload: bytes, seq: int) -> None:
        self._ship(
            KIND_FROZEN, pack_envelope({"key": key, "seq": seq}, payload)
        )

    def on_catch_up(self, seq: int) -> None:
        self._ship(KIND_CATCHUP, b'{"seq": %d}' % seq)

    def _ship(self, kind: int, frame_payload: bytes) -> None:
        """Send one frame and wait for its ack; disconnect on any fault.

        Never raises — a lost standby must not fail the primary's push;
        it only stops the stream (the lag metric shows the damage) and,
        when auto-resync is armed, starts the reconnect loop.  The ack
        wait is bounded by the link's read timeout *clamped to the
        ambient request deadline's remaining budget* — shipping runs
        under the store lock, so a stalled standby must never block
        the store past the deadline of the request being served.
        """
        if not self.connected or self._conn is None:
            return
        deadline = current_deadline()
        timeout = (
            None if deadline is None else deadline.clamp(self.read_timeout)
        )
        try:
            answer_kind, answer = self._conn.request(
                kind, frame_payload, timeout=timeout
            )
            if answer_kind != KIND_ACK:
                raise TransportError(
                    f"standby {self.address} answered frame kind "
                    f"{answer_kind}, expected ACK"
                )
            self.acked_seq = int(decode_json(answer, "ack")["seq"])
        except (TransportError, OSError, KeyError, TypeError, ValueError):
            self.connected = False
            if self._conn is not None:
                self._conn.close()
                self._conn = None
            self._health.failure(self.address)
            self._schedule_reconnect()

    # ------------------------------------------------------------------
    # Auto-resync
    # ------------------------------------------------------------------
    def _dial(self) -> Tuple[Connection, int, bool]:
        """Connect and ``HELLO``; returns the connection, the standby's
        reported ``applied_seq`` (``-1`` = no committed progress) and
        its ``seeding`` taint (``True`` = a previous catch-up was
        severed mid-stream, so its store holds an unknown prefix of the
        history and nothing can safely be replayed onto it)."""
        conn = Connection(
            self.address, self.connect_timeout, self.read_timeout
        )
        try:
            kind, answer = conn.request(KIND_HELLO, b"{}")
            if kind != KIND_OK:
                raise TransportError(
                    f"standby {self.address} answered frame kind {kind} "
                    f"to HELLO, expected OK"
                )
            hello = decode_json(answer, "hello answer")
            applied = int(hello.get("applied_seq", -1))
            seeding = bool(hello.get("seeding", False))
        except (TransportError, KeyError, TypeError, ValueError) as error:
            conn.close()
            if isinstance(error, TransportError):
                raise
            raise TransportError(
                f"standby {self.address} answered a malformed HELLO: "
                f"{error}"
            ) from error
        return conn, applied, seeding

    def _schedule_reconnect(self) -> None:
        if not self.auto_resync or self._closed or self._store is None:
            return
        with self._reconnect_lock:
            if self._reconnector is not None and self._reconnector.is_alive():
                return
            self._reconnector = threading.Thread(
                target=self._reconnect_loop,
                name=f"pta-resync-{self.address}",
                daemon=True,
            )
            self._reconnector.start()

    def _reconnect_loop(self) -> None:
        """Dial → ``HELLO`` → resync until streaming resumes.

        Gives up only on :meth:`detach` or when the store refuses the
        standby permanently (divergence, exhausted resync window) — in
        that case the link deregisters itself so quorum counting and
        journal trimming stop waiting for it.
        """
        ladder = Backoff(self.reconnect_backoff, self.reconnect_cap)
        self._publish(LINK_RECONNECTING)
        try:
            while not self._closed:
                delay = ladder.next()
                if delay > 0:
                    time.sleep(delay)
                if self._closed:
                    return
                injected = failpoints.fail("replica.reconnect")
                if injected is not None:
                    continue  # the attempt "failed" before dialing
                if not self._health.allow(self.address):
                    continue
                store = self._store
                if store is None:
                    return
                try:
                    conn, applied, seeding = self._dial()
                except TransportError:
                    self._health.failure(self.address)
                    continue
                self._health.success(self.address)
                if seeding:
                    # Permanent refusal: a previous catch-up was severed
                    # mid-stream, so the standby holds an unknown prefix
                    # of the history — replaying anything onto it would
                    # diverge.  It must be restarted empty.
                    conn.close()
                    self.connected = False
                    self._conn = None
                    store.remove_replication_sink(self)
                    self._publish(LINK_DETACHED)
                    return

                def adopt() -> None:
                    self._conn = conn
                    self.connected = True

                try:
                    store.resync(self, applied, adopt=adopt)
                except ServiceError:
                    # Permanent refusal: the standby must be re-seeded.
                    self.connected = False
                    conn.close()
                    self._conn = None
                    store.remove_replication_sink(self)
                    self._publish(LINK_DETACHED)
                    return
                except (ConnectionError, TransportError, OSError):
                    self.connected = False
                    conn.close()
                    self._conn = None
                    continue
                with self._reconnect_lock:
                    if self.connected:
                        # Release the reconnector slot *inside* this
                        # critical section: a ship fault that fires the
                        # instant we return must see the slot free and
                        # spawn a fresh thread, not no-op against this
                        # dying one (which would leave the link down
                        # forever — on_push never reschedules).
                        self._reconnector = None
                        self._publish(LINK_CONNECTED)
                        return
                # A ship fault raced the resync; go around again.
        finally:
            # Whatever the exit path (healed, detached, permanently
            # refused), stop owning the reconnector slot — but never
            # clobber a newer thread a fresh ship fault scheduled.
            with self._reconnect_lock:
                if self._reconnector is threading.current_thread():
                    self._reconnector = None

    def _publish(self, value: int) -> None:
        _metrics.gauge(
            "repro_replica_link_state",
            "Replication link per standby: 0 detached, 1 reconnecting, "
            "2 connected.",
            peer=self.address,
        ).set(value)


class _StandbyHandler(socketserver.BaseRequestHandler):
    server: "StandbyServer"

    def handle(self) -> None:
        sock: socket.socket = self.request
        sock.settimeout(self.server.read_timeout)
        while True:
            try:
                kind, payload = recv_frame(sock)
            except (TransportError, OSError):
                return  # peer gone or torn frame: drop the connection
            try:
                self._handle_frame(sock, kind, payload)
            except OSError:
                return  # the answer could not be written; drop the peer
            except (ServiceError, WireError, TransportError) as error:
                if not self._answer_error(sock, str(error), "bad_request"):
                    return
            except Exception as error:  # noqa: BLE001 — the internal arm
                if not self._answer_error(
                    sock, f"{type(error).__name__}: {error}", "internal"
                ):
                    return

    def _handle_frame(
        self, sock: socket.socket, kind: int, payload: bytes
    ) -> None:
        server = self.server
        if kind == KIND_HELLO:
            # The answer carries the standby's replication frontier —
            # the resume cursor a reconnecting link hands to
            # ``SessionStore.resync`` (-1 = no committed progress, full
            # catch-up) — and its seeding taint: a catch-up severed
            # mid-stream left this store holding an unknown prefix of
            # the history, which the primary must refuse to replay onto.
            with server.apply_lock:
                applied = server.applied_seq
                seeding = server.seeding
            send_frame(
                sock,
                KIND_OK,
                b'{"applied_seq": %d, "seeding": %s}'
                % (applied, b"true" if seeding else b"false"),
            )
            return
        if kind == KIND_CATCHUP:
            # End-of-catch-up marker: the whole history arrived, so the
            # resume cursor may finally advance to the frontier and the
            # seeding taint clears.
            meta = decode_json(payload, "end-of-catch-up marker")
            seq = meta.get("seq")
            if not isinstance(seq, int) or seq < 0:
                raise TransportError(
                    "end-of-catch-up marker must carry a non-negative "
                    "integer seq"
                )
            with server.apply_lock:
                if server.promoted:
                    self._answer_promoted(sock)
                    return
                server.applied_seq = max(server.applied_seq, seq)
                server.seeding = False
            send_frame(sock, KIND_ACK, b'{"seq": %d}' % seq)
            return
        if kind not in (KIND_PUSH, KIND_FREEZE, KIND_FROZEN):
            send_frame(
                sock,
                KIND_ERROR,
                error_payload(
                    f"unsupported frame kind {kind}", "bad_request"
                ),
            )
            return
        meta, body = _split(kind, payload)
        key = meta.get("key")
        seq = meta.get("seq")
        if not isinstance(key, str) or not isinstance(seq, int):
            raise TransportError(
                "replication frame envelope must carry a string key "
                "and an integer seq"
            )
        # Apply-then-ack under the apply lock: an acked sequence number
        # is always durable in the standby's store, and promotion (which
        # takes the same lock) can never interleave with a half-applied
        # frame.
        with server.apply_lock:
            if server.promoted:
                self._answer_promoted(sock)
                return
            if seq == CATCH_UP_SEQ:
                # Catch-up stream: apply without advancing the resume
                # cursor — only the end-of-catch-up marker commits it.
                # The taint set here clears with that marker; a severed
                # catch-up leaves this standby loudly half-seeded
                # instead of silently claiming the frontier.
                server.seeding = True
                self._apply(kind, key, body)
            elif seq <= server.applied_seq:
                # Already applied (an ack was lost in transit): ack
                # again without re-applying.
                pass
            else:
                self._apply(kind, key, body)
                server.applied_seq = seq
        send_frame(sock, KIND_ACK, b'{"seq": %d}' % seq)

    def _apply(self, kind: int, key: str, body: bytes) -> None:
        if kind == KIND_PUSH:
            self.server.store.push(key, decode_segments(body))
        elif kind == KIND_FREEZE:
            self.server.store.freeze(key)
        else:
            self.server.store.install_frozen(key, decode_result(body))

    def _answer_promoted(self, sock: socket.socket) -> None:
        send_frame(
            sock,
            KIND_ERROR,
            error_payload(
                "this replica was promoted to primary and no "
                "longer applies replication frames",
                "not_standby",
            ),
        )

    @staticmethod
    def _answer_error(sock: socket.socket, message: str, code: str) -> bool:
        try:
            send_frame(sock, KIND_ERROR, error_payload(message, code))
            return True
        except OSError:
            return False


def _split(kind: int, payload: bytes) -> Tuple[dict, bytes]:
    from .transport import unpack_envelope

    what = {
        KIND_PUSH: "replicated push",
        KIND_FREEZE: "replicated freeze",
        KIND_FROZEN: "replicated frozen epoch",
    }[kind]
    meta, body = unpack_envelope(payload, what)
    if kind in (KIND_PUSH, KIND_FROZEN) and not body:
        raise TransportError(f"{what} frame carries no payload body")
    return meta, body


class StandbyServer(socketserver.ThreadingTCPServer):
    """A warm standby: applies replicated frames until promoted.

    Owns (or is handed) a standby-configured :class:`SessionStore` and
    listens for :class:`ReplicationLink` frames; ``server.address`` is
    what the link's constructor takes.  Queries may be served from the
    standby at any time (its store trails the primary by exactly the
    un-acked frames); pushes must not go to it until :meth:`promote`.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        store: SessionStore,
        host: str = "127.0.0.1",
        port: int = 0,
        read_timeout: Optional[float] = DEFAULT_READ_TIMEOUT,
    ) -> None:
        super().__init__((host, port), _StandbyHandler)
        store.role = "standby"
        self.store = store
        self.read_timeout = read_timeout
        self.apply_lock = threading.Lock()
        self.promoted = False
        #: Highest replication sequence number applied and acked.
        #: Catch-up frames (``seq == CATCH_UP_SEQ``) never advance it —
        #: only the end-of-catch-up marker commits the frontier.
        self.applied_seq = -1
        #: True while a catch-up stream is in flight (set by its first
        #: frame, cleared by its end marker).  Reported in the ``HELLO``
        #: answer: a standby still seeding holds an unknown prefix of
        #: the history, and the primary refuses to replay onto it.
        self.seeding = False

    @property
    def port(self) -> int:
        return int(self.server_address[1])

    @property
    def address(self) -> str:
        return f"{self.server_address[0]}:{self.port}"

    def promote(self) -> SessionStore:
        """Failover: stop applying frames, serve as primary.

        Every frame acked before this call is applied (acks are sent
        after application, under the same lock promotion takes), so the
        returned store answers queries bit-identically to the failed
        primary at every acknowledged push generation.  The socket
        server keeps listening only to answer late frames with a
        ``not_standby`` error; call :meth:`shutdown` to stop it.
        """
        with self.apply_lock:
            self.promoted = True
            self.store.role = "primary"
        return self.store


def start_standby(
    store: SessionStore,
    host: str = "127.0.0.1",
    port: int = 0,
    read_timeout: Optional[float] = DEFAULT_READ_TIMEOUT,
) -> Tuple[StandbyServer, threading.Thread]:
    """Start a standby server on a daemon thread; returns (server, thread)."""
    server = StandbyServer(store, host, port, read_timeout)
    thread = threading.Thread(
        target=server.serve_forever,
        name=f"pta-standby-{server.port}",
        daemon=True,
    )
    thread.start()
    return server, thread
