"""Remote reducer worker: a small server loop around ``reduce_shard``.

One worker process (or thread — the server is a plain
``ThreadingTCPServer``) listens for shard requests and answers each with
the shard's complete merge schedule:

1. ``KIND_REDUCE`` arrives: a JSON envelope carrying the squared error
   weights ``w2``, followed by the shard's segment columns as verbatim
   ``PTAS`` bytes;
2. the payload is decoded **zero-copy** —
   :func:`repro.service.wire.decode_encoded` with ``copy=False`` builds
   ``frombuffer`` views straight over the frame buffer, so reduction
   starts without a per-column memcpy;
3. :func:`repro.parallel.reduce_shard` runs
   :func:`repro.core.kernels.greedy_merge_trajectory` plus the shard's
   ``SSE_max`` — exactly the computation a process-pool worker performs;
4. the trajectory frontier returns as a ``PTAT`` payload
   (``KIND_TRAJECTORY``).

The worker is stateless between requests: shard placement, budgets and
reconciliation all live in the coordinator, which is what makes workers
interchangeable — any shard may run on any worker (or locally) without
changing a bit of the output.  Malformed payloads are answered with a
structured error frame (code ``bad_request``); requests whose envelope
deadline budget is already spent with ``deadline_exceeded`` (the worker
refuses work its caller has given up on); unexpected faults with code
``internal``.  The ``cluster.worker`` failpoint sits at the top of
shard handling so fault tests can kill or fail a worker at exactly one
deterministic request.

Run standalone with ``python -m repro.cluster.worker --port 9041``.
"""

from __future__ import annotations

import socket
import socketserver
import threading
from typing import Optional, Tuple

from ..obs import tracing as _tracing
from ..obs.logs import get_logger
from ..service.wire import WireError, decode_encoded
from ..storage.columns import ColumnCodecError
from ..util import failpoints
from ..util.deadline import Deadline, DeadlineExceeded
from ..util.deadline import attach as _attach_deadline
from .transport import (
    KIND_PING,
    KIND_PONG,
    KIND_REDUCE,
    KIND_TRAJECTORY,
    KIND_ERROR,
    TransportError,
    encode_trajectory,
    error_payload,
    recv_frame,
    send_frame,
    unpack_envelope,
)

_log = get_logger("repro.cluster.worker")


def reduce_request(payload: bytes):
    """Decode one shard request and run the reduction (the worker body).

    Split out of the server plumbing so tests can drive it directly.
    Returns the ``(boundaries, keys, sse_max)`` trajectory.
    """
    import numpy as np

    from ..parallel import reduce_shard

    failpoints.fail("cluster.worker")
    meta, body = unpack_envelope(payload, "shard request")
    w2_raw = meta.get("w2")
    if not isinstance(w2_raw, list) or not w2_raw:
        raise WireError("shard request envelope is missing the w2 weights")
    encoded = decode_encoded(body, copy=False)
    w2 = np.asarray(w2_raw, dtype=np.float64)
    if w2.shape != (encoded.dimensions,) or not bool(
        np.isfinite(w2).all() & (w2 > 0).all()
    ):
        raise WireError(
            f"shard request carries {w2.shape} weights for "
            f"{encoded.dimensions}-dimensional values"
        )
    # Rebuild the coordinator's remaining budget on *this* machine's
    # monotonic clock (wall clocks disagree; relative budgets survive
    # the hop) and refuse work that is already past its deadline — the
    # caller has given up, so grinding on only wastes the cluster.
    deadline: Optional[Deadline] = None
    deadline_raw = meta.get("deadline")
    if deadline_raw is not None:
        if isinstance(deadline_raw, bool) or not isinstance(
            deadline_raw, (int, float)
        ):
            raise WireError(
                "shard request deadline must be the remaining budget in "
                f"seconds, got {deadline_raw!r}"
            )
        if deadline_raw <= 0:
            raise DeadlineExceeded(
                "shard request arrived with an exhausted deadline budget"
            )
        deadline = Deadline.after(float(deadline_raw))
    # Adopt the coordinator's trace id (if the envelope carries one) so
    # the worker's shard_reduce span lands in the caller's trace.
    trace_raw = meta.get("trace_id")
    with _tracing.attach(
        trace_raw if isinstance(trace_raw, str) else None
    ), _attach_deadline(deadline):
        return reduce_shard(
            (encoded.starts, encoded.ends, encoded.values, encoded.groups, w2)
        )


class _WorkerHandler(socketserver.BaseRequestHandler):
    server: "ReducerWorker"

    def handle(self) -> None:
        sock: socket.socket = self.request
        sock.settimeout(self.server.read_timeout)
        while True:
            try:
                kind, payload = recv_frame(sock)
            except (TransportError, OSError):
                return  # peer gone or torn frame: drop the connection
            try:
                if kind == KIND_PING:
                    send_frame(sock, KIND_PONG)
                elif kind == KIND_REDUCE:
                    trajectory = reduce_request(payload)
                    send_frame(
                        sock, KIND_TRAJECTORY, encode_trajectory(trajectory)
                    )
                else:
                    send_frame(
                        sock,
                        KIND_ERROR,
                        error_payload(
                            f"unsupported frame kind {kind}", "bad_request"
                        ),
                    )
            except DeadlineExceeded as error:
                if not self._answer_error(
                    sock, str(error), "deadline_exceeded"
                ):
                    return
            except (WireError, ColumnCodecError, TransportError) as error:
                if not self._answer_error(sock, str(error), "bad_request"):
                    return
            except OSError:
                return  # the answer could not be written; drop the peer
            except Exception as error:  # noqa: BLE001 — the internal arm
                _log.exception(
                    "shard request failed",
                    code="internal",
                    error=f"{type(error).__name__}: {error}",
                )
                if not self._answer_error(
                    sock, f"{type(error).__name__}: {error}", "internal"
                ):
                    return

    @staticmethod
    def _answer_error(sock: socket.socket, message: str, code: str) -> bool:
        try:
            send_frame(sock, KIND_ERROR, error_payload(message, code))
            return True
        except OSError:
            return False


class ReducerWorker(socketserver.ThreadingTCPServer):
    """A reducer worker bound to ``host:port`` (``port=0`` = ephemeral).

    ``worker.address`` is the ``"host:port"`` string a coordinator's
    ``cluster=[...]`` list takes.  ``shutdown()`` stops the serve loop
    (inherited); :func:`start_worker` runs one on a daemon thread.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        read_timeout: Optional[float] = 30.0,
    ) -> None:
        super().__init__((host, port), _WorkerHandler)
        self.read_timeout = read_timeout

    @property
    def port(self) -> int:
        return int(self.server_address[1])

    @property
    def address(self) -> str:
        return f"{self.server_address[0]}:{self.port}"


def start_worker(
    host: str = "127.0.0.1",
    port: int = 0,
    read_timeout: Optional[float] = 30.0,
) -> Tuple[ReducerWorker, threading.Thread]:
    """Start a reducer worker on a daemon thread; returns (worker, thread)."""
    worker = ReducerWorker(host, port, read_timeout)
    thread = threading.Thread(
        target=worker.serve_forever,
        name=f"pta-cluster-worker-{worker.port}",
        daemon=True,
    )
    thread.start()
    return worker, thread


def main() -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="PTA cluster reducer worker"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    arguments = parser.parse_args()
    worker = ReducerWorker(arguments.host, arguments.port)
    _log.info("reducer worker listening", address=worker.address)
    try:
        worker.serve_forever()
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    raise SystemExit(main())


__all__ = ["ReducerWorker", "reduce_request", "start_worker"]
