"""Cluster coordinator: ship shards to remote reducers, merge centrally.

The distributed engine is the sharded engine of :mod:`repro.parallel`
with the process pool swapped for sockets — every determinism property
carries over because the *plan* and the *reconciliation* are byte-for-byte
the same code:

1. **Encode + shard** — :func:`repro.parallel.encode_segments` and
   :func:`repro.parallel.plan_shards`.  The shard plan depends only on
   the input and ``shard_size``, never on the cluster membership, so the
   same cuts are made whether the job runs on one worker, five, or none.
2. **Ship** — each shard travels as a ``KIND_REDUCE`` frame: a JSON
   envelope with the squared weights, then the shard columns as verbatim
   ``PTAS`` bytes (:func:`repro.service.wire.encode_segments` over an
   :class:`~repro.parallel.EncodedSegments` slice carrying the full
   interned group-key table, so the payload is self-contained).
3. **Reduce remotely** — a :class:`repro.cluster.worker.ReducerWorker`
   answers with the shard's complete merge schedule (``KIND_TRAJECTORY``).
   Shards are dispatched concurrently, one thread per cluster address.
4. **Survive faults** — a shard whose worker dies, times out, or answers
   garbage is retried across the remaining addresses with
   decorrelated-jitter exponential backoff
   (:func:`repro.cluster.transport.request_with_retries`); peers whose
   circuit breaker is open (:data:`repro.util.health.SHARED`) are
   skipped until a half-open probe readmits them; when every address
   fails, the shard runs **in-process** — the same fallback ladder as
   the pool engine's ``BrokenProcessPool`` handling.  Requests the
   workers themselves reject as malformed (``bad_request``) or as
   arriving past their end-to-end deadline (``deadline_exceeded``) are
   not retried: resending identical bytes cannot succeed.  When the
   caller runs under a :func:`repro.util.deadline.deadline_scope`, the
   remaining budget rides in each shard envelope and bounds every
   connect, read and backoff sleep.
5. **Reconcile + rebuild** — :func:`repro.parallel.assemble_result`
   consumes trajectories by shard index, never completion order, so the
   output is bit-identical to ``workers=1`` / ``workers=N`` no matter
   which worker computed which shard, in what order, or how many died.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Iterable, List, Optional, Sequence, Union

import numpy as np

from ..core.errors import Weights, resolve_weights
from ..core.greedy import GreedyResult
from ..core.merge import AggregateSegment
from ..obs import metrics as _metrics
from ..obs import tracing as _tracing
from ..parallel import (
    DEFAULT_SHARD_SIZE,
    RETRY_BACKOFF_S,
    SHARD_RETRIES,
    EncodedSegments,
    ShardTrajectory,
    assemble_result,
    encode_segments,
    plan_shards,
    reduce_shard,
    shard_payloads,
    validate_budget,
)
from ..service import wire
from ..util import deadline as _deadline
from ..util.health import SHARED as SHARED_HEALTH
from .transport import (
    DEFAULT_CONNECT_TIMEOUT,
    DEFAULT_READ_TIMEOUT,
    KIND_REDUCE,
    KIND_TRAJECTORY,
    NON_RETRYABLE_CODES,
    RemoteError,
    TransportError,
    decode_trajectory,
    pack_envelope,
    parse_address,
    request_with_retries,
)

__all__ = ["encode_shard_request", "reduce_cluster"]


def encode_shard_request(
    encoded: EncodedSegments,
    lo: int,
    hi: int,
    w2: np.ndarray,
    trace_id: Optional[str] = None,
    deadline_budget: Optional[float] = None,
) -> bytes:
    """One shard as a self-contained ``KIND_REDUCE`` payload.

    The body is the shard's column slice as verbatim ``PTAS`` bytes; the
    full interned group-key table rides along so the slice's global group
    ids resolve on the worker.  The weights travel in the JSON envelope —
    floats survive a JSON roundtrip bit-exactly (``repr`` semantics), so
    remote and local reductions use identical ``w2``.  When the caller
    runs under a trace, the ``trace_id`` rides in the envelope meta so
    the worker's ``shard_reduce`` span joins the coordinator's trace;
    ``deadline_budget`` (the request's *remaining* seconds at send time)
    rides next to it so the worker can refuse work that would finish
    after the caller has given up.
    """
    body = wire.encode_segments(
        EncodedSegments(
            encoded.starts[lo:hi],
            encoded.ends[lo:hi],
            encoded.values[lo:hi],
            encoded.groups[lo:hi],
            encoded.group_keys,
        )
    )
    meta: dict = {"w2": w2.tolist(), "shard": [lo, hi]}
    if trace_id is not None:
        meta["trace_id"] = trace_id
    if deadline_budget is not None:
        meta["deadline"] = deadline_budget
    return pack_envelope(meta, body)


def reduce_cluster(
    segments: Union[Iterable[AggregateSegment], EncodedSegments],
    size: Optional[int] = None,
    max_error: Optional[float] = None,
    weights: Optional[Weights] = None,
    cluster: Sequence[str] = (),
    shard_size: Optional[int] = None,
    shard_retries: Optional[int] = None,
    retry_backoff: Optional[float] = None,
    connect_timeout: float = DEFAULT_CONNECT_TIMEOUT,
    read_timeout: float = DEFAULT_READ_TIMEOUT,
) -> GreedyResult:
    """Sharded greedy reduction over remote reducer workers.

    ``cluster`` is a non-empty sequence of ``"host:port"`` reducer
    addresses.  Exactly one of ``size`` / ``max_error`` must be given
    (same semantics as :func:`repro.parallel.run_sharded`); the result is
    bit-identical to the in-process and pool engines for every cluster
    size, worker placement, or mid-job worker death.  Each shard tries
    every address up to ``1 + shard_retries`` rounds before falling back
    to an in-process reduction of that shard.
    """
    validate_budget(size, max_error)
    addresses = list(cluster)
    if not addresses:
        raise ValueError("cluster must name at least one worker address")
    for address in addresses:
        parse_address(address)  # fail fast on malformed addresses
    if shard_size is None:
        shard_size = DEFAULT_SHARD_SIZE
    elif shard_size < 1:
        raise ValueError(f"shard_size must be at least 1, got {shard_size}")
    if shard_retries is None:
        shard_retries = SHARD_RETRIES
    elif shard_retries < 0:
        raise ValueError(
            f"shard_retries must be non-negative, got {shard_retries}"
        )
    if retry_backoff is None:
        retry_backoff = RETRY_BACKOFF_S
    elif retry_backoff < 0:
        raise ValueError(
            f"retry_backoff must be non-negative, got {retry_backoff}"
        )

    encoded = (
        segments
        if isinstance(segments, EncodedSegments)
        else encode_segments(segments)
    )
    if len(encoded) == 0:
        return GreedyResult()

    w2 = (
        np.asarray(
            resolve_weights(weights, encoded.dimensions), dtype=np.float64
        )
        ** 2
    )
    shards = plan_shards(encoded, shard_size)

    # Capture the caller's trace id *before* the thread fan-out: plain
    # ThreadPoolExecutor threads do not inherit ContextVars, so each
    # dispatch re-enters the trace explicitly and the id also rides in
    # the shard envelope for the remote worker's spans.
    trace_id = _tracing.current_trace_id()
    deadline = _deadline.current_deadline()
    fallbacks = _metrics.counter(
        "repro_shard_fallbacks_total",
        "Shards reduced in-process after every cluster peer failed.",
        tier="cluster",
    )

    # Rotate each shard's starting address so concurrent shards spread
    # across the cluster instead of all hammering addresses[0]; the
    # rotation only changes *where* a schedule is computed, never what it
    # contains, so placement cannot perturb the output.
    def _reduce_remote(index: int, lo: int, hi: int) -> ShardTrajectory:
        if deadline is not None:
            deadline.check(f"dispatching shard {index}")
        payload = encode_shard_request(
            encoded,
            lo,
            hi,
            w2,
            trace_id,
            deadline.remaining() if deadline is not None else None,
        )
        rotated = [
            addresses[(index + step) % len(addresses)]
            for step in range(len(addresses))
        ]
        with _tracing.attach(trace_id), _deadline.attach(deadline):
            try:
                answer = request_with_retries(
                    rotated,
                    KIND_REDUCE,
                    payload,
                    expect=KIND_TRAJECTORY,
                    retries=shard_retries,
                    backoff=retry_backoff,
                    connect_timeout=connect_timeout,
                    read_timeout=read_timeout,
                    deadline=deadline,
                    health=SHARED_HEALTH,
                )
            except RemoteError as error:
                if error.code in NON_RETRYABLE_CODES:
                    # bad_request: resending identical bytes cannot
                    # succeed.  deadline_exceeded: the budget is spent —
                    # a local fallback would blow it just the same.
                    raise
                fallbacks.inc()
                return _reduce_local(index)
            except TransportError:
                fallbacks.inc()
                return _reduce_local(index)
        return decode_trajectory(answer)

    local_lock = threading.Lock()
    local_payloads: List[Optional[tuple]] = [None]

    def _reduce_local(index: int) -> ShardTrajectory:
        with local_lock:  # materialise the payload list once, lazily
            if local_payloads[0] is None:
                local_payloads[0] = shard_payloads(encoded, shards, w2)
        return reduce_shard(local_payloads[0][index])

    trajectories: List[ShardTrajectory]
    if len(shards) == 1 or len(addresses) == 1:
        trajectories = [
            _reduce_remote(index, lo, hi)
            for index, (lo, hi) in enumerate(shards)
        ]
    else:
        width = min(len(addresses), len(shards))
        with ThreadPoolExecutor(
            max_workers=width, thread_name_prefix="pta-cluster"
        ) as pool:
            trajectories = list(
                pool.map(
                    lambda task: _reduce_remote(task[0], *task[1]),
                    list(enumerate(shards)),
                )
            )

    return assemble_result(encoded, shards, trajectories, size, max_error)
