"""Cluster tier: remote shard reduction and warm-standby replication.

Two independent distributed capabilities, both built on one socket
transport (:mod:`repro.cluster.transport` — length-prefixed,
CRC-checked ``PTAF`` frames nesting the existing ``PTAS``/``PTAR`` wire
codecs):

* **Distributed reduction** — :func:`reduce_cluster`
  (:mod:`repro.cluster.coordinator`) cuts an encoded stream into the
  same workers-independent shard plan as :mod:`repro.parallel`, ships
  each shard to a remote :class:`ReducerWorker`
  (:mod:`repro.cluster.worker`), and k-way-merges the returned
  trajectory frontiers centrally under the global budget.  The output
  is bit-identical to ``workers=N`` and ``workers=1`` regardless of
  worker placement, count, or mid-job worker death (retry across
  peers, then local fallback).  Reachable from the top-level API as
  ``compress(..., cluster=["host:port", ...])``.
* **Warm-standby replication** — :class:`ReplicationLink` streams the
  primary store's per-push delta log (the same ``PTAS`` frames its WAL
  holds) to a :class:`StandbyServer`, which applies them through the
  ordinary session machinery; :meth:`StandbyServer.promote` turns the
  standby into a serving primary whose query answers are bit-identical
  to the failed primary's at every acknowledged push generation.

See ``docs/ARCHITECTURE.md`` (Cluster tier) for the role/frame-flow/
failover state machine and ``docs/FORMATS.md`` § 8 for the normative
transport framing spec.
"""

from .coordinator import reduce_cluster
from .replica import ReplicationLink, StandbyServer, standby_store, start_standby
from .transport import (
    Connection,
    RemoteError,
    TransportError,
    parse_address,
    recv_frame,
    request_with_retries,
    send_frame,
)
from .worker import ReducerWorker, start_worker

__all__ = [
    "Connection",
    "ReducerWorker",
    "RemoteError",
    "ReplicationLink",
    "StandbyServer",
    "TransportError",
    "parse_address",
    "recv_frame",
    "reduce_cluster",
    "request_with_retries",
    "send_frame",
    "standby_store",
    "start_standby",
    "start_worker",
]
