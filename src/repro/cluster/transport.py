"""Length-prefixed, CRC-checked socket transport of the cluster tier.

Every byte that crosses a host boundary in :mod:`repro.cluster` travels
in one **frame**::

    magic    4 bytes  b"PTAF"
    version  u16      1
    kind     u8       frame kind (the KIND_* constants below)
    reserved u8       0
    length   u32      payload byte count
    crc32    u32      zlib.crc32 of the payload
    payload  ...      kind-specific bytes

The framing deliberately mirrors the WAL frame layout of
:mod:`repro.storage.wal` — length prefix + CRC — because the failure
modes are the same: a peer can die mid-write, so the reader must detect
a torn or corrupt frame instead of deserialising garbage.  Payloads are
not a new format either: data frames nest the existing ``PTAS``/``PTAR``
column codecs of :mod:`repro.service.wire` (a shard request is a
``PTAS`` container with a ``w2`` side column, a shipped frozen epoch is
a ``PTAR`` container with routing side columns), control frames carry
UTF-8 JSON, and **error frames** carry the same structured
``{"error": message, "code": slug}`` shape as the HTTP front end.

Client plumbing: :class:`Connection` wraps a socket with a connect
timeout, a per-read deadline, and a ``request()`` round trip that raises
:class:`RemoteError` when the peer answers with an error frame;
:func:`request_with_retries` adds the bounded retry ladder (the network
face of ``parallel.py``'s pool-rebuild ladder) with exponential backoff
plus decorrelated jitter (:mod:`repro.util.backoff`).  Two optional
cross-cutting inputs harden it further: a
:class:`~repro.util.health.PeerHealth` tracker skips peers whose
circuit breaker is open (and ``PING``-probes half-open ones before
trusting them with the real request), and a
:class:`~repro.util.deadline.Deadline` bounds every sleep and socket
timeout by the request's remaining end-to-end budget.

Failpoints (``repro.util.failpoints``): ``transport.connect``,
``transport.send`` and ``transport.recv`` sit on the three fragile
operations, so the fault suites can tear a frame, time out a connect or
kill a peer at exactly one deterministic point.  The normative framing
spec with per-rule test citations lives in ``docs/FORMATS.md``.
"""

from __future__ import annotations

import json
import random
import socket
import struct
import time
import zlib
from typing import Any, Dict, Optional, Sequence, Tuple

from ..obs import metrics as _metrics
from ..util import failpoints
from ..util.backoff import DEFAULT_CAP_S as DEFAULT_BACKOFF_CAP_S
from ..util.backoff import Backoff
from ..util.deadline import Deadline
from ..util.health import PeerHealth

#: Magic tag and version of transport frames.  Bump the version on any
#: layout change; readers reject every other version.
FRAME_MAGIC = b"PTAF"
FRAME_VERSION = 1

_FRAME_HEADER = struct.Struct("<4sHBBII")

#: Frame kinds.  Adding a kind is backwards compatible (unknown kinds
#: are answered with an error frame); changing the layout of an existing
#: kind requires a version bump.
KIND_ERROR = 0       #: JSON ``{"error": message, "code": slug}``
KIND_PING = 1        #: empty payload (liveness probe)
KIND_PONG = 2        #: empty payload (liveness answer)
KIND_REDUCE = 3      #: PTAS container + ``w2`` side column (one shard)
KIND_TRAJECTORY = 4  #: PTAT container (the shard's merge schedule)
KIND_HELLO = 5       #: JSON (replication stream header)
KIND_PUSH = 6        #: PTAS container + ``key``/``seq`` side columns
KIND_FREEZE = 7      #: JSON ``{"key": ..., "seq": ...}``
KIND_FROZEN = 8      #: PTAR container + ``key``/``epoch``/``seq`` columns
KIND_ACK = 9         #: JSON ``{"seq": ...}``
KIND_OK = 10         #: JSON (generic success answer)
KIND_CATCHUP = 11    #: JSON ``{"seq": ...}`` (end-of-catch-up marker)

#: Largest accepted frame payload.  The length field is peer-controlled,
#: so the reader bounds it before allocating anything.
MAX_FRAME_BYTES = 256 * 1024 * 1024

#: Client-side defaults: TCP connect deadline, per-read deadline, retry
#: attempts and the base of the exponential backoff between rounds
#: (decorrelated jitter, capped at ``DEFAULT_BACKOFF_CAP_S``).
DEFAULT_CONNECT_TIMEOUT = 2.0
DEFAULT_READ_TIMEOUT = 30.0
DEFAULT_RETRIES = 2
DEFAULT_BACKOFF_S = 0.05


class TransportError(RuntimeError):
    """A transport-level failure: torn/corrupt frame, timeout, refused
    or dropped connection, or a malformed peer address."""


class RemoteError(TransportError):
    """The peer answered with a structured error frame.

    ``code`` carries the same slug vocabulary as the HTTP front end
    (``bad_request``, ``internal``, ...) so a caller can tell a payload
    it must not retry (``bad_request``) from a peer fault it may.
    """

    def __init__(self, message: str, code: str) -> None:
        super().__init__(message)
        self.code = code


def parse_address(address: str) -> Tuple[str, int]:
    """Parse ``"host:port"`` into a socket address tuple."""
    host, separator, port = address.rpartition(":")
    if not separator or not host:
        raise TransportError(
            f"worker address must be 'host:port', got {address!r}"
        )
    try:
        number = int(port)
    except ValueError:
        raise TransportError(
            f"invalid port in worker address {address!r}"
        ) from None
    if not 0 < number < 65536:
        raise TransportError(f"port out of range in address {address!r}")
    return host, number


# ----------------------------------------------------------------------
# Frame I/O
# ----------------------------------------------------------------------
def send_frame(sock: socket.socket, kind: int, payload: bytes = b"") -> None:
    """Write one frame; any socket fault surfaces as the raw ``OSError``."""
    failpoints.fail("transport.send")
    header = _FRAME_HEADER.pack(
        FRAME_MAGIC, FRAME_VERSION, kind, 0, len(payload), zlib.crc32(payload)
    )
    sock.sendall(header + payload)


def recv_frame(sock: socket.socket) -> Tuple[int, bytes]:
    """Read one frame, validating magic, version, bounds and CRC.

    Raises :class:`TransportError` for a torn header/payload (the peer
    died mid-write), a CRC mismatch, an oversized length field, or a
    wrong magic/version — malformed bytes are never deserialised.
    """
    failpoints.fail("transport.recv")
    header = _recv_exact(sock, _FRAME_HEADER.size, "frame header")
    magic, version, kind, _, length, crc = _FRAME_HEADER.unpack(header)
    if magic != FRAME_MAGIC:
        raise TransportError(
            f"wrong frame magic {magic!r} (expected {FRAME_MAGIC!r})"
        )
    if version != FRAME_VERSION:
        raise TransportError(
            f"unsupported frame version {version}; this peer understands "
            f"version {FRAME_VERSION}"
        )
    if length > MAX_FRAME_BYTES:
        raise TransportError(
            f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES} limit"
        )
    payload = _recv_exact(sock, length, "frame payload")
    if zlib.crc32(payload) != crc:
        raise TransportError("frame payload failed its CRC check")
    return kind, payload


def _recv_exact(sock: socket.socket, count: int, what: str) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        try:
            chunk = sock.recv(min(remaining, 1 << 20))
        except socket.timeout as error:
            raise TransportError(
                f"read timed out awaiting {what} "
                f"({count - remaining}/{count} bytes)"
            ) from error
        if not chunk:
            raise TransportError(
                f"connection closed mid-{what}: expected {count} bytes, "
                f"got {count - remaining}"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def error_payload(message: str, code: str) -> bytes:
    """Encode a structured error frame payload (the HTTP error shape)."""
    return json.dumps({"error": message, "code": code}).encode("utf-8")


def decode_json(payload: bytes, what: str) -> Dict[str, Any]:
    """Parse a JSON control payload into a dict, loudly."""
    try:
        value = json.loads(payload.decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as error:
        raise TransportError(f"malformed {what} payload: {error}") from error
    if not isinstance(value, dict):
        raise TransportError(f"{what} payload must be a JSON object")
    return value


# ----------------------------------------------------------------------
# Payload envelopes and the trajectory codec
# ----------------------------------------------------------------------
#: Magic tag and version of trajectory payloads (a worker's answer to a
#: shard request): one column container with ``boundaries`` (int64),
#: ``keys`` (float64) and ``sse_max`` (float64, shape ``(1,)``).
TRAJECTORY_MAGIC = b"PTAT"
TRAJECTORY_VERSION = 1

_ENVELOPE_LEN = struct.Struct("<I")


def pack_envelope(meta: Dict[str, Any], body: bytes) -> bytes:
    """Prefix opaque codec bytes with a small JSON routing header.

    Data frames ship existing ``PTAS``/``PTAR`` payloads **verbatim** —
    a replicated push frame's body is byte-identical to the primary's
    WAL frame payload — so the routing information (key, sequence
    number, shard weights) travels in a length-prefixed JSON envelope
    in front of the body instead of being repacked into it.
    """
    blob = json.dumps(meta, allow_nan=False).encode("utf-8")
    return _ENVELOPE_LEN.pack(len(blob)) + blob + body


def unpack_envelope(payload: bytes, what: str) -> Tuple[Dict[str, Any], bytes]:
    """Split an enveloped payload back into (meta, body), loudly."""
    if len(payload) < _ENVELOPE_LEN.size:
        raise TransportError(f"{what} payload too short for an envelope")
    (length,) = _ENVELOPE_LEN.unpack_from(payload, 0)
    begin = _ENVELOPE_LEN.size
    if begin + length > len(payload):
        raise TransportError(
            f"{what} envelope promises {length} header bytes, "
            f"{len(payload) - begin} remain"
        )
    meta = decode_json(payload[begin:begin + length], what)
    return meta, payload[begin + length:]


def encode_trajectory(trajectory: Tuple[Any, Any, float]) -> bytes:
    """Pack one shard's merge schedule into a ``PTAT`` payload."""
    import numpy as np

    from ..storage.columns import pack_columns

    boundaries, keys, sse_max = trajectory
    return pack_columns(
        {
            "boundaries": np.asarray(boundaries, dtype=np.int64),
            "keys": np.asarray(keys, dtype=np.float64),
            "sse_max": np.asarray([sse_max], dtype=np.float64),
        },
        TRAJECTORY_MAGIC,
        TRAJECTORY_VERSION,
    )


def decode_trajectory(payload: bytes) -> Tuple[Any, Any, float]:
    """Unpack a ``PTAT`` payload back into ``(boundaries, keys, sse_max)``."""
    from ..storage.columns import ColumnCodecError, unpack_columns

    try:
        columns = unpack_columns(
            payload, TRAJECTORY_MAGIC, TRAJECTORY_VERSION
        )
    except ColumnCodecError as error:
        raise TransportError(str(error)) from error
    missing = [
        name for name in ("boundaries", "keys", "sse_max")
        if name not in columns
    ]
    if missing:
        raise TransportError(
            f"trajectory payload is missing columns {missing}"
        )
    boundaries = columns["boundaries"]
    keys = columns["keys"]
    sse_max = columns["sse_max"]
    if (
        boundaries.ndim != 1 or keys.ndim != 1
        or len(boundaries) != len(keys) or sse_max.shape != (1,)
    ):
        raise TransportError("trajectory payload columns are malformed")
    return boundaries, keys, float(sse_max[0])


# ----------------------------------------------------------------------
# Client side
# ----------------------------------------------------------------------
class Connection:
    """One client connection with connect/read deadlines.

    ``request(kind, payload)`` performs a frame round trip and raises
    :class:`RemoteError` when the answer is an error frame — so callers
    only ever see either the expected response frame or an exception.
    Usable as a context manager.
    """

    def __init__(
        self,
        address: str,
        connect_timeout: float = DEFAULT_CONNECT_TIMEOUT,
        read_timeout: Optional[float] = DEFAULT_READ_TIMEOUT,
    ) -> None:
        self.address = address
        host, port = parse_address(address)
        injected = failpoints.fail("transport.connect")
        if injected is not None:
            raise TransportError(
                f"connect to {address} failed: {injected}"
            )
        try:
            self._sock = socket.create_connection(
                (host, port), timeout=connect_timeout
            )
        except OSError as error:
            raise TransportError(
                f"connect to {address} failed: {error}"
            ) from error
        self.read_timeout = read_timeout
        self._sock.settimeout(read_timeout)

    def send(self, kind: int, payload: bytes = b"") -> None:
        try:
            send_frame(self._sock, kind, payload)
        except OSError as error:
            raise TransportError(
                f"send to {self.address} failed: {error}"
            ) from error

    def recv(self) -> Tuple[int, bytes]:
        try:
            return recv_frame(self._sock)
        except OSError as error:
            raise TransportError(
                f"read from {self.address} failed: {error}"
            ) from error

    def request(
        self,
        kind: int,
        payload: bytes = b"",
        *,
        timeout: Optional[float] = None,
    ) -> Tuple[int, bytes]:
        """One round trip; error frames become :class:`RemoteError`.

        ``timeout`` overrides the connection's per-read deadline for
        just this round trip — the replication links pass the ambient
        end-to-end deadline's remaining budget through it, so no ack
        wait outlives the request that triggered it.
        """
        if timeout is not None and timeout != self.read_timeout:
            try:
                self._sock.settimeout(timeout)
            except OSError as error:
                raise TransportError(
                    f"read from {self.address} failed: {error}"
                ) from error
            try:
                self.send(kind, payload)
                answer_kind, answer = self.recv()
            finally:
                try:
                    self._sock.settimeout(self.read_timeout)
                except OSError:
                    pass  # the socket died; close() follows anyway
        else:
            self.send(kind, payload)
            answer_kind, answer = self.recv()
        if answer_kind == KIND_ERROR:
            detail = decode_json(answer, "error frame")
            raise RemoteError(
                str(detail.get("error", "unspecified peer error")),
                str(detail.get("code", "internal")),
            )
        return answer_kind, answer

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()


#: RemoteError codes that no amount of retrying can fix: the payload is
#: at fault (``bad_request``) or the request's budget is spent
#: (``deadline_exceeded``) — re-raised immediately, no peer rotation.
NON_RETRYABLE_CODES = frozenset({"bad_request", "deadline_exceeded"})


def request_with_retries(
    addresses: Sequence[str],
    kind: int,
    payload: bytes,
    expect: int,
    retries: int = DEFAULT_RETRIES,
    backoff: float = DEFAULT_BACKOFF_S,
    connect_timeout: float = DEFAULT_CONNECT_TIMEOUT,
    read_timeout: Optional[float] = DEFAULT_READ_TIMEOUT,
    deadline: Optional[Deadline] = None,
    health: Optional[PeerHealth] = None,
    backoff_cap: float = DEFAULT_BACKOFF_CAP_S,
    rng: Optional[random.Random] = None,
) -> bytes:
    """One request, tried against ``addresses`` with bounded retries.

    Attempt ``1 + retries`` rounds; within a round every address is
    tried once (rotated so consecutive rounds lead with different
    peers), with exponential backoff plus decorrelated jitter between
    rounds (:class:`repro.util.backoff.Backoff`; ``rng`` makes the
    schedule deterministic in tests, ``backoff=0`` disables sleeping
    entirely).  A :class:`RemoteError` whose code is in
    :data:`NON_RETRYABLE_CODES` is re-raised immediately; everything
    else rotates to the next peer.  Raises the last failure when every
    attempt is exhausted.

    ``deadline`` bounds the whole ladder: sleeps and socket timeouts
    are clamped to the remaining budget, and an expired deadline raises
    :class:`~repro.util.deadline.DeadlineExceeded` instead of starting
    another attempt.

    ``health`` consults a per-peer circuit breaker before every dial:
    open peers are skipped without burning a connect timeout, half-open
    peers get a ``PING`` probe before being trusted with the real
    request, and every outcome is recorded (a :class:`RemoteError`
    counts as *success* — the peer is alive, it just disliked the
    request).  When every address is breaker-blocked the call fails
    fast with :class:`TransportError`.
    """
    if not addresses:
        raise TransportError("no addresses to send to")
    retried = _metrics.counter(
        "repro_shard_retries_total",
        "Failed request attempts rotated to another peer.",
        tier="cluster",
    )
    skipped = _metrics.counter(
        "repro_peer_breaker_skips_total",
        "Dial attempts skipped because the peer's breaker was open.",
        tier="cluster",
    )
    ladder = Backoff(backoff, max(backoff_cap, backoff), rng=rng)
    last: Optional[Exception] = None
    for round_index in range(1 + max(retries, 0)):
        if round_index:
            delay = ladder.next()
            if deadline is not None:
                deadline.check(f"retry round {round_index}")
                delay = min(delay, max(deadline.remaining(), 0.0))
            if delay > 0:
                time.sleep(delay)
        for step in range(len(addresses)):
            address = addresses[(round_index + step) % len(addresses)]
            if deadline is not None:
                deadline.check(f"dialing {address}")
            if health is not None and not health.allow(address):
                skipped.inc()
                continue
            probing = health is not None and health.probation(address)
            if deadline is not None:
                dial_timeout = deadline.clamp(connect_timeout)
                wait_timeout: Optional[float] = deadline.clamp(read_timeout)
            else:
                dial_timeout = connect_timeout
                wait_timeout = read_timeout
            try:
                with Connection(
                    address, dial_timeout, wait_timeout
                ) as connection:
                    if probing:
                        probe_kind, _ = connection.request(KIND_PING)
                        if probe_kind != KIND_PONG:
                            raise TransportError(
                                f"{address} answered frame kind "
                                f"{probe_kind} to the half-open PING probe"
                            )
                    answer_kind, answer = connection.request(kind, payload)
            except RemoteError as error:
                # The peer is alive enough to answer an error frame.
                if health is not None:
                    health.success(address)
                if error.code in NON_RETRYABLE_CODES:
                    raise
                last = error
                retried.inc()
                continue
            except TransportError as error:
                if health is not None:
                    health.failure(address)
                last = error
                retried.inc()
                continue
            if health is not None:
                health.success(address)
            if answer_kind != expect:
                last = TransportError(
                    f"{address} answered frame kind {answer_kind}, "
                    f"expected {expect}"
                )
                retried.inc()
                continue
            return answer
    if last is None:
        raise TransportError(
            "every peer's circuit breaker is open "
            f"({', '.join(addresses)})"
        )
    raise last


__all__ = [
    "Connection",
    "DEFAULT_BACKOFF_CAP_S",
    "DEFAULT_BACKOFF_S",
    "DEFAULT_CONNECT_TIMEOUT",
    "DEFAULT_READ_TIMEOUT",
    "DEFAULT_RETRIES",
    "FRAME_MAGIC",
    "FRAME_VERSION",
    "KIND_ACK",
    "KIND_CATCHUP",
    "KIND_ERROR",
    "KIND_FREEZE",
    "KIND_FROZEN",
    "KIND_HELLO",
    "KIND_OK",
    "KIND_PING",
    "KIND_PONG",
    "KIND_PUSH",
    "KIND_REDUCE",
    "KIND_TRAJECTORY",
    "MAX_FRAME_BYTES",
    "NON_RETRYABLE_CODES",
    "RemoteError",
    "TRAJECTORY_MAGIC",
    "TRAJECTORY_VERSION",
    "TransportError",
    "decode_json",
    "decode_trajectory",
    "encode_trajectory",
    "error_payload",
    "pack_envelope",
    "parse_address",
    "recv_frame",
    "request_with_retries",
    "send_frame",
    "unpack_envelope",
]
