"""Temporal queries over summary snapshots (the read path of serving).

The paper's premise is that a parsimonious summary is small enough to
*serve from*: point lookups and range aggregates over the reduced relation
answer the original workload within the bounded error of the reduction.
:class:`QueryEngine` implements that read path over a
:class:`~repro.service.store.SessionStore`:

* ``value_at(key, t)`` — the aggregate values at chronon ``t``: one binary
  search over the snapshot's segment starts
  (:func:`repro.core.kernels.instant_index`);
* ``range_agg(key, t1, t2, fn)`` — a range aggregate over ``[t1, t2]``:
  ``avg`` and ``sum`` are answered in ``O(log n + p)`` from the snapshot's
  time-weighted prefix sums (:func:`repro.core.kernels.range_weighted_sum`
  — the same Proposition 1/2 identities the merge kernels use), ``min`` /
  ``max`` scan only the overlapped rows;
* ``window(key, t1, t2, stride)`` — a fixed-stride sweep of range
  aggregates, the shape dashboards poll for.

Snapshots are cached per key and invalidated by the store's push
*generation*: between pushes, repeated queries reuse one prepared index
(sorted arrays + prefix sums).  A cache miss consumes the store's
*snapshot columns* — the session's delta-patched, generation-cached column
snapshot — and builds the index with one stable ``lexsort``
(:meth:`SnapshotIndex.from_columns`), so even a cold read after ``k``
pushes costs amortised O(k + summary) rather than O(live heap), and no
per-segment objects are materialised on the way.  Keys that serve several
aggregation groups expose them via the ``group=`` parameter.

Answers are float-exact with respect to the snapshot: running the same
query against the batch ``compress`` output of the same prefix yields
bit-identical numbers, because snapshots are bit-identical to batch
summaries (the PR 3 session contract) and the query arithmetic is shared.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.kernels import (
    SnapshotColumns,
    instant_index,
    range_weighted_sum,
    time_weighted_prefix,
)
from ..core.merge import AggregateSegment
from ..obs import metrics as _metrics
from .store import Key, ServiceError, SessionStore

#: Range-aggregate functions:``avg`` is the chronon-weighted mean (what the
#: summary's merge operator preserves), ``sum`` the value·chronon integral,
#: ``min``/``max`` the extreme segment values touching the range.
RANGE_FUNCTIONS = ("avg", "sum", "min", "max")


@dataclass(frozen=True)
class WindowBucket:
    """One stride of a :meth:`QueryEngine.window` sweep.

    ``values`` is ``None`` when the bucket lies entirely in a temporal gap.
    """

    start: int
    end: int
    values: Optional[Tuple[float, ...]]


class _GroupIndex:
    """Query-ready arrays of one group's snapshot segments."""

    __slots__ = ("starts", "ends", "values", "length_prefix", "weighted_prefix")

    def __init__(self, segments: Sequence[AggregateSegment]) -> None:
        count = len(segments)
        starts = np.fromiter(
            (s.interval.start for s in segments), np.int64, count
        )
        ends = np.fromiter(
            (s.interval.end for s in segments), np.int64, count
        )
        dimensions = segments[0].dimensions if count else 0
        values = np.array(
            [s.values for s in segments], dtype=np.float64
        ).reshape(count, dimensions)
        self._finish(starts, ends, values)

    @classmethod
    def from_arrays(
        cls, starts: np.ndarray, ends: np.ndarray, values: np.ndarray
    ) -> "_GroupIndex":
        """Build directly from snapshot columns (no segment objects)."""
        index = cls.__new__(cls)
        index._finish(starts, ends, values)
        return index

    def _finish(
        self, starts: np.ndarray, ends: np.ndarray, values: np.ndarray
    ) -> None:
        self.starts = starts
        self.ends = ends
        self.values = values
        self.length_prefix, self.weighted_prefix = time_weighted_prefix(
            starts, ends, values
        )

    def value_at(self, t: int) -> Optional[Tuple[float, ...]]:
        index = instant_index(self.starts, self.ends, t)
        if index < 0:
            return None
        return tuple(float(v) for v in self.values[index])

    def range_agg(
        self, t1: int, t2: int, fn: str
    ) -> Optional[Tuple[float, ...]]:
        # Overlapping segment index range: first segment ending at/after t1,
        # last segment starting at/before t2.
        lo = int(np.searchsorted(self.ends, t1, side="left"))
        hi = int(np.searchsorted(self.starts, t2, side="right")) - 1
        if lo > hi or lo >= len(self.starts) or hi < 0:
            return None
        if fn == "min":
            return tuple(
                float(v) for v in self.values[lo : hi + 1].min(axis=0)
            )
        if fn == "max":
            return tuple(
                float(v) for v in self.values[lo : hi + 1].max(axis=0)
            )
        covered, weighted = range_weighted_sum(
            self.starts,
            self.ends,
            self.values,
            self.length_prefix,
            self.weighted_prefix,
            lo,
            hi,
            t1,
            t2,
        )
        if fn == "sum":
            return tuple(float(v) for v in weighted)
        return tuple(float(v) for v in weighted / covered)

    def cost_rows(self, t1: int, t2: int) -> int:
        """Estimated rows a range query over ``[t1, t2]`` touches.

        The window span measured against the snapshot index — the same
        two binary searches :meth:`range_agg` opens with, so the
        estimate is exact for ``min``/``max`` scans and an upper bound
        for the prefix-sum path.  This is the per-query cost accounting
        a cost-aware scheduler consumes (ROADMAP direction 2).
        """
        lo = int(np.searchsorted(self.ends, t1, side="left"))
        hi = int(np.searchsorted(self.starts, t2, side="right")) - 1
        lo = max(lo, 0)
        hi = min(hi, len(self.starts) - 1)
        return max(0, hi - lo + 1)


class SnapshotIndex:
    """A whole snapshot prepared for querying, one sub-index per group."""

    def __init__(self, segments: Sequence[AggregateSegment]) -> None:
        grouped: Dict[Tuple[Any, ...], List[AggregateSegment]] = {}
        for segment in segments:
            grouped.setdefault(segment.group, []).append(segment)
        for members in grouped.values():
            members.sort(key=lambda s: s.interval.start)
        self._groups = {
            group: _GroupIndex(members) for group, members in grouped.items()
        }

    @classmethod
    def from_columns(cls, columns: SnapshotColumns) -> "SnapshotIndex":
        """Build the index straight from snapshot columns, vectorized.

        The column twin of the segment constructor: rows are partitioned
        by group and time-ordered with one stable ``lexsort`` instead of a
        per-segment Python pass — this is what makes a *cold* query after
        a delta-patched snapshot cost about the same as a warm one.
        """
        index = cls.__new__(cls)
        index._groups = {}
        if len(columns):
            order = np.lexsort((columns.starts, columns.group_ids))
            ordered_ids = columns.group_ids[order]
            boundaries = np.flatnonzero(np.diff(ordered_ids)) + 1
            for rows in np.split(order, boundaries):
                group = columns.group_keys[int(columns.group_ids[rows[0]])]
                index._groups[group] = _GroupIndex.from_arrays(
                    columns.starts[rows],
                    columns.ends[rows],
                    columns.values[rows],
                )
        return index

    @property
    def groups(self) -> List[Tuple[Any, ...]]:
        return list(self._groups)

    def resolve(self, group: Optional[Sequence[Any]]) -> _GroupIndex:
        if group is None:
            if len(self._groups) == 1:
                return next(iter(self._groups.values()))
            if not self._groups:
                raise ServiceError("the snapshot is empty")
            raise ServiceError(
                f"the key serves {len(self._groups)} aggregation groups; "
                f"pass group= to select one of {sorted(self._groups)}"
            )
        wanted = tuple(group)
        index = self._groups.get(wanted)
        if index is None:
            raise ServiceError(
                f"unknown group {wanted!r}; known: {sorted(self._groups)}"
            )
        return index


#: Distinguishes engine instances in the shared metrics registry.
_ENGINE_IDS = itertools.count()


class QueryEngine:
    """Answer temporal queries from a store's summary snapshots.

    Every engine registers per-instance children in the process-global
    metrics registry (label ``engine=<n>``).  While observability is
    armed, snapshot-cache hits and misses are counted on every
    ``_index`` resolution and each query additionally records its wall
    time in ``repro_query_seconds`` and its estimated row cost
    (:meth:`_GroupIndex.cost_rows`) in ``repro_query_cost_rows_total``,
    the accounting a cost-aware scheduler needs.  When disarmed the
    warm path pays exactly one global read — no locks, no clock calls
    (the ``metrics_disabled_overhead`` gate in
    ``benchmarks/bench_service.py``).  The same numbers are read back
    by :meth:`counters` for the HTTP ``/stats`` document.
    """

    def __init__(self, store: SessionStore) -> None:
        self._store = store
        self._cache: Dict[Key, Tuple[int, SnapshotIndex]] = {}
        engine = str(next(_ENGINE_IDS))
        self._hits = _metrics.counter(
            "repro_query_cache_hits_total",
            "Snapshot-cache hits (index reused at the same generation).",
            engine=engine,
        )
        self._misses = _metrics.counter(
            "repro_query_cache_misses_total",
            "Snapshot-cache misses (index rebuilt from snapshot columns).",
            engine=engine,
        )
        self._queries = _metrics.counter(
            "repro_queries_total",
            "Queries answered while observability was armed.",
            engine=engine,
        )
        self._cost_rows = _metrics.counter(
            "repro_query_cost_rows_total",
            "Estimated snapshot rows touched by cost-accounted queries.",
            engine=engine,
        )
        self._latency = _metrics.histogram(
            "repro_query_seconds",
            "Query wall time (value_at / range_agg / window).",
            engine=engine,
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def value_at(
        self, key: Key, t: int, group: Optional[Sequence[Any]] = None
    ) -> Optional[Tuple[float, ...]]:
        """Aggregate values at chronon ``t``, or ``None`` in a gap."""
        index = self._index(key).resolve(group)
        if not _metrics.armed:  # one attribute read on the hot path
            return index.value_at(int(t))
        t0 = perf_counter()
        result = index.value_at(int(t))
        self._account(1, perf_counter() - t0)
        return result

    def range_agg(
        self,
        key: Key,
        t1: int,
        t2: int,
        fn: str = "avg",
        group: Optional[Sequence[Any]] = None,
    ) -> Optional[Tuple[float, ...]]:
        """Range aggregate over ``[t1, t2]`` (inclusive chronons).

        Returns one float per aggregate dimension, or ``None`` when the
        range lies entirely in temporal gaps.  ``fn`` is one of
        :data:`RANGE_FUNCTIONS`; gaps inside the range simply contribute
        nothing (the aggregate is over the covered chronons).
        """
        if fn not in RANGE_FUNCTIONS:
            raise ServiceError(
                f"fn must be one of {RANGE_FUNCTIONS}, got {fn!r}"
            )
        t1, t2 = int(t1), int(t2)
        if t2 < t1:
            raise ServiceError(f"empty range: t2={t2} precedes t1={t1}")
        index = self._index(key).resolve(group)
        if not _metrics.armed:  # one attribute read on the hot path
            return index.range_agg(t1, t2, fn)
        t0 = perf_counter()
        result = index.range_agg(t1, t2, fn)
        self._account(index.cost_rows(t1, t2), perf_counter() - t0)
        return result

    def window(
        self,
        key: Key,
        t1: int,
        t2: int,
        stride: int,
        fn: str = "avg",
        group: Optional[Sequence[Any]] = None,
    ) -> List[WindowBucket]:
        """Fixed-stride sweep of range aggregates across ``[t1, t2]``.

        Buckets are ``[t, t + stride - 1]`` clipped to ``t2``; each bucket
        is one :meth:`range_agg` answer (``None`` values inside gaps).
        """
        if stride < 1:
            raise ServiceError(f"stride must be at least 1, got {stride}")
        if fn not in RANGE_FUNCTIONS:
            raise ServiceError(
                f"fn must be one of {RANGE_FUNCTIONS}, got {fn!r}"
            )
        t1, t2 = int(t1), int(t2)
        if t2 < t1:
            raise ServiceError(f"empty range: t2={t2} precedes t1={t1}")
        index = self._index(key).resolve(group)
        armed = _metrics.armed
        t0 = perf_counter() if armed else 0.0
        buckets: List[WindowBucket] = []
        start = t1
        while start <= t2:
            end = min(start + stride - 1, t2)
            buckets.append(
                WindowBucket(start, end, index.range_agg(start, end, fn))
            )
            start += stride
        if armed:
            self._account(index.cost_rows(t1, t2), perf_counter() - t0)
        return buckets

    def groups(self, key: Key) -> List[Tuple[Any, ...]]:
        """The aggregation groups served under ``key``."""
        return self._index(key).groups

    # ------------------------------------------------------------------
    # Snapshot cache
    # ------------------------------------------------------------------
    def _index(self, key: Key) -> SnapshotIndex:
        generation = self._store.generation(key)
        cached = self._cache.get(key)
        if cached is not None and cached[0] == generation:
            if _metrics.armed:  # keep the disarmed hot path lock-free
                self._hits.inc()
            return cached[1]
        # Cache miss: consume the store's snapshot columns — the live part
        # is the session's delta-patched, generation-cached snapshot, so a
        # cold read after k pushes costs O(k + summary) instead of
        # O(live heap), and repeated reads at one generation are free.
        if _metrics.armed:
            self._misses.inc()
        index = SnapshotIndex.from_columns(
            self._store.snapshot_columns(key)
        )
        self._cache[key] = (generation, index)
        return index

    def _account(self, cost_rows: int, seconds: float) -> None:
        """Record one armed query: count, estimated row cost, latency."""
        self._queries.inc()
        self._cost_rows.inc(cost_rows)
        self._latency.observe(seconds)

    def cache_info(self) -> Dict[Key, int]:
        """Cached generation per key (monitoring/test hook)."""
        return {key: gen for key, (gen, _) in self._cache.items()}

    def counters(self) -> Dict[str, int]:
        """The engine's registry-backed counters (the ``/stats`` view).

        All four accumulate only while observability is armed (the
        default) — the disarmed warm path is lock-free.  The
        ``cost_rows``/``queries`` ratio is the mean estimated rows per
        query — the direction-2 scheduling signal.
        """
        return {
            "cache_hits": int(self._hits.value),
            "cache_misses": int(self._misses.value),
            "queries": int(self._queries.value),
            "cost_rows": int(self._cost_rows.value),
        }


__all__ = [
    "QueryEngine",
    "RANGE_FUNCTIONS",
    "SnapshotIndex",
    "WindowBucket",
]
