"""Keyed registry of live compression sessions with freezing eviction.

A serving deployment holds one :class:`~repro.api.session.Compressor` per
stream key (a sensor id, a tenant, a metric name) and feeds each key's
segments as they arrive.  :class:`SessionStore` is that registry:

* ``store.push(key, segment_or_chunk)`` creates the key's session on first
  touch and feeds it (chunks go through the session's staged bulk-insert
  fast path);
* an :class:`LRUTTLEviction` policy bounds the number of live sessions and
  their idle time — but eviction **finalizes** a session into a *frozen
  summary* instead of dropping it, so every tuple ever pushed stays
  queryable.  A key whose session was frozen simply starts a new session
  epoch on its next push; snapshots concatenate the frozen epochs with the
  live summary in arrival order;
* per-store counters (:class:`StoreStats`) expose live sessions, frozen
  summaries, pushed tuples and evictions for monitoring;
* with ``data_dir=`` the store is **durable**
  (:mod:`repro.service.durability`): every acknowledged push is appended
  to a per-key write-ahead log, frozen epochs are *demoted* to
  mmap-backed checkpoint files instead of staying resident, and
  construction recovers whatever a previous process left on disk —
  serving snapshots bit-identical to the uncrashed process.

The store tracks a *generation* per key — bumped by every push and every
eviction — which the :class:`~repro.service.query.QueryEngine` uses to
cache query-ready snapshot indexes: repeated queries between pushes cost
zero re-finalization.

Thread safety: all mutating operations take an internal lock, so the store
can sit directly behind the threaded HTTP front end
(:mod:`repro.service.http`).
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Protocol,
    Set,
    Tuple,
    Union,
)

from ..core.kernels import SnapshotColumns
from ..core.merge import AggregateSegment
from ..api.plan import Budget, ExecutionPolicy
from ..api.result import Result
from ..api.session import Compressor
from ..obs import metrics as _metrics
from ..obs.tracing import span
from ..storage.wal import iter_wal_frames
from ..util.deadline import current_deadline
from .durability import Durability, DurabilityError, FrozenEpoch, PushToken
from .wire import encode_result, encode_segments

#: Stream keys are ordinary hashable identifiers (strings in the HTTP
#: front end, but any hashable works in process).
Key = Any

#: Checkpoint-size floor used by the ``wal_compact_factor`` trigger for
#: keys that have never checkpointed (so tiny fresh keys do not compact
#: on their first few pushes).
WAL_COMPACT_FLOOR_BYTES = 4096

#: Default byte budget of the in-memory resync journal — the window of
#: recent replicated events a briefly-disconnected standby can replay
#: instead of being re-seeded from scratch (:meth:`SessionStore.resync`).
DEFAULT_RESYNC_JOURNAL_BYTES = 16 * 1024 * 1024

#: Fixed per-entry bookkeeping charge in the journal's byte accounting
#: (tuple + deque slot + small metadata), on top of the payload bytes.
_JOURNAL_ENTRY_OVERHEAD = 64


class ServiceError(ValueError):
    """An invalid serving-layer request (unknown key, bad query, ...)."""


class ReplicationError(ServiceError):
    """A push could not reach its replication quorum.

    Raised (and mapped to HTTP 503 ``replication_quorum``) when a store
    built with ``sync_replicas=k`` cannot collect ``k`` standby
    acknowledgements for a push.  The write is **fully rolled back** —
    memory untouched, the WAL frame truncated back off the log — so the
    push is safe to retry verbatim once enough standbys are reachable.
    The consumed sequence number is recorded as *aborted*: a standby
    that applied it before the abort has diverged and is refused at
    :meth:`SessionStore.resync` instead of silently rejoining.
    """


#: Sentinel sequence number on catch-up frames: the standby applies the
#: frame but must **not** advance its resume cursor — only the explicit
#: end-of-catch-up marker (:meth:`ReplicationSink.on_catch_up`) carries
#: the real frontier.  A catch-up severed mid-stream therefore leaves
#: the standby reporting no progress (and a seeding taint), never a
#: frontier it does not actually hold.
CATCH_UP_SEQ = -1


class ReplicationSink(Protocol):
    """What the store needs from a replication target (duck-typed).

    The cluster tier's :class:`repro.cluster.replica.ReplicationLink`
    implements this over a socket; tests implement it in-process.  The
    contract: the ``on_*`` hooks are called under the store's lock
    in apply order and **must not raise** — a sink that loses its peer
    sets ``connected = False`` and returns (replication lag then grows
    until the operator re-attaches); ``acked_seq`` is the highest
    replication sequence number the peer has acknowledged applying.
    """

    connected: bool
    acked_seq: int

    def on_push(self, key: "Key", payload: bytes, seq: int) -> None:
        """One acknowledged push: ``payload`` is the chunk's ``PTAS``
        bytes — byte-identical to the primary's WAL frame."""

    def on_freeze(self, key: "Key", seq: int) -> None:
        """The key's live session froze; the standby finalizes its own
        live session at the same point (finalize is deterministic)."""

    def on_frozen(self, key: "Key", payload: bytes, seq: int) -> None:
        """Catch-up only: a pre-existing frozen epoch as ``PTAR`` bytes,
        installed verbatim on the standby without replaying its pushes."""

    def on_catch_up(self, seq: int) -> None:
        """Catch-up only: the end-of-stream marker.  Every preceding
        catch-up frame carried :data:`CATCH_UP_SEQ`; only now may the
        standby advance its resume cursor to ``seq`` (the frontier)."""


@dataclass(frozen=True)
class StoreStats:
    """Point-in-time counters of a :class:`SessionStore`.

    ``durable`` says whether the store was built with a ``data_dir``;
    ``degraded`` whether it is currently in memory-only degraded mode
    (disk faults exceeded the ``degrade_after`` streak and the periodic
    re-probe has not yet re-attached the WAL); ``disk_errors`` counts
    every durability-tier fault ever observed, monotonically.

    The replication fields describe the cluster tier
    (:mod:`repro.cluster.replica`): ``role`` is ``"primary"`` or
    ``"standby"``, ``replicas`` counts currently connected sinks,
    ``last_acked_generation`` is the replication frontier — the highest
    sequence number every connected sink has acknowledged (``-1`` before
    anything was acked) — and ``replication_lag`` is how many replicated
    events (pushes and freezes) the slowest connected sink still trails
    by.  With no connected replicas the lag is reported as 0.
    ``sinks`` breaks the same picture down per registered sink
    (connected or not): address, connection state, acknowledged
    sequence number and individual lag.
    """

    live_sessions: int
    frozen_summaries: int
    pushed_segments: int
    evictions: int
    durable: bool = False
    degraded: bool = False
    disk_errors: int = 0
    role: str = "primary"
    replicas: int = 0
    replication_lag: int = 0
    last_acked_generation: int = -1
    sinks: Tuple[Dict[str, Any], ...] = ()

    def as_dict(self) -> Dict[str, Any]:
        """The stats as a plain mapping (the HTTP ``/stats`` shape)."""
        return {
            "live_sessions": self.live_sessions,
            "frozen_summaries": self.frozen_summaries,
            "pushed_segments": self.pushed_segments,
            "evictions": self.evictions,
            "durable": int(self.durable),
            "degraded": int(self.degraded),
            "disk_errors": self.disk_errors,
            "role": self.role,
            "replicas": self.replicas,
            "replication_lag": self.replication_lag,
            "last_acked_generation": self.last_acked_generation,
            "sinks": [dict(entry) for entry in self.sinks],
        }


class LRUTTLEviction:
    """Least-recently-used + time-to-live eviction policy.

    ``max_sessions`` bounds the number of *live* sessions (frozen summaries
    are cheap — just the reduced segments — and are not counted);
    ``ttl`` ages out sessions idle for longer than that many seconds.
    Either knob may be ``None`` to disable it.  The policy only *selects*
    keys; the store performs the freezing, so a custom policy is just an
    object with this ``select`` signature.
    """

    def __init__(
        self,
        max_sessions: Optional[int] = None,
        ttl: Optional[float] = None,
    ) -> None:
        if max_sessions is not None and max_sessions < 1:
            raise ServiceError(
                f"max_sessions must be at least 1, got {max_sessions}"
            )
        if ttl is not None and ttl <= 0:
            raise ServiceError(f"ttl must be positive, got {ttl}")
        self.max_sessions = max_sessions
        self.ttl = ttl

    def select(
        self, now: float, last_access: "Mapping[Key, float]"
    ) -> List[Key]:
        """Keys to evict, given live keys in least-recently-used order."""
        victims: List[Key] = []
        if self.ttl is not None:
            victims.extend(
                key
                for key, touched in last_access.items()
                if now - touched > self.ttl
            )
        if self.max_sessions is not None:
            over = len(last_access) - len(victims) - self.max_sessions
            if over > 0:
                chosen = set(victims)
                for key in last_access:  # oldest first
                    if over <= 0:
                        break
                    if key not in chosen:
                        victims.append(key)
                        chosen.add(key)
                        over -= 1
        return victims


@dataclass
class _KeyState:
    """Everything the store holds for one stream key."""

    session: Optional[Compressor] = None
    frozen: List[FrozenEpoch] = field(default_factory=list)
    #: Index of the current (or next) live epoch; bumped on every freeze.
    #: In durable mode this names the key's WAL / checkpoint files.
    epoch: int = 0
    generation: int = 0
    pushed: int = 0
    last_access: float = 0.0
    #: Concatenated column form of the frozen epochs, built lazily and
    #: invalidated whenever a new epoch freezes.  Frozen summaries never
    #: change, so this is computed once per eviction, not per query.
    frozen_columns: Optional[SnapshotColumns] = None
    #: Consecutive durable-write failures for this key alone; at the
    #: ``degrade_after`` threshold (or immediately on a torn WAL tail)
    #: the store rotates the key's epoch so a single poisoned segment
    #: file cannot wedge the key forever.
    disk_streak: int = 0
    #: Set when a push was acknowledged without reaching the WAL
    #: (degraded mode); re-attach demotes dirty keys so disk catches
    #: back up with memory.
    dirty: bool = False


#: Distinguishes store instances in the shared metrics registry.
_STORE_IDS = itertools.count()


class SessionStore:
    """A keyed registry of live :class:`Compressor` sessions.

    Parameters
    ----------
    budget:
        Default reduction budget for new sessions; alternatively pass one
        of ``size`` / ``max_error``.  Ignored for keys handled by
        ``session_factory``.
    policy:
        Execution knobs shared by every session (backend, delta, weights);
        ``workers`` must stay ``None`` as for any :class:`Compressor`.
    eviction:
        An eviction policy object (``select(now, last_access) -> keys``);
        defaults to :class:`LRUTTLEviction` built from ``max_sessions`` /
        ``ttl``.  Eviction runs after every push.
    session_factory:
        Optional ``key -> Compressor`` hook for per-key budgets or
        policies; when given, ``budget``/``size``/``max_error`` become the
        fallback and may be omitted entirely.
    clock:
        Monotonic time source (injectable for tests).
    data_dir:
        Enables the durability tier (:mod:`repro.service.durability`):
        every acknowledged push is appended to a per-key write-ahead log
        under this directory, frozen epochs are *demoted* to mmap-backed
        checkpoint files instead of staying in RAM, and construction
        **recovers** whatever a previous process left there — the
        recovered store serves snapshots bit-identical to the uncrashed
        one.  Durable stores require non-empty string keys (the key names
        a directory).
    fsync_every:
        WAL fsync cadence in pushes (durable mode only).  ``1`` (default)
        makes every acknowledged push durable; ``n`` batches fsyncs and
        risks the last ``< n`` pushes on power loss; ``0`` leaves
        flushing to the OS.
    checkpoint_every:
        Freeze-and-demote the live epoch after this many pushed tuples
        (durable mode only).  Deterministic in the input, so crash and
        no-crash runs place epoch boundaries identically; bounds WAL
        replay length at recovery.  ``None`` disables the trigger.
    degrade_after:
        Consecutive durability faults before the store gives up on the
        disk and enters **degraded** (memory-only) mode: pushes keep
        being acknowledged but are no longer logged, ``/healthz`` and
        :meth:`stats` report ``degraded``, and the store periodically
        re-probes the data directory.  The same threshold applies
        per-key: a key whose own writes keep failing has its epoch
        rotated onto a fresh segment file.
    reprobe_every:
        While degraded, re-probe the data directory every this many
        acknowledged pushes and re-attach (demoting every key that
        accumulated memory-only state) as soon as a probe succeeds.
        ``0`` disables automatic re-probing; :meth:`reprobe` always
        works manually.
    wal_compact_factor:
        WAL compaction for long-lived live epochs (durable mode only):
        after a durable push, if the key's live WAL has grown past this
        factor times the key's newest checkpoint size (with a small
        floor for keys that have never checkpointed), the live epoch is
        frozen-and-demoted — checkpoint-then-truncate — so WAL replay at
        recovery *and standby catch-up* stay bounded even for keys that
        never hit ``checkpoint_every`` or the eviction policy.  ``None``
        (default) disables the trigger.
    sync_replicas:
        Replication quorum (cluster tier).  ``0`` (default) keeps
        replication asynchronous: pushes are acknowledged locally and
        the lag metric shows how far standbys trail.  ``k > 0`` makes a
        push **hold its acknowledgement** until ``k`` of the registered
        sinks acked the push's sequence number; a push that cannot
        reach quorum is fully rolled back and raises
        :class:`ReplicationError` (HTTP 503 ``replication_quorum``) —
        memory, WAL and standby-visible history never diverge.
    resync_journal_bytes:
        Byte budget of the in-memory journal of recent replicated
        events (default 16 MiB).  A sink that disconnects and returns
        within the window is caught up by replaying only the gap
        (:meth:`resync`); once trimmed past a sink's last-acked
        sequence number, that sink must be re-seeded from scratch.
    """

    def __init__(
        self,
        budget: Optional[Budget] = None,
        *,
        size: Optional[int] = None,
        max_error: Optional[float] = None,
        policy: Optional[ExecutionPolicy] = None,
        eviction: Optional[LRUTTLEviction] = None,
        max_sessions: Optional[int] = None,
        ttl: Optional[float] = None,
        session_factory: Optional[Callable[[Key], Compressor]] = None,
        clock: Callable[[], float] = time.monotonic,
        data_dir: Optional[Union[str, Path]] = None,
        fsync_every: int = 1,
        checkpoint_every: Optional[int] = None,
        degrade_after: int = 3,
        reprobe_every: int = 8,
        wal_compact_factor: Optional[float] = None,
        sync_replicas: int = 0,
        resync_journal_bytes: int = DEFAULT_RESYNC_JOURNAL_BYTES,
    ) -> None:
        if eviction is not None and (
            max_sessions is not None or ttl is not None
        ):
            raise ServiceError(
                "pass either an eviction policy object or the "
                "max_sessions/ttl shorthands, not both"
            )
        self._policy = policy
        self._factory: Optional[Callable[[Key], Compressor]] = session_factory
        # With a factory, a default budget is optional (pure fallback);
        # without one it is required and validated eagerly — a bad store
        # config should fail at construction, not on the first push.
        self._default: Optional[Tuple[Any, Any, Any]] = (
            (budget, size, max_error)
            if (budget, size, max_error) != (None, None, None)
            or session_factory is None
            else None
        )
        if session_factory is None:
            self._make_session()
        self._eviction = (
            eviction
            if eviction is not None
            else LRUTTLEviction(max_sessions=max_sessions, ttl=ttl)
        )
        self._clock = clock
        self._states: "OrderedDict[Key, _KeyState]" = OrderedDict()
        self._lock = threading.RLock()
        # Store-wide counters live in the process-global metrics registry
        # (label ``store=<n>`` distinguishes instances) — the single
        # source of truth that both ``GET /metrics`` and
        # :meth:`stats` / ``/stats`` read.
        store = str(next(_STORE_IDS))
        self._c_pushed = _metrics.counter(
            "repro_store_pushed_segments_total",
            "Segments acknowledged into live sessions, across keys.",
            store=store,
        )
        self._c_evictions = _metrics.counter(
            "repro_store_evictions_total",
            "Live sessions frozen (eviction, manual freeze, checkpoint).",
            store=store,
        )
        self._c_disk_errors = _metrics.counter(
            "repro_store_disk_errors_total",
            "Durability-tier faults observed (WAL, checkpoint, probe).",
            store=store,
        )
        self._g_degraded = _metrics.gauge(
            "repro_store_degraded",
            "1 while the store serves memory-only after disk faults.",
            store=store,
        )
        self._g_replicas = _metrics.gauge(
            "repro_store_replicas",
            "Currently connected replication sinks.",
            store=store,
        )
        self._g_replication_lag = _metrics.gauge(
            "repro_store_replication_lag",
            "Replicated events the slowest connected sink trails by.",
            store=store,
        )
        self._h_push = _metrics.histogram(
            "repro_store_push_seconds",
            "Store push wall time (WAL append through eviction sweep).",
            store=store,
        )
        self._h_quorum = _metrics.histogram(
            "repro_quorum_wait_seconds",
            "Time a push spent collecting its replication quorum.",
            store=store,
        )
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ServiceError(
                f"checkpoint_every must be at least 1, got {checkpoint_every}"
            )
        if checkpoint_every is not None and data_dir is None:
            raise ServiceError(
                "checkpoint_every requires durable mode (pass data_dir=)"
            )
        self._checkpoint_every = checkpoint_every
        if degrade_after < 1:
            raise ServiceError(
                f"degrade_after must be at least 1, got {degrade_after}"
            )
        if reprobe_every < 0:
            raise ServiceError(
                f"reprobe_every must be non-negative, got {reprobe_every}"
            )
        if wal_compact_factor is not None and wal_compact_factor <= 0:
            raise ServiceError(
                f"wal_compact_factor must be positive, got "
                f"{wal_compact_factor}"
            )
        if wal_compact_factor is not None and data_dir is None:
            raise ServiceError(
                "wal_compact_factor requires durable mode (pass data_dir=)"
            )
        self._wal_compact_factor = wal_compact_factor
        self._degrade_after = degrade_after
        self._reprobe_every = reprobe_every
        self._degraded = False
        self._error_streak = 0
        self._since_probe = 0
        #: Resident frozen epochs awaiting a checkpoint write that failed
        #: or was skipped while degraded: (key, epoch index, position in
        #: the key's frozen list).  Retried after every fully-durable
        #: push and at re-attach.
        self._pending_demote: List[Tuple[Key, int, int]] = []
        if sync_replicas < 0:
            raise ServiceError(
                f"sync_replicas must be non-negative, got {sync_replicas}"
            )
        if resync_journal_bytes < 1:
            raise ServiceError(
                f"resync_journal_bytes must be positive, got "
                f"{resync_journal_bytes}"
            )
        #: Replication (cluster tier): the store's serving role, the
        #: registered sinks, and the monotone sequence number stamped on
        #: every replicated event (push or freeze) in apply order.
        self.role: str = "primary"
        self.sync_replicas = sync_replicas
        self._sinks: List[ReplicationSink] = []
        self._replication_seq = 0
        #: Journal of recent committed replicated events,
        #: ``(seq, hook, key, payload)`` oldest first — what
        #: :meth:`resync` replays to a returning sink.  Trimmed to what
        #: every registered sink has acked, then to the byte budget.
        self._journal: Deque[Tuple[int, str, Key, Optional[bytes]]] = deque()
        self._journal_bytes = 0
        self._journal_cap = resync_journal_bytes
        #: Highest sequence number trimmed out of the journal: a sink
        #: whose ack frontier is below this can no longer resync
        #: incrementally.  Also the prune line for ``_aborted_seqs``.
        self._journal_floor = -1
        #: Sequence numbers consumed by pushes that were rolled back
        #: (quorum failures): a standby that applied one has diverged.
        self._aborted_seqs: Set[int] = set()
        self._durability: Optional[Durability] = None
        if data_dir is not None:
            self._durability = Durability(data_dir, fsync_every=fsync_every)
            self._recover()

    # ------------------------------------------------------------------
    # Feeding
    # ------------------------------------------------------------------
    def push(
        self,
        key: Key,
        segments: Union[AggregateSegment, Iterable[AggregateSegment]],
    ) -> int:
        """Feed one segment or a chunk into ``key``'s live session.

        Creates the session on first touch (or a fresh epoch if the key's
        previous session was frozen), then runs the eviction policy over
        the live sessions.  Returns the number of segments consumed.

        In durable mode the push is **atomic with respect to disk
        faults**: the chunk is encoded (validating it), appended to the
        key's write-ahead log as one frame *first*, and only then
        applied in memory — a disk fault raises
        :class:`~repro.service.durability.DurabilityError` with the
        in-memory state untouched (safe to retry), and a failed
        in-memory application truncates the frame back off the log, so
        memory and log never diverge.  After ``degrade_after``
        consecutive disk faults the store drops to **degraded**
        memory-only mode: pushes are acknowledged without logging until
        a periodic re-probe (every ``reprobe_every`` pushes, or a manual
        :meth:`reprobe`) re-attaches the data directory.
        """
        if not _metrics.enabled():  # one global read on the hot path
            return self._push(key, segments)
        t0 = perf_counter()
        try:
            return self._push(key, segments)
        finally:
            self._h_push.observe(perf_counter() - t0)

    def _push(
        self,
        key: Key,
        segments: Union[AggregateSegment, Iterable[AggregateSegment]],
    ) -> int:
        with self._lock:
            if self._durability is not None and (
                not isinstance(key, str) or not key
            ):
                raise ServiceError(
                    f"durable stores require non-empty string keys, "
                    f"got {key!r}"
                )
            state = self._states.get(key)
            created = state is None
            opened = created or state.session is None
            if opened:
                # Open the session *before* registering any state: a
                # failing session_factory must not leave a phantom key
                # behind (its snapshot would have nothing to serve).
                session = self._open_session(key)
                if state is None:
                    state = _KeyState()
                    self._states[key] = state
                state.session = session
            assert state.session is not None
            chunk: List[AggregateSegment] = (
                [segments]
                if isinstance(segments, AggregateSegment)
                else list(segments)
            )
            logging = self._durability is not None and not self._degraded
            replicating = bool(self._sinks)
            quorum = self.sync_replicas if replicating else 0
            token: Optional[PushToken] = None
            payload: Optional[bytes] = None
            if logging or replicating:
                payload = encode_segments(chunk)  # validates before any I/O
            if logging:
                assert self._durability is not None
                assert payload is not None
                try:
                    token = self._durability.log_push(
                        key, state.epoch, payload
                    )
                except DurabilityError:
                    # Not acknowledged, memory untouched — unregister a
                    # session this very call opened so the failed push
                    # leaves no phantom key behind.
                    self._note_disk_error(key, state)
                    if opened:
                        state.session = None
                        if created:
                            del self._states[key]
                    raise
            seq = 0
            if quorum > 0:
                # Quorum mode ships *before* the in-memory apply: if the
                # standbys cannot ack, everything rolls back — WAL frame
                # truncated, no session state, no journal entry — and
                # the client's 503 really means "nothing happened".
                assert payload is not None
                seq = self._next_seq()
                try:
                    self._await_quorum(key, payload, seq, quorum)
                except Exception:
                    self._mark_aborted(seq)
                    if token is not None:
                        assert self._durability is not None
                        try:
                            self._durability.rollback(token)
                        except DurabilityError:
                            self._note_disk_error(key, state)
                    if opened:
                        state.session = None
                        if created:
                            del self._states[key]
                    raise
            before = state.session.pushed
            try:
                state.session.push(chunk)
            except Exception:
                if quorum > 0:
                    # Standbys already applied this sequence number; the
                    # primary could not.  Record the divergence.
                    self._mark_aborted(seq)
                if token is not None:
                    assert self._durability is not None
                    try:
                        self._durability.rollback(token)
                    except DurabilityError:
                        # The writer marked itself broken; the next push
                        # for this key rotates its epoch.
                        self._note_disk_error(key, state)
                raise
            consumed = state.session.pushed - before
            state.pushed += consumed
            state.generation += 1
            state.last_access = self._clock()
            self._states.move_to_end(key)
            self._c_pushed.inc(consumed)
            if replicating:
                # The standby must see exactly the acknowledged pushes,
                # in order, before any freeze this same call might
                # trigger below.  Quorum mode shipped above and only
                # journals here; async mode stamps, fans out to the
                # connected sinks and journals in one step — sequence
                # numbers advance even while every sink is disconnected,
                # so a returning sink can replay the gap.
                assert payload is not None
                if quorum > 0:
                    self._journal_event("on_push", key, payload, seq)
                else:
                    self._replicate("on_push", key, payload)
            if token is not None:
                assert self._durability is not None
                try:
                    self._durability.commit()
                except DurabilityError:
                    # Appended and applied, so the push stays acked; the
                    # fsync fault only widens the power-loss window,
                    # which is what the error streak tracks.
                    self._note_disk_error(key, state)
                else:
                    self._error_streak = 0
                    state.disk_streak = 0
                    if self._pending_demote:
                        self._retry_pending_demotes()
            elif self._durability is not None:
                state.dirty = True  # acknowledged memory-only (degraded)
                self._since_probe += 1
                if (
                    self._reprobe_every
                    and self._since_probe >= self._reprobe_every
                ):
                    self._try_reattach()
            if (
                self._checkpoint_every is not None
                and state.session is not None
                and state.session.pushed >= self._checkpoint_every
            ):
                self._freeze_state(key, state)
            if (
                self._wal_compact_factor is not None
                and token is not None
                and state.session is not None
                and state.session.pushed > 0
                and not self._degraded
            ):
                self._maybe_compact(key, state)
            self._run_eviction()
            return consumed

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def snapshot(self, key: Key) -> Result:
        """Summary of everything ever pushed for ``key``, frozen + live.

        Frozen epochs come first in push order, followed by the live
        session's non-destructive :meth:`~Compressor.summary` snapshot;
        the statistics (error, sizes, merges) are summed across parts.
        Raises :class:`ServiceError` for an unknown key.
        """
        with self._lock:
            state = self._require(key)
            parts = [epoch.result() for epoch in state.frozen]
            if state.session is not None:
                parts.append(state.session.summary())
                state.last_access = self._clock()
                self._states.move_to_end(key)
            if len(parts) == 1:
                return parts[0]
            combined = Result(method=parts[0].method, backend=parts[0].backend)
            for part in parts:
                combined.segments.extend(part.segments)
                combined.error += part.error
                combined.size += part.size
                combined.input_size += part.input_size
                combined.max_heap_size = max(
                    combined.max_heap_size, part.max_heap_size
                )
                combined.merges += part.merges
            return combined

    def segments(self, key: Key) -> List[AggregateSegment]:
        """The combined snapshot's segments (materialised form)."""
        return self.snapshot(key).segments

    def snapshot_columns(self, key: Key) -> SnapshotColumns:
        """The combined snapshot in flat column form (the query fast path).

        Frozen epochs contribute a column image cached per eviction; the
        live part rides the session's delta-based, generation-cached
        :meth:`~repro.api.Compressor.summary_columns`.  Between pushes this
        is O(1); after ``k`` pushes it costs amortised O(k) plus the
        summary size — the serving-layer face of the delta snapshot path.
        """
        with self._lock, span("snapshot_delta"):
            state = self._require(key)
            parts: List[SnapshotColumns] = []
            if state.frozen:
                if state.frozen_columns is None:
                    # Demoted epochs contribute zero-copy views over their
                    # mmap'd checkpoints here; resident epochs a one-time
                    # column image of their segments.
                    state.frozen_columns = SnapshotColumns.concatenate(
                        [epoch.columns() for epoch in state.frozen]
                    )
                parts.append(state.frozen_columns)
            if state.session is not None:
                parts.append(state.session.summary_columns())
                state.last_access = self._clock()
                self._states.move_to_end(key)
            return SnapshotColumns.concatenate(parts)

    def generation(self, key: Key) -> int:
        """Cache-invalidation token: bumped by every push and eviction."""
        with self._lock:
            return self._require(key).generation

    def frozen(self, key: Key) -> List[Result]:
        """The frozen summaries of ``key``'s evicted epochs (oldest first).

        Materialises demoted epochs into full :class:`Result` objects —
        an introspection path; serving reads go through
        :meth:`snapshot_columns`, which keeps demoted epochs mmap-backed.
        """
        with self._lock:
            return [epoch.result() for epoch in self._require(key).frozen]

    def frozen_epochs(self, key: Key) -> List[FrozenEpoch]:
        """The frozen epochs themselves (resident or demoted), oldest first."""
        with self._lock:
            return list(self._require(key).frozen)

    def pushed(self, key: Key) -> int:
        """Total segments ever pushed for ``key`` (across epochs)."""
        with self._lock:
            return self._require(key).pushed

    def keys(self) -> List[Key]:
        """Every known key (live or frozen), least recently used first."""
        with self._lock:
            return list(self._states)

    def is_live(self, key: Key) -> bool:
        """Whether ``key`` currently holds a live (unfrozen) session."""
        with self._lock:
            state = self._states.get(key)
            return state is not None and state.session is not None

    def __contains__(self, key: Key) -> bool:
        with self._lock:
            return key in self._states

    def __len__(self) -> int:
        """Number of *live* sessions (what the LRU bound applies to)."""
        with self._lock:
            return sum(
                1 for state in self._states.values()
                if state.session is not None
            )

    def stats(self) -> StoreStats:
        """Current store-wide counters.

        The counters are read back from the metrics registry — the same
        children ``GET /metrics`` renders — so ``/stats`` and the
        Prometheus exposition can never disagree; the replication and
        degraded gauges are refreshed here on the way out.
        """
        with self._lock:
            connected = [sink for sink in self._sinks if sink.connected]
            acked = min(
                (sink.acked_seq for sink in connected), default=-1
            )
            lag = self._replication_seq - acked if connected else 0
            self._g_replicas.set(len(connected))
            self._g_replication_lag.set(lag)
            self._g_degraded.set(int(self._degraded))
            sinks = tuple(
                {
                    "address": str(
                        getattr(sink, "address", f"sink-{index}")
                    ),
                    "connected": int(sink.connected),
                    "acked_seq": sink.acked_seq,
                    "lag": self._replication_seq - sink.acked_seq,
                }
                for index, sink in enumerate(self._sinks)
            )
            return StoreStats(
                live_sessions=len(self),
                frozen_summaries=sum(
                    len(state.frozen) for state in self._states.values()
                ),
                pushed_segments=int(self._c_pushed.value),
                evictions=int(self._c_evictions.value),
                durable=self._durability is not None,
                degraded=self._degraded,
                disk_errors=int(self._c_disk_errors.value),
                role=self.role,
                replicas=len(connected),
                replication_lag=lag,
                last_acked_generation=acked,
                sinks=sinks,
            )

    @property
    def degraded(self) -> bool:
        """Whether the store is in memory-only degraded mode."""
        with self._lock:
            return self._degraded

    # ------------------------------------------------------------------
    # Eviction
    # ------------------------------------------------------------------
    def freeze(self, key: Key) -> Result:
        """Manually finalize ``key``'s live session into a frozen summary.

        The frozen-summary handoff: the session's end-of-input phase runs
        once, the result is retained for querying, and the key's next push
        opens a fresh epoch.  Returns the frozen summary.
        """
        with self._lock:
            state = self._require(key)
            if state.session is None:
                raise ServiceError(f"key {key!r} has no live session")
            return self._freeze_state(key, state)

    def evict_idle(self) -> List[Key]:
        """Run the eviction policy now (it also runs after every push)."""
        with self._lock:
            return self._run_eviction()

    def _run_eviction(self) -> List[Key]:
        live: "OrderedDict[Key, float]" = OrderedDict(
            (key, state.last_access)
            for key, state in self._states.items()
            if state.session is not None
        )
        victims = self._eviction.select(self._clock(), live)
        for key in victims:
            state = self._states.get(key)
            if state is not None and state.session is not None:
                self._freeze_state(key, state)
        return victims

    def _freeze_state(self, key: Key, state: _KeyState) -> Result:
        """Finalize the live session into a frozen epoch.

        In durable mode this is *demotion*: the finalized summary is
        written as an atomic checkpoint, the epoch's WAL is deleted, and
        only an mmap-backed :class:`FrozenEpoch` stays behind — the RAM
        copy is dropped, so eviction now bounds memory without bounding
        the number of queryable keys.  If the checkpoint write fails —
        or the store is degraded — the epoch stays resident and is
        queued for demotion (:attr:`_pending_demote`); freezing never
        loses state to a disk fault.
        """
        assert state.session is not None
        with span("freeze"):
            frozen = state.session.finalize()
        epoch: FrozenEpoch
        if self._durability is not None and not self._degraded:
            try:
                epoch = self._durability.demote(key, state.epoch, frozen)
            except DurabilityError:
                epoch = FrozenEpoch.from_result(frozen)
                self._pending_demote.append(
                    (key, state.epoch, len(state.frozen))
                )
                self._note_demote_error()
        elif self._durability is not None:
            epoch = FrozenEpoch.from_result(frozen)
            self._pending_demote.append((key, state.epoch, len(state.frozen)))
        else:
            epoch = FrozenEpoch.from_result(frozen)
        state.frozen.append(epoch)
        state.frozen_columns = None  # rebuilt lazily on the next read
        state.session = None
        state.epoch += 1
        state.generation += 1
        self._c_evictions.inc()
        # Freezes are replicated events: a primary that froze at push g
        # serves frozen-summary + fresh-session answers, which differ
        # from one uninterrupted session's — the standby must finalize
        # at exactly the same points to stay bit-identical.  Stamped and
        # journaled even while every sink is disconnected, so a
        # returning sink replays the freeze in order.
        if self._sinks:
            self._replicate("on_freeze", key)
        return frozen

    def _maybe_compact(self, key: Key, state: _KeyState) -> None:
        """Checkpoint-then-truncate a live epoch whose WAL outgrew its
        newest checkpoint by ``wal_compact_factor`` (bounding recovery
        replay and standby catch-up for long-lived keys)."""
        assert self._durability is not None
        assert self._wal_compact_factor is not None
        wal_bytes = self._durability.wal_size(key, state.epoch)
        reference = max(
            self._durability.latest_checkpoint_size(key),
            WAL_COMPACT_FLOOR_BYTES,
        )
        if wal_bytes > self._wal_compact_factor * reference:
            self._freeze_state(key, state)

    # ------------------------------------------------------------------
    # Replication (cluster tier)
    # ------------------------------------------------------------------
    def add_replication_sink(self, sink: ReplicationSink) -> None:
        """Register a sink without catch-up (it must already be in sync
        — an empty store, or a sink fed by :meth:`replicate_to`)."""
        with self._lock:
            if sink not in self._sinks:
                self._sinks.append(sink)

    def remove_replication_sink(self, sink: ReplicationSink) -> None:
        """Detach a sink; missing sinks are ignored."""
        with self._lock:
            try:
                self._sinks.remove(sink)
            except ValueError:
                pass

    def replicate_to(self, sink: ReplicationSink) -> None:
        """Atomically catch a sink up on the full history, then register.

        Under the store lock — so no push can interleave — every key's
        frozen epochs stream first (``on_frozen`` with the epoch's
        ``PTAR`` bytes, installed verbatim on the standby), then the
        live epoch's acknowledged pushes replay from its WAL frames
        (``on_push`` — the standby applies them through its own
        sessions, reproducing the live state bit-identically by the
        replay invariant).  A memory-only primary has no WAL to tail,
        so it must attach its standby before any live pushes exist;
        likewise a degraded durable primary holds acknowledged pushes
        the WAL never saw (``dirty`` keys) and cannot guarantee a
        faithful copy.  Both raise :class:`ServiceError`.
        """
        with self._lock:
            try:
                self._catch_up(sink)
            except ConnectionError as error:
                raise ServiceError(str(error)) from error
            sink.acked_seq = max(sink.acked_seq, self._replication_seq)
            if sink not in self._sinks:
                self._sinks.append(sink)

    def _catch_up(self, sink: ReplicationSink) -> None:
        """Stream the full history to ``sink`` (caller holds the lock).

        Every history frame carries :data:`CATCH_UP_SEQ` — the standby
        applies it without advancing its resume cursor — and the stream
        closes with an explicit :meth:`ReplicationSink.on_catch_up`
        marker carrying the real frontier.  Only that marker commits
        the cursor, so a catch-up severed mid-stream leaves the standby
        half-seeded *and saying so* (it reports no progress plus a
        seeding taint), never claiming a frontier it does not hold.
        Raises :class:`ConnectionError` if the sink drops mid-stream
        (retryable) and :class:`ServiceError` when the history itself
        cannot be streamed faithfully (memory-only or degraded primary
        with live pushes — permanent until fixed).
        """
        for key, state in self._states.items():
            for epoch in state.frozen:
                sink.on_frozen(
                    key, encode_result(epoch.result()), CATCH_UP_SEQ
                )
                if not sink.connected:
                    raise ConnectionError(
                        "replication sink disconnected during catch-up"
                    )
            if state.session is not None and state.session.pushed > 0:
                if self._durability is None or state.dirty:
                    raise ServiceError(
                        f"cannot catch a standby up on key {key!r}: "
                        f"its live pushes are not on a write-ahead "
                        f"log (memory-only or degraded primary); "
                        f"attach the standby before the first push "
                        f"or use a healthy durable primary"
                    )
                wal = self._durability.wal_path(key, state.epoch)
                for _, payload in iter_wal_frames(wal):
                    sink.on_push(key, payload, CATCH_UP_SEQ)
                    if not sink.connected:
                        raise ConnectionError(
                            "replication sink disconnected during "
                            "catch-up"
                        )
        sink.on_catch_up(self._replication_seq)
        if not sink.connected:
            raise ConnectionError(
                "replication sink disconnected before acknowledging "
                "the end of catch-up"
            )

    def resync(
        self,
        sink: ReplicationSink,
        applied_seq: int,
        adopt: Optional[Callable[[], None]] = None,
    ) -> None:
        """Catch a *returning* sink up from the resync journal.

        ``applied_seq`` is the standby's self-reported frontier (from
        its ``HELLO`` answer): every journaled event above it replays
        with its **original** sequence number, then the sink is
        registered — all under the store lock, so no concurrent push
        can interleave a newer event before the gap is closed.  The
        optional ``adopt`` callback runs under that same lock *after*
        the viability checks and is where a
        :class:`~repro.cluster.replica.ReplicationLink` installs its
        freshly-dialed connection.

        ``applied_seq == -1`` means the standby is empty (e.g. it was
        restarted): the full history streams via catch-up instead.

        Raises :class:`ServiceError` — permanently, the standby must be
        re-seeded from scratch — when the standby is ahead of this
        primary, applied a sequence number this primary aborted
        (quorum-failure divergence), or fell behind the journal's
        trimmed window.  Raises :class:`ConnectionError` (retryable)
        when the sink drops mid-replay.
        """
        with self._lock:
            if applied_seq > self._replication_seq:
                raise ServiceError(
                    f"standby reports applied sequence {applied_seq}, "
                    f"ahead of this primary's frontier "
                    f"{self._replication_seq}: it was fed by a "
                    f"different primary and cannot rejoin"
                )
            if applied_seq in self._aborted_seqs:
                raise ServiceError(
                    f"standby applied sequence {applied_seq}, which "
                    f"this primary aborted after a quorum failure: the "
                    f"replica has diverged and must be re-seeded from "
                    f"scratch"
                )
            if applied_seq >= 0 and applied_seq < self._journal_floor:
                raise ServiceError(
                    f"resync window exhausted: the journal was trimmed "
                    f"through sequence {self._journal_floor} but the "
                    f"standby only applied {applied_seq}; re-seed it "
                    f"from scratch"
                )
            if adopt is not None:
                adopt()
            if applied_seq < 0:
                self._catch_up(sink)
            else:
                for seq, hook, key, payload in list(self._journal):
                    if seq <= applied_seq:
                        continue
                    try:
                        if hook == "on_push":
                            assert payload is not None
                            sink.on_push(key, payload, seq)
                        else:
                            sink.on_freeze(key, seq)
                    except Exception:  # noqa: BLE001 — sink contract
                        sink.connected = False
                    if not sink.connected:
                        raise ConnectionError(
                            "replication sink disconnected during resync"
                        )
            sink.acked_seq = max(sink.acked_seq, self._replication_seq)
            if sink not in self._sinks:
                self._sinks.append(sink)

    def install_frozen(self, key: Key, result: Result) -> None:
        """Install a finalized summary as the key's next frozen epoch.

        The standby-side counterpart of catch-up ``on_frozen`` frames:
        the epoch is installed verbatim — the merge policy is **not**
        re-run — exactly as if this store had frozen it itself (durable
        stores demote it to a checkpoint).  Only valid while the key has
        no live session; pushes for the key must arrive after every
        frozen epoch is installed, mirroring the primary's history.
        """
        with self._lock:
            if self._durability is not None and (
                not isinstance(key, str) or not key
            ):
                raise ServiceError(
                    f"durable stores require non-empty string keys, "
                    f"got {key!r}"
                )
            state = self._states.get(key)
            if state is None:
                state = _KeyState()
                self._states[key] = state
            if state.session is not None:
                raise ServiceError(
                    f"key {key!r} already has a live session; frozen "
                    f"epochs must be installed before live pushes"
                )
            epoch: FrozenEpoch
            if self._durability is not None and not self._degraded:
                try:
                    epoch = self._durability.demote(
                        key, state.epoch, result
                    )
                except DurabilityError:
                    epoch = FrozenEpoch.from_result(result)
                    self._pending_demote.append(
                        (key, state.epoch, len(state.frozen))
                    )
                    self._note_demote_error()
            elif self._durability is not None:
                epoch = FrozenEpoch.from_result(result)
                self._pending_demote.append(
                    (key, state.epoch, len(state.frozen))
                )
            else:
                epoch = FrozenEpoch.from_result(result)
            state.frozen.append(epoch)
            state.frozen_columns = None
            state.epoch += 1
            state.generation += 1
            state.pushed += result.input_size
            state.last_access = self._clock()
            self._states.move_to_end(key)
            self._c_pushed.inc(result.input_size)
            self._c_evictions.inc()

    def _replicate(
        self, hook: str, key: Key, payload: Optional[bytes] = None
    ) -> None:
        """Stamp the next sequence number, fan one event out, journal it.

        Sinks must not raise (the :class:`ReplicationSink` contract); one
        that does anyway is disconnected rather than failing the push.
        """
        seq = self._next_seq()
        self._fan_out(hook, key, payload, seq)
        self._journal_event(hook, key, payload, seq)

    def _next_seq(self) -> int:
        self._replication_seq += 1
        return self._replication_seq

    def _fan_out(
        self, hook: str, key: Key, payload: Optional[bytes], seq: int
    ) -> None:
        """Ship one event to every connected sink (never raises)."""
        with span("replicate_ack"):
            for sink in self._sinks:
                if not sink.connected:
                    continue
                try:
                    if hook == "on_push":
                        assert payload is not None
                        sink.on_push(key, payload, seq)
                    else:
                        sink.on_freeze(key, seq)
                except Exception:  # noqa: BLE001 — protect the push path
                    sink.connected = False

    def _await_quorum(
        self, key: Key, payload: bytes, seq: int, quorum: int
    ) -> None:
        """Ship a push and demand ``quorum`` acknowledgements of it.

        The link sinks are synchronous (their ``on_push`` returns only
        after the standby's ack, bounded by the transport read timeout
        — which the links themselves clamp to the ambient deadline's
        remaining budget), so "waiting" is just fanning out and
        counting.  The ambient request deadline
        (:func:`~repro.util.deadline.current_deadline`) is re-checked
        between sinks: once it expires, no further standby sees the
        sequence number and the push fails over to the rollback path
        instead of serially eating a full read timeout per stalled
        sink while every other store operation waits on the lock.
        """
        if len(self._sinks) < quorum:
            raise ReplicationError(
                f"sync_replicas={quorum} but only {len(self._sinks)} "
                f"replication sinks are attached; the push was not "
                f"applied"
            )
        deadline = current_deadline()
        t0 = perf_counter()
        try:
            with span("replicate_ack"):
                for sink in self._sinks:
                    if deadline is not None:
                        deadline.check("replication quorum")
                    if not sink.connected:
                        continue
                    try:
                        sink.on_push(key, payload, seq)
                    except Exception:  # noqa: BLE001 — sink contract
                        sink.connected = False
        finally:
            self._h_quorum.observe(perf_counter() - t0)
        acked = sum(
            1
            for sink in self._sinks
            if sink.connected and sink.acked_seq >= seq
        )
        if acked < quorum:
            raise ReplicationError(
                f"push to key {key!r} collected {acked} of the "
                f"{quorum} synchronous replica acknowledgements it "
                f"needs (sequence {seq}); the write was rolled back "
                f"and is safe to retry"
            )

    def _mark_aborted(self, seq: int) -> None:
        """Record a rolled-back sequence number and cut off any sink
        that already applied it (it has diverged; :meth:`resync` will
        refuse it by this very record)."""
        self._aborted_seqs.add(seq)
        for sink in self._sinks:
            if sink.connected and sink.acked_seq >= seq:
                sink.connected = False

    def _journal_event(
        self, hook: str, key: Key, payload: Optional[bytes], seq: int
    ) -> None:
        """Append one committed event to the resync journal and trim."""
        self._journal.append((seq, hook, key, payload))
        self._journal_bytes += (
            len(payload) if payload is not None else 0
        ) + _JOURNAL_ENTRY_OVERHEAD
        # Drop what every registered sink has already acknowledged.
        horizon = min(
            (sink.acked_seq for sink in self._sinks),
            default=self._replication_seq,
        )
        while self._journal and self._journal[0][0] <= horizon:
            self._drop_oldest()
        # Byte budget: sacrifice the slowest sinks' resync window (they
        # fall back to a full re-seed) rather than growing unboundedly.
        # The newest entry always survives, even oversized.
        while self._journal_bytes > self._journal_cap and len(self._journal) > 1:
            self._drop_oldest()

    def _drop_oldest(self) -> None:
        seq, _, _, payload = self._journal.popleft()
        self._journal_bytes -= (
            len(payload) if payload is not None else 0
        ) + _JOURNAL_ENTRY_OVERHEAD
        self._journal_floor = seq
        if self._aborted_seqs:
            self._aborted_seqs = {
                aborted for aborted in self._aborted_seqs if aborted > seq
            }

    # ------------------------------------------------------------------
    # Degraded mode
    # ------------------------------------------------------------------
    def reprobe(self) -> bool:
        """Probe the data directory now; re-attach if it accepts writes.

        While degraded the store also calls this automatically every
        ``reprobe_every`` acknowledged pushes.  Re-attaching demotes
        every key that accumulated memory-only state (so disk is again
        consistent with memory) and retries pending demotions.  Returns
        ``True`` when the store is durable and attached after the call;
        always ``False`` for a memory-only store.
        """
        with self._lock:
            if self._durability is None:
                return False
            if not self._degraded:
                return True
            return self._try_reattach()

    def _note_disk_error(self, key: Key, state: _KeyState) -> None:
        """Record a failed durable write for ``key`` and react.

        A store-wide streak of ``degrade_after`` consecutive faults
        enters degraded mode; a per-key streak (or a torn WAL tail,
        immediately) rotates just that key's epoch so one poisoned
        segment file cannot wedge the key while the rest of the store
        stays healthy.
        """
        assert self._durability is not None
        self._c_disk_errors.inc()
        self._error_streak += 1
        state.disk_streak += 1
        if self._error_streak >= self._degrade_after:
            self._enter_degraded()
            return
        if state.disk_streak >= self._degrade_after or (
            isinstance(key, str)
            and self._durability.writer_broken(key, state.epoch)
        ):
            state.disk_streak = 0
            self._rotate_epoch(key, state)

    def _note_demote_error(self) -> None:
        """A checkpoint write failed (no key rotation — the freeze that
        triggered it already rotated the epoch)."""
        self._c_disk_errors.inc()
        self._error_streak += 1
        if self._error_streak >= self._degrade_after:
            self._enter_degraded()

    def _rotate_epoch(self, key: Key, state: _KeyState) -> None:
        """Abandon the key's current WAL epoch for a fresh segment file.

        A session with data is frozen (falling back to a resident epoch
        if its checkpoint fails too); an empty one just skips to the
        next epoch index.
        """
        if state.session is not None and state.session.pushed > 0:
            self._freeze_state(key, state)
        else:
            state.epoch += 1
            state.generation += 1

    def _enter_degraded(self) -> None:
        """Give up on the disk: close writers, serve from memory only."""
        if self._degraded:
            return
        assert self._durability is not None
        self._degraded = True
        self._g_degraded.set(1)
        self._error_streak = 0
        self._since_probe = 0
        self._durability.suspend()

    def _try_reattach(self) -> bool:
        """One degraded-mode probe; on success, resynchronise the disk.

        Every dirty key (acknowledged memory-only pushes) is demoted —
        its full state checkpointed — so recovery from the re-attached
        directory is again bit-identical to memory; then pending
        demotions are retried.  A fault anywhere along the way re-enters
        degraded mode and the remaining work stays queued.
        """
        assert self._durability is not None
        self._since_probe = 0
        try:
            self._durability.probe()
        except DurabilityError:
            self._c_disk_errors.inc()
            return False
        self._degraded = False
        self._g_degraded.set(0)
        self._error_streak = 0
        for key, state in list(self._states.items()):
            if self._degraded:
                return False  # a demotion fault sent us straight back
            if not state.dirty:
                continue
            if state.session is not None and state.session.pushed > 0:
                self._freeze_state(key, state)
            state.dirty = False
        self._retry_pending_demotes()
        return not self._degraded

    def _retry_pending_demotes(self) -> None:
        """Checkpoint resident frozen epochs that are still queued."""
        assert self._durability is not None
        pending, self._pending_demote = self._pending_demote, []
        kept: List[Tuple[Key, int, int]] = []
        for index, entry in enumerate(pending):
            if self._degraded:
                kept.extend(pending[index:])
                break
            key, epoch_index, position = entry
            state = self._states.get(key)
            if state is None or position >= len(state.frozen):
                continue
            epoch = state.frozen[position]
            if not epoch.resident:
                continue
            try:
                demoted = self._durability.demote(
                    key, epoch_index, epoch.result()
                )
            except DurabilityError:
                kept.append(entry)
                self._note_demote_error()
            else:
                state.frozen[position] = demoted
                state.frozen_columns = None
        self._pending_demote = kept + self._pending_demote

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Flush and close the durability tier's open WAL files.

        Safe on a non-durable store (no-op).  The store stays usable for
        reads; the next durable push reopens its key's WAL.
        """
        with self._lock:
            if self._durability is not None:
                self._durability.close()

    def _recover(self) -> None:
        """Rebuild every key a previous process left under ``data_dir``.

        For each key: checkpointed epochs come back as mmap-backed
        :class:`FrozenEpoch` objects; epochs whose demotion was
        interrupted (WAL without checkpoint, not the newest) are replayed
        and re-finalized, completing the demotion; the newest epoch's WAL
        tail — torn final frame already truncated — is replayed through a
        fresh session (:meth:`Compressor.replay`), which by the replay
        invariant reproduces the crashed session's state bit-identically.
        Store-wide counters resume from what disk proves was pushed.
        """
        assert self._durability is not None
        for record in self._durability.recover():
            state = _KeyState()
            self._states[record.key] = state
            entries = list(record.frozen)
            for epoch_index, chunks in record.orphans:
                session = self._open_session(record.key)
                session.replay(chunks)
                entries.append(
                    (
                        epoch_index,
                        self._durability.demote(
                            record.key, epoch_index, session.finalize()
                        ),
                    )
                )
            entries.sort(key=lambda pair: pair[0])
            state.frozen = [epoch for _, epoch in entries]
            state.epoch = record.live_epoch
            live_tuples = 0
            if record.live is not None:
                session = self._open_session(record.key)
                session.replay(record.live[1])
                state.session = session
                live_tuples = session.pushed
            state.pushed = (
                sum(epoch.input_size for epoch in state.frozen) + live_tuples
            )
            state.generation = len(state.frozen) + (
                len(record.live[1]) if record.live is not None else 0
            )
            state.last_access = self._clock()
            self._c_pushed.inc(state.pushed)
            self._c_evictions.inc(len(state.frozen))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _open_session(self, key: Key) -> Compressor:
        if self._factory is not None:
            session = self._factory(key)
            if not isinstance(session, Compressor):
                raise ServiceError(
                    f"session_factory must return a Compressor, got "
                    f"{session!r}"
                )
            return session
        return self._make_session()

    def _make_session(self) -> Compressor:
        if self._default is None:
            raise ServiceError(
                "the store has no default budget; construct it with "
                "budget=/size=/max_error= or a session_factory"
            )
        budget, size, max_error = self._default
        return Compressor(
            budget, size=size, max_error=max_error, policy=self._policy
        )

    def _require(self, key: Key) -> _KeyState:
        state = self._states.get(key)
        if state is None:
            raise ServiceError(f"unknown stream key {key!r}")
        return state


__all__ = [
    "DEFAULT_RESYNC_JOURNAL_BYTES",
    "Key",
    "LRUTTLEviction",
    "ReplicationError",
    "ReplicationSink",
    "ServiceError",
    "SessionStore",
    "StoreStats",
    "WAL_COMPACT_FLOOR_BYTES",
]
