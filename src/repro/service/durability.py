"""Durability tier: per-key WAL, demoted frozen epochs, crash recovery.

Everything the serving layer holds is otherwise process memory; this
module makes a :class:`~repro.service.store.SessionStore` survive a
crash.  It composes two byte formats that already exist — the ``PTAS``
segment payload of :mod:`repro.service.wire` and the column container of
:mod:`repro.storage.columns` — into an on-disk layout under ``data_dir``::

    data_dir/
      <percent-encoded key>/
        epoch-00000000.ckpt     frozen epoch 0 (PTAC checkpoint, mmap'd)
        epoch-00000001.ckpt     frozen epoch 1
        epoch-00000002.wal      the live epoch's write-ahead log (PTAW)

Per acknowledged push the store appends **one WAL frame** — the pushed
chunk as ``PTAS`` bytes — to the live epoch's segment file
(:class:`repro.storage.wal.WalWriter`; length-prefixed, CRC-checked,
fsynced per the ``fsync_every`` cadence).  When an epoch freezes —
eviction, a manual ``freeze()``, or the deterministic
``checkpoint_every`` push-count trigger — the finalized summary is
written as an atomic ``PTAC`` checkpoint and the epoch's WAL is deleted:
*demotion*, memory → disk.  A demoted :class:`FrozenEpoch` serves its
columns as zero-copy views over an ``mmap`` of the checkpoint
(:func:`repro.storage.wal.load_checkpoint`), so resident memory per key
is bounded by the live session alone.

**The replay invariant.**  Recovery (:meth:`Durability.recover`) loads
every checkpointed epoch and replays the live epoch's WAL tail through
:meth:`repro.core.greedy.OnlineReducer.replay` — one ``push_chunk`` per
frame, exactly the chunks that were acknowledged live.  Because a
replayed chunk is bit-identical to its original push (the staged-insert
contract), **WAL replay composed over the checkpoints reproduces the
live reducer state bit-identically**: the recovered store serves
``summary()`` and :class:`~repro.service.query.QueryEngine` answers with
the same bytes the uncrashed process would have served
(``tests/test_durability.py`` asserts this at randomized crash points on
both backends).

Crash windows and their outcomes:

* **mid-append** — the final WAL frame is torn; ``read_wal(recover=True)``
  truncates it.  Only the unacknowledged push is lost.
* **between checkpoint write and WAL delete** — both files exist for one
  epoch; the checkpoint wins and the stale WAL is deleted (the
  checkpoint already contains the finalized form of every frame).
* **between finalize and checkpoint write** — the epoch has a WAL but no
  checkpoint and is not the newest epoch; recovery finishes the
  interrupted demotion by replaying and re-finalizing it (bit-identical
  to the finalize that was lost, by the same invariant).

File formats are specified normatively in ``docs/FORMATS.md``.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union
from urllib.parse import quote, unquote

import numpy as np

from ..api.result import Result
from ..core.kernels import SnapshotColumns
from ..core.merge import AggregateSegment
from ..obs.tracing import span
from ..util import failpoints
from ..storage.wal import (
    WalError,
    WalWriter,
    load_checkpoint,
    read_wal,
    write_checkpoint,
)
from .wire import (
    decode_segments,
    result_columns,
    result_from_columns,
    result_meta,
)

#: One live chunk as recovered from a WAL frame.
Chunk = List[AggregateSegment]

_EPOCH_FILE = re.compile(r"^epoch-(\d{8})\.(wal|ckpt)$")


class DurabilityError(ValueError):
    """A durability-tier failure: a disk fault on the WAL or checkpoint
    path (wrapped ``OSError``), an invalid configuration, or an
    unrecoverable on-disk layout.

    The serving layer maps this to HTTP 503 — a push that raises it was
    **not acknowledged** and did not mutate the in-memory state (the
    store appends WAL-first), so the client may safely retry.
    """


def encode_key(key: str) -> str:
    """Map a stream key to a safe directory name (percent-encoding).

    Reversible (:func:`decode_key`), injective, and filesystem-safe for
    any non-empty string key: every byte outside ``[A-Za-z0-9_.~-]`` is
    percent-escaped, so ``a/b`` and ``a%2Fb`` map to distinct names.

    >>> encode_key("sensor/1")
    'sensor%2F1'
    >>> encode_key("a%2Fb")            # not confusable with "a/b"
    'a%252Fb'
    >>> decode_key(encode_key("météo du jour")) == "météo du jour"
    True
    """
    if not isinstance(key, str) or not key:
        raise DurabilityError(
            f"durable stores require non-empty string keys, got {key!r}"
        )
    return quote(key, safe="")


def decode_key(name: str) -> str:
    """Invert :func:`encode_key`."""
    return unquote(name)


class FrozenEpoch:
    """One finalized epoch of a key: resident in memory or demoted to disk.

    The store's frozen list used to hold full :class:`Result` objects;
    this wrapper lets an epoch instead live as a ``PTAC`` checkpoint file
    whose columns are mmap'd in lazily (:meth:`columns`) and whose
    segment objects are only materialised when :meth:`result` is
    explicitly asked for — so a demoted key costs file-system pages, not
    process memory.
    """

    __slots__ = ("_result", "_path", "_raw", "_meta", "_snapshot")

    def __init__(
        self,
        result: Optional[Result] = None,
        path: Optional[Path] = None,
    ) -> None:
        if (result is None) == (path is None):
            raise DurabilityError(
                "a FrozenEpoch is either in-memory (result=) or "
                "disk-backed (path=), exactly one"
            )
        self._result = result
        self._path = path
        self._raw: Optional[Dict[str, np.ndarray]] = None
        self._meta: Optional[Dict[str, object]] = None
        self._snapshot: Optional[SnapshotColumns] = None

    @classmethod
    def from_result(cls, result: Result) -> "FrozenEpoch":
        """An epoch frozen in RAM (the non-durable store's behaviour)."""
        return cls(result=result)

    @classmethod
    def from_checkpoint(cls, path: Union[str, Path]) -> "FrozenEpoch":
        """An epoch demoted to a checkpoint file, loaded lazily via mmap."""
        return cls(path=Path(path))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def resident(self) -> bool:
        """Whether the epoch's summary is held in process memory."""
        return self._result is not None

    @property
    def path(self) -> Optional[Path]:
        """The checkpoint file of a demoted epoch (``None`` if resident)."""
        return self._path

    @property
    def error(self) -> float:
        return (
            self._result.error
            if self._result is not None
            else float(self._load_meta()["error"])  # type: ignore[arg-type]
        )

    @property
    def size(self) -> int:
        return (
            self._result.size
            if self._result is not None
            else int(self._load_meta()["size"])  # type: ignore[call-overload]
        )

    @property
    def input_size(self) -> int:
        return (
            self._result.input_size
            if self._result is not None
            else int(self._load_meta()["input_size"])  # type: ignore[call-overload]
        )

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def columns(self) -> SnapshotColumns:
        """The epoch's summary as flat snapshot columns.

        Disk-backed epochs return read-only zero-copy views over the
        checkpoint's memory map — built once, then cached; the OS pages
        the data in on demand.
        """
        if self._snapshot is None:
            if self._result is not None:
                self._snapshot = SnapshotColumns.from_segments(
                    self._result.segments
                )
            else:
                raw = self._load_raw()
                self._meta = result_meta(raw)  # validates the side column
                self._snapshot = SnapshotColumns(
                    raw["starts"],
                    raw["ends"],
                    raw["values"],
                    raw["groups"],
                    _group_keys(raw),
                )
        return self._snapshot

    def result(self) -> Result:
        """The epoch as a full :class:`Result` (materialised segments).

        Resident epochs return the stored object.  Demoted epochs
        materialise segment objects from the checkpoint *on every call*
        (deliberately uncached — this is the slow introspection path; the
        serving path reads :meth:`columns`).
        """
        if self._result is not None:
            return self._result
        return result_from_columns(dict(self._load_raw()))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _load_raw(self) -> Dict[str, np.ndarray]:
        if self._raw is None:
            assert self._path is not None
            self._raw = load_checkpoint(self._path)
        return self._raw

    def _load_meta(self) -> Dict[str, object]:
        if self._meta is None:
            self._meta = result_meta(self._load_raw())
        return self._meta


def _group_keys(raw: Dict[str, np.ndarray]) -> List[tuple]:
    from .wire import _json_value  # shared JSON side-column decoding

    keys = _json_value(raw["group_keys"], "group_keys")
    if not isinstance(keys, list):
        raise WalError("group_keys column must decode to a JSON array")
    return [tuple(key) for key in keys]


@dataclass
class RecoveredKey:
    """Everything recovery found on disk for one stream key.

    ``frozen`` holds checkpointed epochs; ``orphans`` are epochs whose
    demotion was interrupted (WAL present, checkpoint missing, not the
    newest epoch) — the store replays and re-finalizes them; ``live`` is
    the newest epoch's replayable WAL chunks, ``None`` when every epoch
    is checkpointed.  ``live_epoch`` is the epoch index the key's live
    session uses next.
    """

    key: str
    frozen: List[Tuple[int, FrozenEpoch]] = field(default_factory=list)
    orphans: List[Tuple[int, List[Chunk]]] = field(default_factory=list)
    live: Optional[Tuple[int, List[Chunk]]] = None
    live_epoch: int = 0


@dataclass(frozen=True)
class PushToken:
    """Handle for one WAL-appended push, used to roll it back.

    :meth:`Durability.log_push` appends the frame *before* the store
    mutates memory; if the in-memory application then fails, the store
    hands the token back to :meth:`Durability.rollback`, which truncates
    the frame off the log — the two sides never diverge.
    """

    key: str
    writer: WalWriter
    offset: int


class Durability:
    """Filesystem manager for one store's WAL segments and checkpoints.

    One instance per :class:`~repro.service.store.SessionStore`; the
    store calls :meth:`log_push` *before* each in-memory push (WAL
    first), :meth:`commit` after the push is applied (which advances
    the **group-commit clock** — ``fsync_every`` is counted in
    acknowledged pushes across every key, and on each cadence boundary
    all dirty writers are fsynced in one sweep), :meth:`demote` when an
    epoch freezes, and :meth:`recover` once at boot.  Every disk fault
    surfaces as :class:`DurabilityError`.  All methods are called under
    the store's lock.
    """

    def __init__(
        self, data_dir: Union[str, Path], fsync_every: int = 1
    ) -> None:
        if fsync_every < 0:
            raise DurabilityError(
                f"fsync_every must be non-negative, got {fsync_every}"
            )
        self.root = Path(data_dir)
        self.root.mkdir(parents=True, exist_ok=True)
        self.fsync_every = fsync_every
        #: One open writer per key — the live epoch's WAL.
        self._writers: Dict[str, Tuple[int, WalWriter]] = {}
        #: Keys with appended-but-not-yet-fsynced frames (group commit).
        self._dirty: Set[str] = set()
        #: Acknowledged pushes since the last group fsync.
        self._since_sync = 0

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def key_dir(self, key: str) -> Path:
        return self.root / encode_key(key)

    def wal_path(self, key: str, epoch: int) -> Path:
        return self.key_dir(key) / f"epoch-{epoch:08d}.wal"

    def checkpoint_path(self, key: str, epoch: int) -> Path:
        return self.key_dir(key) / f"epoch-{epoch:08d}.ckpt"

    def wal_size(self, key: str, epoch: int) -> int:
        """Current byte size of the epoch's WAL file (0 when absent)."""
        try:
            return self.wal_path(key, epoch).stat().st_size
        except OSError:
            return 0

    def latest_checkpoint_size(self, key: str) -> int:
        """Byte size of the key's newest checkpoint (0 when none exist).

        The reference value of the store's ``wal_compact_factor``
        trigger: a live WAL that outgrows the newest checkpoint by that
        factor is worth compacting into a checkpoint of its own.
        """
        directory = self.key_dir(key)
        newest: Optional[Path] = None
        newest_epoch = -1
        try:
            entries = list(directory.iterdir())
        except OSError:
            return 0
        for file in entries:
            match = _EPOCH_FILE.match(file.name)
            if match is None or match.group(2) != "ckpt":
                continue
            epoch = int(match.group(1))
            if epoch > newest_epoch:
                newest_epoch = epoch
                newest = file
        if newest is None:
            return 0
        try:
            return newest.stat().st_size
        except OSError:
            return 0

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def log_push(self, key: str, epoch: int, payload: bytes) -> PushToken:
        """Append one push (``PTAS`` bytes) to the live WAL — *before*
        the in-memory application.

        Returns a :class:`PushToken` the store can hand to
        :meth:`rollback` if applying the chunk in memory fails.  Any
        disk fault raises :class:`DurabilityError` and leaves the log
        byte-clean (a failed append truncates itself back, see
        :class:`repro.storage.wal.WalWriter`); a writer whose rollback
        failed earlier is refused until the epoch rotates, because
        appending after a torn tail would hide every later frame from
        recovery.
        """
        cached = self._writers.get(key)
        if cached is not None and cached[0] == epoch and cached[1].broken:
            raise DurabilityError(
                f"WAL for key {key!r} epoch {epoch} is unusable after a "
                f"failed rollback; awaiting epoch rotation"
            )
        try:
            with span("wal_append"):
                if cached is None or cached[0] != epoch:
                    if cached is not None:
                        self._close_quietly(cached[1])
                        del self._writers[key]
                    directory = self.key_dir(key)
                    directory.mkdir(parents=True, exist_ok=True)
                    writer = WalWriter(
                        self.wal_path(key, epoch), fsync_every=0
                    )
                    self._writers[key] = (epoch, writer)
                else:
                    writer = cached[1]
                offset = writer.tell()
                writer.append(payload)
        except OSError as error:
            raise DurabilityError(
                f"WAL append failed for key {key!r}: {error}"
            ) from error
        self._dirty.add(key)
        return PushToken(key, writer, offset)

    def writer_broken(self, key: str, epoch: int) -> bool:
        """Whether the key's live writer refuses appends (torn tail).

        ``True`` only after a rollback failed — the store reacts by
        rotating the key's epoch, which gets a fresh segment file.
        """
        cached = self._writers.get(key)
        return cached is not None and cached[0] == epoch and cached[1].broken

    def rollback(self, token: PushToken) -> None:
        """Truncate the frame appended by :meth:`log_push` off the log.

        Raises :class:`DurabilityError` if the truncation fails — in
        which case the writer has marked itself broken and the epoch
        must rotate before the key can log again.
        """
        try:
            token.writer.truncate_to(token.offset)
        except OSError as error:
            raise DurabilityError(
                f"WAL rollback failed for key {token.key!r}: {error}"
            ) from error

    def commit(self) -> None:
        """Advance the group-commit clock by one acknowledged push.

        With ``fsync_every=n`` every ``n``-th acknowledged push — counted
        across all keys, *not* per WAL file — fsyncs every dirty writer
        in one sweep, so the acked-but-unsynced window is bounded by
        ``n`` pushes store-wide however the keys interleave.
        ``fsync_every=0`` leaves flushing to the OS entirely.
        """
        if not self.fsync_every:
            return
        self._since_sync += 1
        if self._since_sync >= self.fsync_every:
            self.sync()

    def sync(self) -> None:
        """Fsync every dirty writer now, regardless of the cadence.

        Writers that sync cleanly leave the dirty set even if a later
        one fails, so a retry only re-syncs what still needs it; the
        first failure is wrapped and raised after the sweep stops.
        """
        self._since_sync = 0
        if not self._dirty:
            return
        with span("fsync"):
            for key in sorted(self._dirty):
                cached = self._writers.get(key)
                if cached is None:
                    self._dirty.discard(key)
                    continue
                try:
                    cached[1].sync()
                except OSError as error:
                    raise DurabilityError(
                        f"WAL fsync failed for key {key!r}: {error}"
                    ) from error
                self._dirty.discard(key)

    def probe(self) -> None:
        """Verify ``data_dir`` accepts durable writes (degraded re-probe).

        Writes, fsyncs and unlinks a scratch file; any fault raises
        :class:`DurabilityError`.  The store calls this while degraded
        to decide whether the disk came back.
        """
        path = self.root / ".probe"
        try:
            failpoints.fail("durability.probe")
            with open(path, "wb") as file:
                file.write(b"pta-probe")
                file.flush()
                os.fsync(file.fileno())
            path.unlink()
        except OSError as error:
            raise DurabilityError(
                f"durability probe failed under {self.root}: {error}"
            ) from error

    def suspend(self) -> None:
        """Drop every writer without raising (degraded-mode entry).

        Close errors are swallowed — the store is abandoning the disk,
        not depending on it; :meth:`log_push` lazily reopens writers
        after a successful re-attach.
        """
        for _, writer in list(self._writers.values()):
            self._close_quietly(writer)
        self._writers.clear()
        self._dirty.clear()
        self._since_sync = 0

    def demote(self, key: str, epoch: int, result: Result) -> FrozenEpoch:
        """Persist a finalized epoch and drop its WAL (memory → disk).

        Writes the ``PTAC`` checkpoint atomically *before* deleting the
        WAL, so a crash anywhere in between leaves a recoverable state
        (checkpoint wins; see the module docstring's crash windows).  A
        checkpoint-write fault raises :class:`DurabilityError` with the
        WAL intact — the epoch is still fully recoverable from its
        frames; a WAL-unlink fault after the checkpoint is durable is
        swallowed (recovery resolves it: checkpoint wins).
        """
        directory = self.key_dir(key)
        try:
            directory.mkdir(parents=True, exist_ok=True)
            target = self.checkpoint_path(key, epoch)
            write_checkpoint(target, result_columns(result))
        except OSError as error:
            raise DurabilityError(
                f"checkpoint write failed for key {key!r} epoch "
                f"{epoch}: {error}"
            ) from error
        cached = self._writers.get(key)
        if cached is not None and cached[0] == epoch:
            self._close_quietly(cached[1])
            del self._writers[key]
            self._dirty.discard(key)
        try:
            wal = self.wal_path(key, epoch)
            if wal.exists():
                wal.unlink()
        except OSError:
            pass  # the checkpoint is durable; recovery deletes the WAL
        return FrozenEpoch.from_checkpoint(target)

    def close(self) -> None:
        """Flush and close every open WAL writer.

        The first close/fsync fault is wrapped in
        :class:`DurabilityError` and raised after every writer has been
        attempted — no writer is left open because an earlier one
        failed.
        """
        first_error: Optional[OSError] = None
        for _, writer in self._writers.values():
            try:
                writer.close()
            except OSError as error:
                if first_error is None:
                    first_error = error
        self._writers.clear()
        self._dirty.clear()
        self._since_sync = 0
        if first_error is not None:
            raise DurabilityError(
                f"closing WAL writers failed: {first_error}"
            ) from first_error

    @staticmethod
    def _close_quietly(writer: WalWriter) -> None:
        try:
            writer.close()
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def recover(self) -> List[RecoveredKey]:
        """Scan ``data_dir`` and classify every key's on-disk epochs.

        Torn WAL tails are truncated here (``read_wal(recover=True)``);
        stale ``.tmp`` checkpoint leftovers are deleted; a WAL alongside
        its epoch's checkpoint loses to the checkpoint.  The returned
        records are ordered by key directory name.
        """
        recovered: List[RecoveredKey] = []
        if not self.root.exists():
            return recovered
        for child in sorted(self.root.iterdir()):
            if not child.is_dir():
                continue
            record = self._recover_key(child)
            if record is not None:
                recovered.append(record)
        return recovered

    def _recover_key(self, directory: Path) -> Optional[RecoveredKey]:
        checkpoints: Dict[int, Path] = {}
        wals: Dict[int, Path] = {}
        for file in sorted(directory.iterdir()):
            if file.name.endswith(".tmp"):
                file.unlink()  # a checkpoint write that never completed
                continue
            match = _EPOCH_FILE.match(file.name)
            if match is None:
                continue
            epoch = int(match.group(1))
            (wals if match.group(2) == "wal" else checkpoints)[epoch] = file
        epochs = sorted(set(checkpoints) | set(wals))
        if not epochs:
            return None
        record = RecoveredKey(key=decode_key(directory.name))
        newest = epochs[-1]
        for epoch in epochs:
            if epoch in checkpoints:
                record.frozen.append(
                    (epoch, FrozenEpoch.from_checkpoint(checkpoints[epoch]))
                )
                if epoch in wals:
                    wals[epoch].unlink()  # checkpoint wins the crash window
            else:
                frames = read_wal(wals[epoch], recover=True)
                chunks = [decode_segments(frame) for frame in frames]
                if epoch == newest:
                    record.live = (epoch, chunks)
                else:
                    record.orphans.append((epoch, chunks))
        record.live_epoch = newest if record.live is not None else newest + 1
        return record


def replayable_chunks(
    frames: Sequence[bytes],
) -> List[Chunk]:
    """Decode WAL frame payloads into push chunks (test/tooling helper)."""
    return [decode_segments(frame) for frame in frames]


__all__ = [
    "Chunk",
    "Durability",
    "DurabilityError",
    "FrozenEpoch",
    "PushToken",
    "RecoveredKey",
    "decode_key",
    "encode_key",
    "replayable_chunks",
]
