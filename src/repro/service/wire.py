"""Binary wire format for segment streams and result payloads.

The serving layer needs summaries to *leave the process* — to be persisted,
shipped to a cache, or exchanged between hosts of a future distributed
reduction.  This module gives :class:`~repro.core.merge.AggregateSegment`
streams and :class:`~repro.api.result.Result` payloads a compact, versioned
binary representation:

* the column layout is exactly the flat-array encoding the sharded engine
  already uses internally (:class:`repro.parallel.EncodedSegments` —
  ``int64`` interval endpoints, a ``float64`` value matrix, dense interned
  group ids), so a wire payload *is* a valid unit of work for the shard
  planner, byte-layout included;
* the byte-level container is the versioned column codec of
  :mod:`repro.storage.columns`; a 4-byte magic tag distinguishes segment
  payloads (``PTAS``) from result payloads (``PTAR``) and a ``uint16``
  version gate rejects cross-version buffers loudly;
* group-key tuples and result metadata travel as UTF-8 JSON side columns —
  group values must be JSON scalars (``str`` / ``int`` / ``float`` /
  ``bool`` / ``None``), which covers every grouping attribute the temporal
  relations produce;
* aggregate values must be finite: NaN and ±inf have no length-weighted
  mean semantics under the merge operator, so :func:`encode_segments`
  rejects them with :class:`WireError` instead of letting them poison a
  remote heap.

Decoding restores dtypes and exact float bits, so
``decode_segments(encode_segments(s)) == s`` holds with exact equality.
A JSON-lines debug encoding (:func:`segments_to_jsonl` /
:func:`segments_from_jsonl`) mirrors the binary format one object per line
for logs and curl-ability; it is also float-exact (``repr`` roundtrip).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Mapping, Union

import numpy as np

from ..core.merge import AggregateSegment
from ..parallel import EncodedSegments
from ..parallel import encode_segments as _to_columns
from ..storage.columns import ColumnCodecError, pack_columns, unpack_columns
from ..temporal import Interval

#: Magic tags of the two payload kinds.
SEGMENTS_MAGIC = b"PTAS"
RESULT_MAGIC = b"PTAR"

#: Version of the wire format this module reads and writes.  Bump on any
#: layout change; readers reject every other version.
WIRE_VERSION = 1

_SEGMENT_COLUMNS = ("starts", "ends", "values", "groups", "group_keys")


class WireError(ValueError):
    """A payload that cannot be wire-encoded, or malformed wire bytes."""


# ----------------------------------------------------------------------
# Segment streams
# ----------------------------------------------------------------------
def encode_segments(
    segments: Union[Iterable[AggregateSegment], EncodedSegments],
) -> bytes:
    """Encode a segment stream (or pre-encoded columns) into wire bytes."""
    encoded = (
        segments
        if isinstance(segments, EncodedSegments)
        else _to_columns(segments)
    )
    _require_finite(encoded.values)
    return pack_columns(
        {
            "starts": np.asarray(encoded.starts, dtype=np.int64),
            "ends": np.asarray(encoded.ends, dtype=np.int64),
            "values": np.asarray(encoded.values, dtype=np.float64),
            "groups": np.asarray(encoded.groups, dtype=np.int64),
            "group_keys": _json_column(
                [list(key) for key in encoded.group_keys], "group values"
            ),
        },
        SEGMENTS_MAGIC,
        WIRE_VERSION,
    )


def decode_encoded(data: bytes, copy: bool = True) -> EncodedSegments:
    """Decode wire bytes into :class:`EncodedSegments` flat columns.

    The returned columns are exactly what :mod:`repro.parallel` shards, so
    a decoded payload can enter the reduction engine without ever being
    materialised into segment objects.

    With ``copy=False`` the numeric columns are zero-copy **views** over
    ``data`` (``np.frombuffer``): nothing is memcpy'd on the receive
    path, which is what lets a remote reducer worker start computing the
    moment a shard frame arrives (ROADMAP 4a: decode used to cost ~9x
    its encode).  The views are read-only whenever the buffer is and
    keep ``data`` alive; every reduction kernel treats its inputs as
    immutable, so they enter the engine unchanged.
    """
    return _columns_to_encoded(_unpack(data, SEGMENTS_MAGIC, copy=copy))


def _columns_to_encoded(columns: Dict[str, np.ndarray]) -> EncodedSegments:
    """Validate unpacked segment columns and assemble the flat encoding.

    Shared by :func:`decode_encoded` and :func:`decode_result`; every
    malformed shape/dtype surfaces as :class:`WireError` (never a raw
    TypeError from downstream array arithmetic on untrusted bytes).
    """
    missing = [name for name in _SEGMENT_COLUMNS if name not in columns]
    if missing:
        raise WireError(f"segment payload is missing columns {missing}")
    for name, kind, ndim in (
        ("starts", "i", 1), ("ends", "i", 1), ("groups", "i", 1),
        ("values", "f", 2),
    ):
        column = columns[name]
        if column.ndim != ndim or column.dtype.kind != kind:
            raise WireError(
                f"{name} column must be a {ndim}-dimensional "
                f"{'integer' if kind == 'i' else 'float'} array, got "
                f"{column.dtype} with shape {column.shape}"
            )
    values = columns["values"]
    _require_finite(values)
    group_keys_raw = _json_value(columns["group_keys"], "group_keys")
    if not isinstance(group_keys_raw, list):
        raise WireError("group_keys column must decode to a JSON array")
    group_keys = [tuple(key) for key in group_keys_raw]
    starts = columns["starts"]
    groups = columns["groups"]
    count = len(starts)
    if not (len(columns["ends"]) == len(groups) == len(values) == count):
        raise WireError(
            "segment payload columns disagree on the number of rows"
        )
    if count and groups.size:
        lo, hi = int(groups.min()), int(groups.max())
        if lo < 0 or hi >= len(group_keys):
            raise WireError(
                f"group id {hi if hi >= len(group_keys) else lo} outside "
                f"the {len(group_keys)} interned group keys"
            )
    return EncodedSegments(
        starts, columns["ends"], values, groups, group_keys
    )


def decode_segments(data: bytes) -> List[AggregateSegment]:
    """Decode wire bytes back into a list of segments, float-exact."""
    return _materialise(decode_encoded(data))


# ----------------------------------------------------------------------
# Result payloads
# ----------------------------------------------------------------------
def encode_result(result: Any) -> bytes:
    """Encode a :class:`repro.api.Result` (summary + stats) into wire bytes."""
    return pack_columns(result_columns(result), RESULT_MAGIC, WIRE_VERSION)


def result_columns(result: Any) -> Dict[str, np.ndarray]:
    """The column image of a :class:`~repro.api.result.Result`.

    The segment columns of :func:`encode_segments` plus a JSON ``meta``
    side column carrying the reduction statistics — the payload both the
    ``PTAR`` wire format and the durability tier's ``PTAC`` checkpoint
    files (:mod:`repro.storage.wal`) pack; they differ only in magic tag.
    """
    encoded = _to_columns(result.segments)
    _require_finite(encoded.values)
    meta = {
        "error": result.error,
        "size": result.size,
        "input_size": result.input_size,
        "method": result.method,
        "backend": result.backend,
        "max_heap_size": result.max_heap_size,
        "merges": result.merges,
        "group_columns": list(result.group_columns),
        "value_columns": list(result.value_columns),
        "timestamp_name": result.timestamp_name,
    }
    return {
        "starts": np.asarray(encoded.starts, dtype=np.int64),
        "ends": np.asarray(encoded.ends, dtype=np.int64),
        "values": np.asarray(encoded.values, dtype=np.float64),
        "groups": np.asarray(encoded.groups, dtype=np.int64),
        "group_keys": _json_column(
            [list(key) for key in encoded.group_keys], "group values"
        ),
        "meta": _json_column(meta, "result metadata"),
    }


def decode_result(data: bytes) -> Any:
    """Decode wire bytes produced by :func:`encode_result`."""
    return result_from_columns(_unpack(data, RESULT_MAGIC))


def result_meta(columns: Mapping[str, np.ndarray]) -> Dict[str, Any]:
    """Parse and validate the ``meta`` side column of a result payload."""
    if "meta" not in columns:
        raise WireError("result payload is missing the meta column")
    meta = _json_value(columns["meta"], "meta")
    if not isinstance(meta, dict):
        raise WireError("meta column must decode to a JSON object")
    return meta


def result_from_columns(columns: Dict[str, np.ndarray]) -> Any:
    """Rebuild a :class:`~repro.api.result.Result` from its column image."""
    from ..api.result import Result

    meta = result_meta(columns)
    segments = _materialise(_columns_to_encoded(columns))
    try:
        return Result(
            segments=segments,
            error=float(meta["error"]),
            size=int(meta["size"]),
            input_size=int(meta["input_size"]),
            method=str(meta["method"]),
            backend=str(meta["backend"]),
            max_heap_size=int(meta["max_heap_size"]),
            merges=int(meta["merges"]),
            group_columns=tuple(meta["group_columns"]),
            value_columns=tuple(meta["value_columns"]),
            timestamp_name=str(meta["timestamp_name"]),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise WireError(f"malformed result metadata: {error}") from error


# ----------------------------------------------------------------------
# JSON-lines debug encoding
# ----------------------------------------------------------------------
def segment_to_obj(segment: AggregateSegment) -> Dict[str, Any]:
    """One segment as a plain JSON-ready mapping (the debug/HTTP shape)."""
    return {
        "group": list(segment.group),
        "values": list(segment.values),
        "start": segment.interval.start,
        "end": segment.interval.end,
    }


def segment_from_obj(obj: Mapping[str, Any]) -> AggregateSegment:
    """Rebuild a segment from the mapping shape of :func:`segment_to_obj`."""
    try:
        return AggregateSegment(
            tuple(obj.get("group", ())),
            tuple(float(v) for v in obj["values"]),
            Interval(int(obj["start"]), int(obj["end"])),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise WireError(f"malformed segment object {obj!r}: {error}") from error


def segments_to_jsonl(segments: Iterable[AggregateSegment]) -> str:
    """Encode a stream as JSON lines (one segment object per line)."""
    lines = []
    for segment in segments:
        try:
            lines.append(
                json.dumps(
                    segment_to_obj(segment),
                    allow_nan=False,
                    separators=(",", ":"),
                )
            )
        except ValueError as error:
            raise WireError(
                f"segment {segment} has a non-finite aggregate value "
                f"(NaN/inf cannot be wire-encoded)"
            ) from error
    return "\n".join(lines) + ("\n" if lines else "")


def segments_from_jsonl(text: str) -> List[AggregateSegment]:
    """Decode the JSON-lines encoding of :func:`segments_to_jsonl`."""
    segments: List[AggregateSegment] = []
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as error:
            raise WireError(
                f"line {number} is not valid JSON: {error}"
            ) from error
        if not isinstance(obj, dict):
            raise WireError(f"line {number} must be a JSON object")
        segments.append(segment_from_obj(obj))
    return segments


# ----------------------------------------------------------------------
# Internals
# ----------------------------------------------------------------------
def _require_finite(values: np.ndarray) -> None:
    if values.size and not bool(np.isfinite(values).all()):
        bad = np.argwhere(~np.isfinite(np.atleast_2d(values)))[0]
        raise WireError(
            f"segment {int(bad[0])} has a non-finite aggregate value "
            f"(NaN/inf cannot be wire-encoded: the merge operator's "
            f"length-weighted means are undefined for it)"
        )


def _json_column(payload: Any, what: str) -> np.ndarray:
    try:
        blob = json.dumps(payload, allow_nan=False).encode("utf-8")
    except (TypeError, ValueError) as error:
        raise WireError(
            f"{what} must be JSON-encodable scalars "
            f"(str/int/float/bool/None): {error}"
        ) from error
    return np.frombuffer(blob, dtype=np.uint8)


def _json_value(column: np.ndarray, what: str) -> Any:
    try:
        return json.loads(bytes(np.asarray(column, dtype=np.uint8)))
    except (json.JSONDecodeError, UnicodeDecodeError) as error:
        raise WireError(f"malformed JSON in {what} column: {error}") from error


def _unpack(
    data: bytes, magic: bytes, copy: bool = True
) -> Dict[str, np.ndarray]:
    try:
        return unpack_columns(data, magic, WIRE_VERSION, copy=copy)
    except ColumnCodecError as error:
        raise WireError(str(error)) from error


def _materialise(encoded: EncodedSegments) -> List[AggregateSegment]:
    starts = encoded.starts
    ends = encoded.ends
    values = encoded.values
    groups = encoded.groups
    group_keys = encoded.group_keys
    return [
        AggregateSegment(
            group_keys[int(groups[index])],
            tuple(float(v) for v in values[index]),
            Interval(int(starts[index]), int(ends[index])),
        )
        for index in range(len(encoded))
    ]


__all__ = [
    "RESULT_MAGIC",
    "SEGMENTS_MAGIC",
    "WIRE_VERSION",
    "WireError",
    "decode_encoded",
    "decode_result",
    "decode_segments",
    "encode_result",
    "encode_segments",
    "result_columns",
    "result_from_columns",
    "result_meta",
    "segment_from_obj",
    "segment_to_obj",
    "segments_from_jsonl",
    "segments_to_jsonl",
]
