"""In-process ``Service`` facade and the stdlib HTTP front end.

:class:`Service` bundles the write path (:class:`SessionStore`) and the
read path (:class:`QueryEngine`) into one object embeddable in any Python
process; :func:`serve` / :func:`start_in_background` put a JSON-over-HTTP
surface in front of it using only :mod:`http.server` from the standard
library (``ThreadingHTTPServer`` — one thread per connection, the store's
internal lock serialises mutations).

Endpoints::

    POST /push/<key>      body: one segment object, a JSON array of them,
                          or JSON lines; with Content-Type
                          application/x-pta-wire, the binary wire format
                          of repro.service.wire.  -> {pushed, generation}
    GET  /value_at?key=K&t=T[&group=G]            -> {t, values|null}
    GET  /range_agg?key=K&t1=A&t2=B[&fn=avg][&group=G]
                                                  -> {t1, t2, fn, values|null}
    GET  /window?key=K&t1=A&t2=B&stride=S[&fn=avg][&group=G]
                                                  -> {buckets: [...]}
    GET  /summary?key=K   JSON summary + stats; with Accept:
                          application/x-pta-wire, the binary Result payload
    GET  /stats           store-wide counters
    GET  /healthz         liveness probe

A segment object is ``{"group": [...], "values": [...], "start": int,
"end": int}`` (``group`` may be omitted for ungrouped streams); ``group=``
query parameters take the same JSON array form.  Errors come back as
``{"error": message}`` with status 400 (bad request / unknown key) or 404
(unknown route).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union
from urllib.parse import parse_qs, urlsplit

from ..core.merge import AggregateSegment
from ..api.plan import Budget, ExecutionPolicy
from ..api.result import Result
from .query import QueryEngine, WindowBucket
from .store import Key, LRUTTLEviction, ServiceError, SessionStore, StoreStats
from .wire import (
    WireError,
    decode_segments,
    encode_result,
    segment_from_obj,
    segment_to_obj,
)

#: Content type of binary wire payloads on the HTTP surface.
WIRE_CONTENT_TYPE = "application/x-pta-wire"


class Service:
    """The serving layer as one embeddable object: store + query engine.

    Either wrap an existing configured store
    (``Service(store=my_store)``) or let the facade build one from the
    same keyword surface as :class:`SessionStore`.
    """

    def __init__(
        self,
        store: Optional[SessionStore] = None,
        *,
        budget: Optional[Budget] = None,
        size: Optional[int] = None,
        max_error: Optional[float] = None,
        policy: Optional[ExecutionPolicy] = None,
        eviction: Optional[LRUTTLEviction] = None,
        max_sessions: Optional[int] = None,
        ttl: Optional[float] = None,
        session_factory: Optional[Callable[[Key], Any]] = None,
        data_dir: Optional[Union[str, "Path"]] = None,
        fsync_every: Optional[int] = None,
        checkpoint_every: Optional[int] = None,
    ) -> None:
        if store is not None:
            if (budget, size, max_error, policy, eviction, max_sessions,
                    ttl, session_factory, data_dir, fsync_every,
                    checkpoint_every) != (None,) * 11:
                raise ServiceError(
                    "pass either a prebuilt store or store-construction "
                    "keywords, not both"
                )
            self.store = store
        else:
            self.store = SessionStore(
                budget,
                size=size,
                max_error=max_error,
                policy=policy,
                eviction=eviction,
                max_sessions=max_sessions,
                ttl=ttl,
                session_factory=session_factory,
                data_dir=data_dir,
                fsync_every=1 if fsync_every is None else fsync_every,
                checkpoint_every=checkpoint_every,
            )
        self.engine = QueryEngine(self.store)

    def close(self) -> None:
        """Flush and close the store's durability tier (no-op if absent)."""
        self.store.close()

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def push(
        self,
        key: Key,
        segments: Union[AggregateSegment, Sequence[AggregateSegment]],
    ) -> Dict[str, int]:
        """Feed segments; returns ``{"pushed": n, "generation": g}``."""
        pushed = self.store.push(key, segments)
        return {"pushed": pushed, "generation": self.store.generation(key)}

    # ------------------------------------------------------------------
    # Read path (delegates to the query engine)
    # ------------------------------------------------------------------
    def value_at(
        self, key: Key, t: int, group: Optional[Sequence[Any]] = None
    ) -> Optional[Tuple[float, ...]]:
        return self.engine.value_at(key, t, group)

    def range_agg(
        self,
        key: Key,
        t1: int,
        t2: int,
        fn: str = "avg",
        group: Optional[Sequence[Any]] = None,
    ) -> Optional[Tuple[float, ...]]:
        return self.engine.range_agg(key, t1, t2, fn, group)

    def window(
        self,
        key: Key,
        t1: int,
        t2: int,
        stride: int,
        fn: str = "avg",
        group: Optional[Sequence[Any]] = None,
    ) -> List[WindowBucket]:
        return self.engine.window(key, t1, t2, stride, fn, group)

    def summary(self, key: Key) -> Result:
        """The combined (frozen + live) summary snapshot for ``key``."""
        return self.store.snapshot(key)

    def stats(self) -> StoreStats:
        return self.store.stats()


# ----------------------------------------------------------------------
# HTTP front end
# ----------------------------------------------------------------------
class ServiceHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`Service` instance."""

    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        service: Service,
        quiet: bool = True,
    ) -> None:
        super().__init__(address, _Handler)
        self.service = service
        self.quiet = quiet

    @property
    def port(self) -> int:
        """The bound port (useful with the ephemeral ``port=0``)."""
        return int(self.server_address[1])


class _Handler(BaseHTTPRequestHandler):
    server: ServiceHTTPServer  # narrowed for the route handlers

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (stdlib casing)
        url = urlsplit(self.path)
        query = parse_qs(url.query)
        try:
            if url.path == "/healthz":
                self._send_json(200, {"status": "ok"})
            elif url.path == "/stats":
                self._send_json(
                    200, self.server.service.stats().as_dict()
                )
            elif url.path == "/value_at":
                self._handle_value_at(query)
            elif url.path == "/range_agg":
                self._handle_range_agg(query)
            elif url.path == "/window":
                self._handle_window(query)
            elif url.path == "/summary":
                self._handle_summary(query)
            else:
                self._send_json(
                    404, {"error": f"unknown route {url.path!r}"}
                )
        except (ServiceError, WireError, ValueError) as error:
            self._send_json(400, {"error": str(error)})

    def do_POST(self) -> None:  # noqa: N802 (stdlib casing)
        url = urlsplit(self.path)
        try:
            if url.path.startswith("/push/"):
                key = url.path[len("/push/"):]
                if not key:
                    raise ServiceError("push requires a non-empty key")
                self._handle_push(key)
            else:
                self._send_json(
                    404, {"error": f"unknown route {url.path!r}"}
                )
        except (ServiceError, WireError, ValueError) as error:
            self._send_json(400, {"error": str(error)})

    # ------------------------------------------------------------------
    # Route handlers
    # ------------------------------------------------------------------
    def _handle_push(self, key: str) -> None:
        length = int(self.headers.get("Content-Length", "0"))
        body = self.rfile.read(length)
        content_type = (self.headers.get("Content-Type") or "").split(";")[0]
        if content_type == WIRE_CONTENT_TYPE:
            segments = decode_segments(body)
        else:
            segments = _segments_from_json_body(body)
        self._send_json(200, self.server.service.push(key, segments))

    def _handle_value_at(self, query: Dict[str, List[str]]) -> None:
        key = _param(query, "key")
        t = int(_param(query, "t"))
        values = self.server.service.value_at(key, t, _group(query))
        self._send_json(
            200, {"t": t, "values": list(values) if values else None}
        )

    def _handle_range_agg(self, query: Dict[str, List[str]]) -> None:
        key = _param(query, "key")
        t1 = int(_param(query, "t1"))
        t2 = int(_param(query, "t2"))
        fn = _param(query, "fn", "avg")
        values = self.server.service.range_agg(key, t1, t2, fn, _group(query))
        self._send_json(
            200,
            {
                "t1": t1,
                "t2": t2,
                "fn": fn,
                "values": list(values) if values else None,
            },
        )

    def _handle_window(self, query: Dict[str, List[str]]) -> None:
        key = _param(query, "key")
        buckets = self.server.service.window(
            key,
            int(_param(query, "t1")),
            int(_param(query, "t2")),
            int(_param(query, "stride")),
            _param(query, "fn", "avg"),
            _group(query),
        )
        self._send_json(
            200,
            {
                "buckets": [
                    {
                        "start": bucket.start,
                        "end": bucket.end,
                        "values": (
                            list(bucket.values)
                            if bucket.values is not None
                            else None
                        ),
                    }
                    for bucket in buckets
                ]
            },
        )

    def _handle_summary(self, query: Dict[str, List[str]]) -> None:
        key = _param(query, "key")
        result = self.server.service.summary(key)
        if WIRE_CONTENT_TYPE in (self.headers.get("Accept") or ""):
            self._send_bytes(200, encode_result(result), WIRE_CONTENT_TYPE)
            return
        self._send_json(
            200,
            {
                "key": key,
                "size": result.size,
                "input_size": result.input_size,
                "error": result.error,
                "merges": result.merges,
                "segments": [
                    segment_to_obj(segment) for segment in result.segments
                ],
            },
        )

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
        self._send_bytes(
            status,
            json.dumps(payload).encode("utf-8"),
            "application/json",
        )

    def _send_bytes(self, status: int, body: bytes, ctype: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: Any) -> None:
        if not self.server.quiet:
            super().log_message(format, *args)


def _param(
    query: Dict[str, List[str]], name: str, default: Optional[str] = None
) -> str:
    values = query.get(name)
    if not values:
        if default is not None:
            return default
        raise ServiceError(f"missing required query parameter {name!r}")
    return values[0]


def _group(query: Dict[str, List[str]]) -> Optional[List[Any]]:
    raw = query.get("group")
    if not raw:
        return None
    try:
        parsed = json.loads(raw[0])
    except json.JSONDecodeError as error:
        raise ServiceError(
            f"group must be a JSON array, got {raw[0]!r}: {error}"
        ) from error
    if not isinstance(parsed, list):
        raise ServiceError(f"group must be a JSON array, got {raw[0]!r}")
    return parsed


def _segments_from_json_body(body: bytes) -> List[AggregateSegment]:
    text = body.decode("utf-8")
    try:
        parsed = json.loads(text)
    except json.JSONDecodeError:
        # Not one JSON document: treat it as JSON lines (which reports
        # per-line errors when it is not that either).
        from .wire import segments_from_jsonl

        return segments_from_jsonl(text)
    if isinstance(parsed, list):
        return [segment_from_obj(obj) for obj in parsed]
    if isinstance(parsed, dict):
        return [segment_from_obj(parsed)]
    raise ServiceError(
        "push body must be a segment object, a JSON array of them, or "
        "JSON lines"
    )


# ----------------------------------------------------------------------
# Running the server
# ----------------------------------------------------------------------
def serve(
    service: Service,
    host: str = "127.0.0.1",
    port: int = 8080,
    quiet: bool = True,
) -> ServiceHTTPServer:
    """Bind the HTTP front end; call ``serve_forever()`` on the result."""
    return ServiceHTTPServer((host, port), service, quiet=quiet)


def start_in_background(
    service: Service,
    host: str = "127.0.0.1",
    port: int = 0,
    quiet: bool = True,
) -> Tuple[ServiceHTTPServer, threading.Thread]:
    """Start the front end on a daemon thread (``port=0`` = ephemeral).

    Returns the bound server (``server.port`` tells the chosen port) and
    the serving thread; ``server.shutdown()`` stops it.
    """
    server = serve(service, host, port, quiet=quiet)
    thread = threading.Thread(
        target=server.serve_forever, name="pta-service-http", daemon=True
    )
    thread.start()
    return server, thread


__all__ = [
    "Service",
    "ServiceHTTPServer",
    "WIRE_CONTENT_TYPE",
    "serve",
    "start_in_background",
]
