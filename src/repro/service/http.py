"""In-process ``Service`` facade and the stdlib HTTP front end.

:class:`Service` bundles the write path (:class:`SessionStore`) and the
read path (:class:`QueryEngine`) into one object embeddable in any Python
process; :func:`serve` / :func:`start_in_background` put a JSON-over-HTTP
surface in front of it using only :mod:`http.server` from the standard
library (``ThreadingHTTPServer`` — one thread per connection, the store's
internal lock serialises mutations).

Endpoints::

    POST /push/<key>      body: one segment object, a JSON array of them,
                          or JSON lines; with Content-Type
                          application/x-pta-wire, the binary wire format
                          of repro.service.wire.  -> {pushed, generation}
    GET  /value_at?key=K&t=T[&group=G]            -> {t, values|null}
    GET  /range_agg?key=K&t1=A&t2=B[&fn=avg][&group=G]
                                                  -> {t1, t2, fn, values|null}
    GET  /window?key=K&t1=A&t2=B&stride=S[&fn=avg][&group=G]
                                                  -> {buckets: [...]}
    GET  /summary?key=K   JSON summary + stats; with Accept:
                          application/x-pta-wire, the binary Result payload
    GET  /stats           store-wide counters (incl. replication fields
                          and the query engine's cache/cost counters)
    GET  /metrics         Prometheus text exposition of the process-wide
                          metrics registry (repro.obs)
    GET  /role            {role, replicas, replication_lag,
                           last_acked_generation}
    GET  /healthz         liveness probe (503 when degraded or when the
                          replication lag exceeds max_replication_lag);
                          reports per-sink replication lag when any
                          replication sinks are registered

Every request runs under a trace id (:mod:`repro.obs.tracing`): a valid
``X-Repro-Trace`` request header is adopted, otherwise an id is minted,
and either way the response carries the effective id in the same header
— so a client can correlate its slow push with the server's spans and
structured log lines.  Per-endpoint latency histograms, per-error-code
counters and an in-flight gauge feed the registry ``/metrics`` renders.

Requests may also carry an end-to-end deadline: a positive
``X-Repro-Deadline`` header (remaining budget in seconds — relative,
because wall clocks across machines disagree) installs a
:mod:`repro.util.deadline` scope around the route, which the store's
replication quorum wait and the cluster coordinator's fan-out honour;
an expired deadline answers 400 ``deadline_exceeded``.

A segment object is ``{"group": [...], "values": [...], "start": int,
"end": int}`` (``group`` may be omitted for ungrouped streams); ``group=``
query parameters take the same JSON array form.

**Errors are always structured JSON** — ``{"error": message, "code":
slug}`` — and the front end is hardened against abuse and faults
(``docs/ARCHITECTURE.md`` § Operating under failure):

========  =====================  ==========================================
status    code                   meaning
========  =====================  ==========================================
400       ``bad_request``        invalid body, query, or unknown key
400       ``deadline_exceeded``  the per-request socket deadline expired
404       ``not_found``          unknown route
413       ``payload_too_large``  ``Content-Length`` above ``max_body``
429       ``backpressure``       too many in-flight pushes (``Retry-After``)
500       ``internal``           unexpected handler exception (logged)
503       ``durability``         durable push failed; safe to retry
503       ``degraded``           ``/healthz`` while the store is degraded
                                 or the replication lag exceeds the
                                 configured threshold
503       ``not_primary``        ``POST /push`` on a standby replica
503       ``replication_quorum`` a push could not reach its
                                 ``sync_replicas`` quorum; fully rolled
                                 back, safe to retry
========  =====================  ==========================================
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union
from urllib.parse import parse_qs, urlsplit

from ..core.merge import AggregateSegment
from ..api.plan import Budget, ExecutionPolicy
from ..api.result import Result
from ..obs import metrics as _metrics
from ..obs import tracing as _tracing
from ..obs.logs import get_logger
from ..util.deadline import DEADLINE_HEADER, DeadlineExceeded, deadline_scope
from .durability import DurabilityError
from .query import QueryEngine, WindowBucket
from .store import (
    DEFAULT_RESYNC_JOURNAL_BYTES,
    Key,
    LRUTTLEviction,
    ReplicationError,
    ServiceError,
    SessionStore,
    StoreStats,
)
from .wire import (
    WireError,
    decode_segments,
    encode_result,
    segment_from_obj,
    segment_to_obj,
)

#: Content type of binary wire payloads on the HTTP surface.
WIRE_CONTENT_TYPE = "application/x-pta-wire"

#: Largest accepted request body in bytes (413 above this).
DEFAULT_MAX_BODY = 8 * 1024 * 1024

#: Concurrent in-flight pushes before the server answers 429.
DEFAULT_MAX_IN_FLIGHT = 64

#: Per-request socket deadline in seconds (slow clients get 400).
DEFAULT_REQUEST_TIMEOUT = 30.0

#: Content type of the Prometheus text exposition served by /metrics.
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Known GET routes, as the bounded `endpoint` label vocabulary of the
#: per-endpoint request histogram (unknown paths collapse to "other").
_GET_ENDPOINTS = frozenset(
    {
        "/healthz",
        "/metrics",
        "/range_agg",
        "/role",
        "/stats",
        "/summary",
        "/value_at",
        "/window",
    }
)

_log = get_logger("repro.service.http")


class Service:
    """The serving layer as one embeddable object: store + query engine.

    Either wrap an existing configured store
    (``Service(store=my_store)``) or let the facade build one from the
    same keyword surface as :class:`SessionStore`.

    ``max_replication_lag`` is a *serving* knob (allowed alongside a
    prebuilt store): when set, ``/healthz`` answers 503 ``degraded`` as
    soon as the slowest connected replica trails the primary by more
    than that many replicated events — the load balancer's cue to stop
    counting on the standby before a failover would lose pushes.
    """

    def __init__(
        self,
        store: Optional[SessionStore] = None,
        *,
        budget: Optional[Budget] = None,
        size: Optional[int] = None,
        max_error: Optional[float] = None,
        policy: Optional[ExecutionPolicy] = None,
        eviction: Optional[LRUTTLEviction] = None,
        max_sessions: Optional[int] = None,
        ttl: Optional[float] = None,
        session_factory: Optional[Callable[[Key], Any]] = None,
        data_dir: Optional[Union[str, "Path"]] = None,
        fsync_every: Optional[int] = None,
        checkpoint_every: Optional[int] = None,
        degrade_after: Optional[int] = None,
        reprobe_every: Optional[int] = None,
        wal_compact_factor: Optional[float] = None,
        sync_replicas: Optional[int] = None,
        resync_journal_bytes: Optional[int] = None,
        max_replication_lag: Optional[int] = None,
    ) -> None:
        if max_replication_lag is not None and max_replication_lag < 0:
            raise ServiceError(
                f"max_replication_lag must be non-negative, got "
                f"{max_replication_lag}"
            )
        self.max_replication_lag = max_replication_lag
        if store is not None:
            if (budget, size, max_error, policy, eviction, max_sessions,
                    ttl, session_factory, data_dir, fsync_every,
                    checkpoint_every, degrade_after, reprobe_every,
                    wal_compact_factor, sync_replicas,
                    resync_journal_bytes) != (None,) * 16:
                raise ServiceError(
                    "pass either a prebuilt store or store-construction "
                    "keywords, not both"
                )
            self.store = store
        else:
            self.store = SessionStore(
                budget,
                size=size,
                max_error=max_error,
                policy=policy,
                eviction=eviction,
                max_sessions=max_sessions,
                ttl=ttl,
                session_factory=session_factory,
                data_dir=data_dir,
                fsync_every=1 if fsync_every is None else fsync_every,
                checkpoint_every=checkpoint_every,
                degrade_after=3 if degrade_after is None else degrade_after,
                reprobe_every=8 if reprobe_every is None else reprobe_every,
                wal_compact_factor=wal_compact_factor,
                sync_replicas=0 if sync_replicas is None else sync_replicas,
                resync_journal_bytes=(
                    DEFAULT_RESYNC_JOURNAL_BYTES
                    if resync_journal_bytes is None
                    else resync_journal_bytes
                ),
            )
        self.engine = QueryEngine(self.store)

    def close(self) -> None:
        """Flush and close the store's durability tier (no-op if absent)."""
        self.store.close()

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def push(
        self,
        key: Key,
        segments: Union[AggregateSegment, Sequence[AggregateSegment]],
    ) -> Dict[str, int]:
        """Feed segments; returns ``{"pushed": n, "generation": g}``."""
        pushed = self.store.push(key, segments)
        return {"pushed": pushed, "generation": self.store.generation(key)}

    # ------------------------------------------------------------------
    # Read path (delegates to the query engine)
    # ------------------------------------------------------------------
    def value_at(
        self, key: Key, t: int, group: Optional[Sequence[Any]] = None
    ) -> Optional[Tuple[float, ...]]:
        return self.engine.value_at(key, t, group)

    def range_agg(
        self,
        key: Key,
        t1: int,
        t2: int,
        fn: str = "avg",
        group: Optional[Sequence[Any]] = None,
    ) -> Optional[Tuple[float, ...]]:
        return self.engine.range_agg(key, t1, t2, fn, group)

    def window(
        self,
        key: Key,
        t1: int,
        t2: int,
        stride: int,
        fn: str = "avg",
        group: Optional[Sequence[Any]] = None,
    ) -> List[WindowBucket]:
        return self.engine.window(key, t1, t2, stride, fn, group)

    def summary(self, key: Key) -> Result:
        """The combined (frozen + live) summary snapshot for ``key``."""
        return self.store.snapshot(key)

    def stats(self) -> StoreStats:
        return self.store.stats()


# ----------------------------------------------------------------------
# HTTP front end
# ----------------------------------------------------------------------
class ServiceHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`Service` instance.

    The front-end protection knobs live here: ``max_body`` bounds the
    accepted ``Content-Length`` (413 above it), ``max_in_flight`` bounds
    concurrent pushes (429 + ``Retry-After`` beyond it — queries are
    never shed), and ``request_timeout`` is the per-request socket
    deadline in seconds (``None`` disables it; slow clients get 400
    ``deadline_exceeded``).
    """

    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        service: Service,
        quiet: bool = True,
        max_body: int = DEFAULT_MAX_BODY,
        max_in_flight: int = DEFAULT_MAX_IN_FLIGHT,
        request_timeout: Optional[float] = DEFAULT_REQUEST_TIMEOUT,
    ) -> None:
        if max_body < 1:
            raise ServiceError(
                f"max_body must be at least 1 byte, got {max_body}"
            )
        if max_in_flight < 1:
            raise ServiceError(
                f"max_in_flight must be at least 1, got {max_in_flight}"
            )
        if request_timeout is not None and request_timeout <= 0:
            raise ServiceError(
                f"request_timeout must be positive, got {request_timeout}"
            )
        super().__init__(address, _Handler)
        self.service = service
        self.quiet = quiet
        self.max_body = max_body
        self.request_timeout = request_timeout
        self.push_slots = threading.BoundedSemaphore(max_in_flight)

    @property
    def port(self) -> int:
        """The bound port (useful with the ephemeral ``port=0``)."""
        return int(self.server_address[1])


class _Handler(BaseHTTPRequestHandler):
    server: ServiceHTTPServer  # narrowed for the route handlers

    def setup(self) -> None:
        # StreamRequestHandler applies self.timeout as the socket
        # deadline — every blocking read/write on this request is
        # bounded, so one slow client cannot pin a handler thread.
        self.timeout = self.server.request_timeout
        super().setup()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (stdlib casing)
        self._guarded(self._route_get)

    def do_POST(self) -> None:  # noqa: N802 (stdlib casing)
        self._guarded(self._route_post)

    def _guarded(self, route: Callable[[], None]) -> None:
        """Run a route; every failure becomes a structured JSON error.

        Order matters: :class:`DurabilityError` subclasses
        :class:`ValueError`, so the 503 arm must come before the generic
        400 arm.  Anything unexpected is logged server-side (structured,
        with the trace id) and answered with an opaque 500 — never a
        stack trace to the client.

        The whole route runs inside a trace context (header-supplied or
        minted id) and is timed into the per-endpoint latency histogram;
        an in-flight gauge brackets it.
        """
        in_flight = _metrics.gauge(
            "repro_http_in_flight", "HTTP requests currently being handled."
        )
        armed = _metrics.enabled()
        t0 = perf_counter() if armed else 0.0
        in_flight.inc()
        try:
            with _tracing.trace(self.headers.get(_tracing.TRACE_HEADER)):
                try:
                    with deadline_scope(self._deadline_budget()):
                        route()
                except ReplicationError as error:
                    # Before the generic 400 arm: a quorum failure is a
                    # ServiceError by class but a retryable 503 by
                    # nature (the write was fully rolled back).
                    self._send_error(503, str(error), "replication_quorum")
                except DurabilityError as error:
                    self._send_error(503, str(error), "durability")
                except (ServiceError, WireError, ValueError) as error:
                    self._send_error(400, str(error), "bad_request")
                except TimeoutError:
                    self.close_connection = True
                    self._send_error(
                        400, "request deadline exceeded", "deadline_exceeded"
                    )
                except Exception as error:  # noqa: BLE001 — 500 catch-all
                    _log.exception(
                        "unhandled handler exception",
                        code="internal",
                        method=self.command,
                        path=self.path,
                        error=f"{type(error).__name__}: {error}",
                    )
                    try:
                        self._send_error(
                            500, "internal server error", "internal"
                        )
                    except OSError:
                        self.close_connection = True
        finally:
            in_flight.dec()
            if armed:
                _metrics.histogram(
                    "repro_http_request_seconds",
                    "HTTP request wall time, labeled by endpoint.",
                    endpoint=self._endpoint(),
                ).observe(perf_counter() - t0)

    def _deadline_budget(self) -> Optional[float]:
        """The request's remaining end-to-end budget, if the client sent
        one (``X-Repro-Deadline``, seconds).  An already-expired budget
        fails here — before the route does any work."""
        raw = self.headers.get(DEADLINE_HEADER)
        if raw is None:
            return None
        try:
            budget = float(raw)
        except ValueError:
            raise ServiceError(
                f"invalid {DEADLINE_HEADER} header {raw!r}: expected the "
                f"remaining budget in seconds"
            ) from None
        if budget <= 0:
            raise DeadlineExceeded(
                "request deadline exceeded before handling began"
            )
        return budget

    def _endpoint(self) -> str:
        """The bounded ``endpoint`` label for this request's path."""
        path = urlsplit(self.path).path
        if path.startswith("/push/"):
            return "push"
        if path in _GET_ENDPOINTS:
            return path.lstrip("/")
        return "other"

    def _route_get(self) -> None:
        url = urlsplit(self.path)
        query = parse_qs(url.query)
        if url.path == "/healthz":
            self._handle_healthz()
        elif url.path == "/stats":
            # The store's counters plus the query engine's cache/cost
            # accounting — additive keys only, the legacy shape of
            # StoreStats.as_dict() is regression-locked.
            payload = self.server.service.stats().as_dict()
            payload["query"] = self.server.service.engine.counters()
            self._send_json(200, payload)
        elif url.path == "/metrics":
            self._send_bytes(
                200,
                _metrics.render().encode("utf-8"),
                METRICS_CONTENT_TYPE,
            )
        elif url.path == "/role":
            self._handle_role()
        elif url.path == "/value_at":
            self._handle_value_at(query)
        elif url.path == "/range_agg":
            self._handle_range_agg(query)
        elif url.path == "/window":
            self._handle_window(query)
        elif url.path == "/summary":
            self._handle_summary(query)
        else:
            self._send_error(404, f"unknown route {url.path!r}", "not_found")

    def _route_post(self) -> None:
        url = urlsplit(self.path)
        if url.path.startswith("/push/"):
            key = url.path[len("/push/"):]
            if not key:
                raise ServiceError("push requires a non-empty key")
            self._handle_push(key)
        else:
            self._send_error(404, f"unknown route {url.path!r}", "not_found")

    # ------------------------------------------------------------------
    # Route handlers
    # ------------------------------------------------------------------
    def _handle_healthz(self) -> None:
        stats = self.server.service.stats()
        limit = self.server.service.max_replication_lag
        # Per-sink lag rides along whenever sinks are registered; the
        # bare {"status": "ok"} shape without replication is
        # regression-locked.
        extra: Dict[str, Any] = (
            {"sinks": [dict(entry) for entry in stats.sinks]}
            if stats.sinks
            else {}
        )
        if stats.degraded:
            self._send_json(
                503,
                {
                    "status": "degraded",
                    "error": "durable store is in memory-only degraded "
                    "mode (disk faults); pushes are not being logged",
                    "code": "degraded",
                    **extra,
                },
            )
        elif limit is not None and stats.replication_lag > limit:
            self._send_json(
                503,
                {
                    "status": "degraded",
                    "error": f"replication lag of "
                    f"{stats.replication_lag} exceeds the threshold of "
                    f"{limit}; a failover now would lose pushes",
                    "code": "degraded",
                    **extra,
                },
            )
        else:
            self._send_json(200, {"status": "ok", **extra})

    def _handle_role(self) -> None:
        stats = self.server.service.stats()
        self._send_json(
            200,
            {
                "role": stats.role,
                "replicas": stats.replicas,
                "replication_lag": stats.replication_lag,
                "last_acked_generation": stats.last_acked_generation,
            },
        )

    def _read_push_body(self) -> bytes:
        """Read the request body, refusing abusive ``Content-Length``.

        The header is attacker-controlled: non-integers and negatives
        are 400, anything above the server's ``max_body`` is 413 —
        *before* a single body byte is read, so an oversized request
        never costs more than its headers.
        """
        raw = self.headers.get("Content-Length")
        if raw is None:
            raise ServiceError("push requires a Content-Length header")
        try:
            length = int(raw)
        except ValueError:
            raise ServiceError(
                f"invalid Content-Length {raw!r}"
            ) from None
        if length < 0:
            raise ServiceError(f"invalid Content-Length {length}")
        if length > self.server.max_body:
            self.close_connection = True  # don't drain an oversized body
            self._send_error(
                413,
                f"request body of {length} bytes exceeds the limit of "
                f"{self.server.max_body}",
                "payload_too_large",
            )
            raise _Responded()
        body = self.rfile.read(length)
        if len(body) < length:
            raise ServiceError(
                f"request body truncated: Content-Length promised "
                f"{length} bytes, got {len(body)}"
            )
        return body

    def _handle_push(self, key: str) -> None:
        if self.server.service.store.role != "primary":
            self._send_error(
                503,
                "this replica is a standby; pushes go to the primary "
                "(it applies replicated frames only)",
                "not_primary",
            )
            return
        if not self.server.push_slots.acquire(blocking=False):
            self._send_error(
                429,
                "too many in-flight pushes; retry shortly",
                "backpressure",
                headers={"Retry-After": "1"},
            )
            return
        try:
            try:
                body = self._read_push_body()
            except _Responded:
                return
            content_type = (
                self.headers.get("Content-Type") or ""
            ).split(";")[0]
            if content_type == WIRE_CONTENT_TYPE:
                segments = decode_segments(body)
            else:
                segments = _segments_from_json_body(body)
            self._send_json(200, self.server.service.push(key, segments))
        finally:
            self.server.push_slots.release()

    def _handle_value_at(self, query: Dict[str, List[str]]) -> None:
        key = _param(query, "key")
        t = int(_param(query, "t"))
        values = self.server.service.value_at(key, t, _group(query))
        self._send_json(
            200, {"t": t, "values": list(values) if values else None}
        )

    def _handle_range_agg(self, query: Dict[str, List[str]]) -> None:
        key = _param(query, "key")
        t1 = int(_param(query, "t1"))
        t2 = int(_param(query, "t2"))
        fn = _param(query, "fn", "avg")
        values = self.server.service.range_agg(key, t1, t2, fn, _group(query))
        self._send_json(
            200,
            {
                "t1": t1,
                "t2": t2,
                "fn": fn,
                "values": list(values) if values else None,
            },
        )

    def _handle_window(self, query: Dict[str, List[str]]) -> None:
        key = _param(query, "key")
        buckets = self.server.service.window(
            key,
            int(_param(query, "t1")),
            int(_param(query, "t2")),
            int(_param(query, "stride")),
            _param(query, "fn", "avg"),
            _group(query),
        )
        self._send_json(
            200,
            {
                "buckets": [
                    {
                        "start": bucket.start,
                        "end": bucket.end,
                        "values": (
                            list(bucket.values)
                            if bucket.values is not None
                            else None
                        ),
                    }
                    for bucket in buckets
                ]
            },
        )

    def _handle_summary(self, query: Dict[str, List[str]]) -> None:
        key = _param(query, "key")
        result = self.server.service.summary(key)
        if WIRE_CONTENT_TYPE in (self.headers.get("Accept") or ""):
            self._send_bytes(200, encode_result(result), WIRE_CONTENT_TYPE)
            return
        self._send_json(
            200,
            {
                "key": key,
                "size": result.size,
                "input_size": result.input_size,
                "error": result.error,
                "merges": result.merges,
                "segments": [
                    segment_to_obj(segment) for segment in result.segments
                ],
            },
        )

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _send_json(
        self,
        status: int,
        payload: Dict[str, Any],
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        self._send_bytes(
            status,
            json.dumps(payload).encode("utf-8"),
            "application/json",
            headers,
        )

    def _send_error(
        self,
        status: int,
        message: str,
        code: str,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        """The one error shape every failure path uses:
        ``{"error": message, "code": slug}``."""
        _metrics.counter(
            "repro_http_errors_total",
            "HTTP error responses, labeled by structured error code.",
            code=code,
        ).inc()
        self._send_json(
            status, {"error": message, "code": code}, headers
        )

    def _send_bytes(
        self,
        status: int,
        body: bytes,
        ctype: str,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(body)))
        trace_id = _tracing.current_trace_id()
        if trace_id is not None:
            self.send_header(_tracing.TRACE_HEADER, trace_id)
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: Any) -> None:
        if not self.server.quiet:
            _log.info(
                "http access",
                client=self.client_address[0],
                detail=format % args,
            )

    def log_error(self, format: str, *args: Any) -> None:
        # Server-side faults are logged (structured, trace-correlated)
        # even when access logs are quiet — they used to go to bare
        # stderr prints and vanished without a TTY.
        _log.error(
            "http server fault",
            client=self.client_address[0],
            detail=format % args,
        )


class _Responded(Exception):
    """Control flow marker: the handler already wrote a response."""


def _param(
    query: Dict[str, List[str]], name: str, default: Optional[str] = None
) -> str:
    values = query.get(name)
    if not values:
        if default is not None:
            return default
        raise ServiceError(f"missing required query parameter {name!r}")
    return values[0]


def _group(query: Dict[str, List[str]]) -> Optional[List[Any]]:
    raw = query.get("group")
    if not raw:
        return None
    try:
        parsed = json.loads(raw[0])
    except json.JSONDecodeError as error:
        raise ServiceError(
            f"group must be a JSON array, got {raw[0]!r}: {error}"
        ) from error
    if not isinstance(parsed, list):
        raise ServiceError(f"group must be a JSON array, got {raw[0]!r}")
    return parsed


def _segments_from_json_body(body: bytes) -> List[AggregateSegment]:
    text = body.decode("utf-8")
    try:
        parsed = json.loads(text)
    except json.JSONDecodeError:
        # Not one JSON document: treat it as JSON lines (which reports
        # per-line errors when it is not that either).
        from .wire import segments_from_jsonl

        return segments_from_jsonl(text)
    if isinstance(parsed, list):
        return [segment_from_obj(obj) for obj in parsed]
    if isinstance(parsed, dict):
        return [segment_from_obj(parsed)]
    raise ServiceError(
        "push body must be a segment object, a JSON array of them, or "
        "JSON lines"
    )


# ----------------------------------------------------------------------
# Running the server
# ----------------------------------------------------------------------
def serve(
    service: Service,
    host: str = "127.0.0.1",
    port: int = 8080,
    quiet: bool = True,
    max_body: int = DEFAULT_MAX_BODY,
    max_in_flight: int = DEFAULT_MAX_IN_FLIGHT,
    request_timeout: Optional[float] = DEFAULT_REQUEST_TIMEOUT,
) -> ServiceHTTPServer:
    """Bind the HTTP front end; call ``serve_forever()`` on the result."""
    return ServiceHTTPServer(
        (host, port),
        service,
        quiet=quiet,
        max_body=max_body,
        max_in_flight=max_in_flight,
        request_timeout=request_timeout,
    )


def start_in_background(
    service: Service,
    host: str = "127.0.0.1",
    port: int = 0,
    quiet: bool = True,
    max_body: int = DEFAULT_MAX_BODY,
    max_in_flight: int = DEFAULT_MAX_IN_FLIGHT,
    request_timeout: Optional[float] = DEFAULT_REQUEST_TIMEOUT,
) -> Tuple[ServiceHTTPServer, threading.Thread]:
    """Start the front end on a daemon thread (``port=0`` = ephemeral).

    Returns the bound server (``server.port`` tells the chosen port) and
    the serving thread; ``server.shutdown()`` stops it.
    """
    server = serve(
        service,
        host,
        port,
        quiet=quiet,
        max_body=max_body,
        max_in_flight=max_in_flight,
        request_timeout=request_timeout,
    )
    thread = threading.Thread(
        target=server.serve_forever, name="pta-service-http", daemon=True
    )
    thread.start()
    return server, thread


__all__ = [
    "DEFAULT_MAX_BODY",
    "DEFAULT_MAX_IN_FLIGHT",
    "DEFAULT_REQUEST_TIMEOUT",
    "Service",
    "ServiceHTTPServer",
    "WIRE_CONTENT_TYPE",
    "serve",
    "start_in_background",
]
