"""The serving layer: multi-session store, wire format, snapshot queries.

The paper's point is that parsimonious summaries are small enough to
*serve*.  This package is the subsystem that does so, one layer per
concern:

* :mod:`~repro.service.store` — :class:`SessionStore`, a keyed registry of
  live :class:`~repro.api.Compressor` sessions with pluggable LRU + TTL
  eviction that *freezes* evicted sessions into queryable summaries
  (pushed tuples are never dropped);
* :mod:`~repro.service.wire` — the versioned binary wire format for
  segment streams and result payloads (the sharded engine's flat column
  layout, made byte-portable) plus a JSON-lines debug encoding;
* :mod:`~repro.service.query` — :class:`QueryEngine`, answering
  ``value_at`` / ``range_agg`` / ``window`` from ``summary()`` snapshots
  via binary search and the Proposition 1/2 prefix-sum identities, with a
  per-key snapshot cache invalidated by push generation;
* :mod:`~repro.service.http` — the in-process :class:`Service` facade and
  a dependency-free ``ThreadingHTTPServer`` JSON front end;
* :mod:`~repro.service.durability` — the durability tier: per-key
  write-ahead logs, frozen epochs demoted to mmap-backed checkpoint
  files, and bit-identical crash recovery (enable with ``data_dir=``).

Quickstart::

    from repro.service import Service, start_in_background

    service = Service(size=128, max_sessions=1000, ttl=300.0)
    service.push("sensor-1", segments)
    service.range_agg("sensor-1", t1=0, t2=99, fn="avg")

    server, _ = start_in_background(service)   # JSON over HTTP
"""

from .durability import (
    Durability,
    DurabilityError,
    FrozenEpoch,
    RecoveredKey,
)
from .http import (
    Service,
    ServiceHTTPServer,
    WIRE_CONTENT_TYPE,
    serve,
    start_in_background,
)
from .query import QueryEngine, RANGE_FUNCTIONS, SnapshotIndex, WindowBucket
from .store import (
    Key,
    LRUTTLEviction,
    ReplicationError,
    ServiceError,
    SessionStore,
    StoreStats,
)
from .wire import (
    RESULT_MAGIC,
    SEGMENTS_MAGIC,
    WIRE_VERSION,
    WireError,
    decode_encoded,
    decode_result,
    decode_segments,
    encode_result,
    encode_segments,
    segments_from_jsonl,
    segments_to_jsonl,
)

__all__ = [
    "Durability",
    "DurabilityError",
    "FrozenEpoch",
    "Key",
    "LRUTTLEviction",
    "RecoveredKey",
    "ReplicationError",
    "QueryEngine",
    "RANGE_FUNCTIONS",
    "RESULT_MAGIC",
    "SEGMENTS_MAGIC",
    "Service",
    "ServiceError",
    "ServiceHTTPServer",
    "SessionStore",
    "SnapshotIndex",
    "StoreStats",
    "WIRE_CONTENT_TYPE",
    "WIRE_VERSION",
    "WindowBucket",
    "WireError",
    "decode_encoded",
    "decode_result",
    "decode_segments",
    "encode_result",
    "encode_segments",
    "segments_from_jsonl",
    "segments_to_jsonl",
    "serve",
    "start_in_background",
]
