"""Approximation baselines the paper compares PTA against."""

from .apca import APCAResult, apca
from .atc import ATCResult, atc, atc_error_sweep, exponential_bounds
from .base import (
    NotSeriesError,
    segment_count,
    segments_from_series,
    series_from_segments,
    series_sse,
    step_function_segments,
)
from .chebyshev import ChebyshevResult, chebyshev_approximate
from .dft import DFTResult, dft_approximate
from .dwt import DWTResult, dwt_approximate, dwt_approximate_to_size, haar_decompose, haar_reconstruct
from .optimal_histogram import Histogram, v_optimal_histogram, v_optimal_histogram_for_error
from .paa import PAAResult, paa
from .sax import SAXResult, gaussian_breakpoints, sax_transform

__all__ = [
    "APCAResult",
    "ATCResult",
    "ChebyshevResult",
    "DFTResult",
    "DWTResult",
    "Histogram",
    "NotSeriesError",
    "PAAResult",
    "SAXResult",
    "apca",
    "atc",
    "atc_error_sweep",
    "chebyshev_approximate",
    "dft_approximate",
    "dwt_approximate",
    "dwt_approximate_to_size",
    "exponential_bounds",
    "gaussian_breakpoints",
    "haar_decompose",
    "haar_reconstruct",
    "paa",
    "sax_transform",
    "segment_count",
    "segments_from_series",
    "series_from_segments",
    "series_sse",
    "step_function_segments",
    "v_optimal_histogram",
    "v_optimal_histogram_for_error",
]
