"""Symbolic aggregate approximation (SAX).

Lin et al. (DMKD 2007): the series is z-normalised, reduced with PAA to
``c`` segments, and each segment mean is mapped to one of ``w`` symbols whose
breakpoints are the ``w``-quantiles of the standard normal distribution, so
every symbol is (approximately) equally likely.  SAX inherits PAA's
non-adaptive segmentation; it is included for completeness of the paper's
related-work discussion (Section 2.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

import numpy as np

from .base import series_sse
from .paa import paa

#: Default SAX alphabet used when rendering words.
ALPHABET = "abcdefghijklmnopqrstuvwxyz"


@dataclass
class SAXResult:
    """A SAX representation together with its numeric reconstruction."""

    word: str
    symbols: List[int]
    approximation: np.ndarray
    breakpoints: np.ndarray
    error: float


def gaussian_breakpoints(alphabet_size: int) -> np.ndarray:
    """Breakpoints splitting N(0, 1) into ``alphabet_size`` equiprobable bins."""
    if alphabet_size < 2:
        raise ValueError(f"alphabet size must be at least 2, got {alphabet_size}")
    quantiles = [i / alphabet_size for i in range(1, alphabet_size)]
    return np.array([_normal_quantile(q) for q in quantiles])


def sax_transform(
    series: np.ndarray, segments: int, alphabet_size: int = 8
) -> SAXResult:
    """Compute the SAX word of ``series`` and a numeric reconstruction.

    The reconstruction maps every symbol back to the centre of its bin (in
    the z-normalised domain) and undoes the normalisation, providing a step
    function whose error can be compared against the other baselines.
    """
    series = np.asarray(series, dtype=float)
    if series.ndim != 1 or series.size == 0:
        raise ValueError("SAX expects a non-empty one-dimensional series")
    if alphabet_size > len(ALPHABET):
        raise ValueError(
            f"alphabet size must be at most {len(ALPHABET)}, got {alphabet_size}"
        )

    mean = float(series.mean())
    std = float(series.std())
    normalised = (series - mean) / std if std > 0 else np.zeros_like(series)

    reduced = paa(normalised, segments)
    breakpoints = gaussian_breakpoints(alphabet_size)
    bin_centres = _bin_centres(breakpoints)

    symbols: List[int] = []
    reconstruction = np.empty_like(series)
    for lo, hi in reduced.boundaries:
        segment_mean = float(reduced.approximation[lo])
        symbol = int(np.searchsorted(breakpoints, segment_mean))
        symbols.append(symbol)
        reconstruction[lo : hi + 1] = bin_centres[symbol] * (std if std > 0 else 1.0) + mean

    word = "".join(ALPHABET[symbol] for symbol in symbols)
    return SAXResult(
        word, symbols, reconstruction, breakpoints,
        series_sse(series, reconstruction),
    )


def _bin_centres(breakpoints: np.ndarray) -> np.ndarray:
    """Representative value for each SAX bin (midpoint, clamped at the tails)."""
    extended = np.concatenate(([breakpoints[0] - 1.0], breakpoints,
                               [breakpoints[-1] + 1.0]))
    return (extended[:-1] + extended[1:]) / 2.0


def _normal_quantile(probability: float) -> float:
    """Inverse CDF of the standard normal (Acklam's rational approximation)."""
    if not 0.0 < probability < 1.0:
        raise ValueError(f"probability must be in (0, 1), got {probability}")
    # Coefficients of Peter Acklam's approximation, accurate to ~1e-9.
    a = [-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
         1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00]
    b = [-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
         6.680131188771972e+01, -1.328068155288572e+01]
    c = [-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
         -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00]
    d = [7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
         3.754408661907416e+00]
    p_low = 0.02425
    if probability < p_low:
        q = math.sqrt(-2.0 * math.log(probability))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        )
    if probability > 1.0 - p_low:
        q = math.sqrt(-2.0 * math.log(1.0 - probability))
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        )
    q = probability - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
        ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0
    )
