"""Shared helpers for the approximation baselines.

The time-series baselines of the paper's evaluation (PAA, DWT, DFT, APCA,
Chebyshev, SAX) operate on plain point series: an ITA result without
aggregation groups and temporal gaps is expanded to one value per chronon,
approximated, and the approximation error is measured against that expanded
series — which is exactly the weighted SSE of Definition 5 because every
chronon of a segment carries the segment's value.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..core.merge import AggregateSegment, adjacent
from ..temporal import Interval


class NotSeriesError(ValueError):
    """Raised when segments with gaps or groups are passed to a series baseline."""


def series_from_segments(segments: Sequence[AggregateSegment]) -> np.ndarray:
    """Expand a gapless, single-group, 1-D segment list to a point series.

    Raises
    ------
    NotSeriesError
        If the segments span multiple aggregation groups, contain temporal
        gaps, or carry more than one aggregate value — the cases the paper
        notes the time-series baselines cannot handle (Section 2.2).
    """
    if not segments:
        return np.empty(0, dtype=float)
    if segments[0].dimensions != 1:
        raise NotSeriesError(
            "series baselines support exactly one aggregate dimension"
        )
    for left, right in zip(segments, segments[1:]):
        if not adjacent(left, right):
            raise NotSeriesError(
                "series baselines require a single group without temporal gaps"
            )
    values: List[float] = []
    for segment in segments:
        values.extend([segment.values[0]] * segment.length)
    return np.asarray(values, dtype=float)


def segments_from_series(
    values: Sequence[float],
    start: int = 1,
    group: tuple = (),
) -> List[AggregateSegment]:
    """Convert a point series into unit-interval segments.

    Consecutive equal values are *not* coalesced; each point becomes its own
    segment, mirroring how the paper converts UCR time series into
    sequential relations by attaching unit-length validity intervals.
    """
    return [
        AggregateSegment(group, (float(value),), Interval(start + i, start + i))
        for i, value in enumerate(values)
    ]


def step_function_segments(
    approximation: np.ndarray,
    start: int = 1,
    group: tuple = (),
) -> List[AggregateSegment]:
    """Convert a step-function approximation into maximal constant segments."""
    segments: List[AggregateSegment] = []
    if approximation.size == 0:
        return segments
    run_start = 0
    for index in range(1, approximation.size + 1):
        if (
            index == approximation.size
            or approximation[index] != approximation[run_start]
        ):
            segments.append(
                AggregateSegment(
                    group,
                    (float(approximation[run_start]),),
                    Interval(start + run_start, start + index - 1),
                )
            )
            run_start = index
    return segments


def series_sse(original: np.ndarray, approximation: np.ndarray) -> float:
    """Sum squared error between a series and its approximation."""
    original = np.asarray(original, dtype=float)
    approximation = np.asarray(approximation, dtype=float)
    if original.shape != approximation.shape:
        raise ValueError(
            f"shape mismatch: {original.shape} vs {approximation.shape}"
        )
    return float(np.sum((original - approximation) ** 2))


def segment_count(approximation: np.ndarray) -> int:
    """Number of constant-value runs in a step-function approximation."""
    if approximation.size == 0:
        return 0
    changes = np.sum(approximation[1:] != approximation[:-1])
    return int(changes) + 1
