"""Piecewise aggregate approximation (PAA).

Keogh & Pazzani (PAKDD 2000) and Yi & Faloutsos ("segmented means",
VLDB 2000): the series is split into ``c`` segments of (nearly) equal length
and each segment is replaced by its mean value.  PAA is not data-adaptive —
the segment boundaries ignore where the series actually changes — which is
exactly why PTA outperforms it in the paper's quality experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from .base import series_sse


@dataclass
class PAAResult:
    """A PAA approximation: the step function and its segment boundaries."""

    approximation: np.ndarray
    boundaries: List[Tuple[int, int]]
    error: float

    @property
    def size(self) -> int:
        return len(self.boundaries)


def paa(series: np.ndarray, segments: int) -> PAAResult:
    """Approximate ``series`` with ``segments`` equal-length mean segments.

    Parameters
    ----------
    series:
        One-dimensional input series.
    segments:
        Number of output segments ``c``; clamped to the series length.
    """
    series = np.asarray(series, dtype=float)
    if series.ndim != 1:
        raise ValueError("PAA expects a one-dimensional series")
    if segments < 1:
        raise ValueError(f"segment count must be positive, got {segments}")
    n = series.size
    segments = min(segments, n)

    # Segment k covers [floor(k*n/c), floor((k+1)*n/c)) which distributes the
    # remainder evenly, the standard PAA formulation for n not divisible by c.
    edges = [(k * n) // segments for k in range(segments + 1)]
    approximation = np.empty_like(series)
    boundaries: List[Tuple[int, int]] = []
    for k in range(segments):
        lo, hi = edges[k], edges[k + 1]
        approximation[lo:hi] = series[lo:hi].mean()
        boundaries.append((lo, hi - 1))
    return PAAResult(approximation, boundaries, series_sse(series, approximation))
