"""Chebyshev polynomial approximation.

Cai & Ng (SIGMOD 2004) index time series by the first ``k`` Chebyshev
coefficients; the restored signal is a continuous polynomial that minimises
the maximum deviation rather than the total squared error (Fig. 2(d) of the
paper).  The paper compares the restored series against PTA reductions with
the same number of intervals; this module provides that restored series.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy.polynomial import chebyshev as cheb

from .base import series_sse


@dataclass
class ChebyshevResult:
    """A Chebyshev-polynomial approximation of a series."""

    approximation: np.ndarray
    coefficients: np.ndarray
    error: float


def chebyshev_approximate(series: np.ndarray, coefficients: int) -> ChebyshevResult:
    """Fit ``series`` with the first ``coefficients`` Chebyshev terms.

    The series index is mapped onto the canonical domain ``[-1, 1]`` and a
    least-squares Chebyshev fit of degree ``coefficients - 1`` is evaluated
    back on the original index positions.
    """
    series = np.asarray(series, dtype=float)
    if series.ndim != 1 or series.size == 0:
        raise ValueError("Chebyshev expects a non-empty one-dimensional series")
    if coefficients < 1:
        raise ValueError(f"coefficient count must be positive, got {coefficients}")

    n = series.size
    degree = min(coefficients - 1, n - 1)
    if n == 1:
        domain = np.zeros(1)
    else:
        domain = np.linspace(-1.0, 1.0, n)
    fitted = cheb.chebfit(domain, series, degree)
    approximation = cheb.chebval(domain, fitted)
    return ChebyshevResult(
        approximation, fitted, series_sse(series, approximation)
    )
