"""Adaptive piecewise constant approximation (APCA).

Chakrabarti et al. (TODS 2002) combine DWT and greedy merging: the series is
reconstructed from its ``c`` most significant Haar coefficients (which can
yield up to ``3c`` segments), every reconstructed segment is replaced by the
true mean of the underlying data, and the most similar adjacent segments are
greedily merged until exactly ``c`` segments remain (Fig. 2(f) of the
paper).  APCA is data-adaptive, but the non-adaptive wavelet decomposition
underneath still breaks constant runs apart, which is why PTA's greedy
algorithms beat it on ITA results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from .base import series_sse
from .dwt import dwt_approximate


@dataclass
class APCAResult:
    """An APCA approximation: step function plus its segment boundaries."""

    approximation: np.ndarray
    boundaries: List[Tuple[int, int]]
    error: float

    @property
    def size(self) -> int:
        return len(self.boundaries)


def apca(series: np.ndarray, segments: int) -> APCAResult:
    """Approximate ``series`` with ``segments`` adaptive constant segments."""
    series = np.asarray(series, dtype=float)
    if series.ndim != 1 or series.size == 0:
        raise ValueError("APCA expects a non-empty one-dimensional series")
    if segments < 1:
        raise ValueError(f"segment count must be positive, got {segments}")
    segments = min(segments, series.size)

    # Step 1: segment boundaries proposed by the truncated wavelet transform.
    wavelet = dwt_approximate(series, segments)
    boundaries = _segment_boundaries(wavelet.approximation)

    # Step 2: replace every segment value by the true mean of the data.
    means = [float(series[lo : hi + 1].mean()) for lo, hi in boundaries]
    lengths = [hi - lo + 1 for lo, hi in boundaries]

    # Step 3: greedily merge the most similar adjacent segments down to c.
    while len(boundaries) > segments:
        best_index = None
        best_cost = np.inf
        for i in range(len(boundaries) - 1):
            cost = _merge_cost(
                means[i], lengths[i], means[i + 1], lengths[i + 1]
            )
            if cost < best_cost:
                best_cost = cost
                best_index = i
        i = best_index
        total = lengths[i] + lengths[i + 1]
        means[i] = (means[i] * lengths[i] + means[i + 1] * lengths[i + 1]) / total
        lengths[i] = total
        boundaries[i] = (boundaries[i][0], boundaries[i + 1][1])
        del means[i + 1], lengths[i + 1], boundaries[i + 1]

    approximation = np.empty_like(series)
    for (lo, hi), mean in zip(boundaries, means):
        approximation[lo : hi + 1] = mean
    return APCAResult(approximation, boundaries, series_sse(series, approximation))


def _segment_boundaries(step_function: np.ndarray) -> List[Tuple[int, int]]:
    boundaries: List[Tuple[int, int]] = []
    run_start = 0
    for index in range(1, step_function.size + 1):
        if (
            index == step_function.size
            or step_function[index] != step_function[run_start]
        ):
            boundaries.append((run_start, index - 1))
            run_start = index
    return boundaries


def _merge_cost(
    left_mean: float, left_length: int, right_mean: float, right_length: int
) -> float:
    """Additional SSE of merging two constant segments (same form as dsim)."""
    return (
        left_length
        * right_length
        / (left_length + right_length)
        * (left_mean - right_mean) ** 2
    )
