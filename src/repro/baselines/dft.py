"""Discrete Fourier transform approximation.

Keeping only the ``k`` largest-magnitude Fourier coefficients (together with
their conjugate partners, so the reconstruction stays real) yields a smooth
continuous approximation of the series (Fig. 2(c) of the paper).  DFT cannot
produce the step function PTA requires, so the paper only uses it as a
quality reference; we do the same.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import series_sse


@dataclass
class DFTResult:
    """A truncated-spectrum Fourier approximation of a series."""

    approximation: np.ndarray
    coefficients_kept: int
    error: float


def dft_approximate(series: np.ndarray, coefficients: int) -> DFTResult:
    """Approximate ``series`` keeping the ``coefficients`` largest DFT terms.

    Coefficient selection works on the real FFT spectrum; each retained
    frequency accounts for one coefficient (the symmetric negative frequency
    is implied), matching the usual "k coefficients" convention of the time
    series literature.
    """
    series = np.asarray(series, dtype=float)
    if series.ndim != 1 or series.size == 0:
        raise ValueError("DFT expects a non-empty one-dimensional series")
    if coefficients < 1:
        raise ValueError(f"coefficient count must be positive, got {coefficients}")

    spectrum = np.fft.rfft(series)
    keep = min(coefficients, spectrum.size)
    order = np.argsort(-np.abs(spectrum), kind="stable")[:keep]
    filtered = np.zeros_like(spectrum)
    filtered[order] = spectrum[order]
    reconstructed = np.fft.irfft(filtered, n=series.size)
    return DFTResult(reconstructed, keep, series_sse(series, reconstructed))
