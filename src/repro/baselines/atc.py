"""Approximate temporal coalescing (ATC).

Berberich et al. (SIGIR 2007) reduce a temporal relation by scanning
temporally adjacent tuples of the same group and merging each incoming tuple
into the current run whenever the *local* error of doing so stays below a
user-given threshold.  Unlike PTA, merging decisions are made from local
information only and the bound is per merge rather than global, which is why
its total error is less predictable (Section 2.1 of the paper).

ATC naturally supports aggregation groups and temporal gaps, so it is the
strongest baseline in the paper's quality comparison and the only one that
can run on the grouped queries (I1–I3, E4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..core.errors import Weights, pairwise_merge_error
from ..core.merge import AggregateSegment, adjacent, merge


@dataclass
class ATCResult:
    """Result of an ATC reduction."""

    segments: List[AggregateSegment]
    error: float
    size: int

    def __iter__(self):
        return iter(self.segments)


def atc(
    segments: Sequence[AggregateSegment],
    local_error_bound: float,
    weights: Weights | None = None,
) -> ATCResult:
    """Reduce ``segments`` with approximate temporal coalescing.

    Parameters
    ----------
    segments:
        The ITA result in group-then-time order.
    local_error_bound:
        Maximal additional SSE a single merge step may introduce; a merge is
        performed whenever attaching the incoming tuple to the current run
        keeps the run's accumulated error within this bound.
    """
    if local_error_bound < 0:
        raise ValueError(
            f"local error bound must be non-negative, got {local_error_bound}"
        )
    segments = list(segments)
    if not segments:
        return ATCResult([], 0.0, 0)

    output: List[AggregateSegment] = []
    current = segments[0]
    current_error = 0.0
    total_error = 0.0
    for segment in segments[1:]:
        if adjacent(current, segment):
            step_error = pairwise_merge_error(current, segment, weights)
            if current_error + step_error <= local_error_bound:
                current = merge(current, segment)
                current_error += step_error
                continue
        output.append(current)
        total_error += current_error
        current = segment
        current_error = 0.0
    output.append(current)
    total_error += current_error

    # By Proposition 2 the pairwise merge errors accumulated per run add up
    # to exactly SSE(segments, output), so no second pass is needed.
    return ATCResult(output, total_error, len(output))


def atc_error_sweep(
    segments: Sequence[AggregateSegment],
    bounds: Sequence[float],
    weights: Weights | None = None,
) -> dict:
    """Run ATC for several local error bounds and index results by output size.

    For the size-versus-error comparison of Fig. 15 the paper generates a
    list of exponentially decaying error bounds and, when two bounds produce
    results of the same size, keeps the one with the smaller total error.
    This helper reproduces that procedure.
    """
    by_size: dict = {}
    for bound in bounds:
        result = atc(segments, bound, weights)
        existing = by_size.get(result.size)
        if existing is None or result.error < existing.error:
            by_size[result.size] = result
    return by_size


def exponential_bounds(
    maximum: float, count: int = 40, decay: float = 0.7
) -> List[float]:
    """Generate exponentially decaying local error bounds for the sweep."""
    if maximum <= 0:
        return [0.0]
    return [maximum * decay**index for index in range(count)] + [0.0]
