"""Discrete wavelet transform (Haar) approximation.

The Haar DWT recursively averages neighbouring values and stores the detail
coefficients needed to undo each averaging step.  An approximation keeps only
the ``k`` most influential coefficients (largest normalised magnitude) and
reconstructs a step function from them.  As the paper notes, the input has to
be padded to a power of two and the transform may break apart constant-value
runs, both of which hurt its approximation quality on ITA results
(Section 2.2, Fig. 2(b)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .base import segment_count, series_sse


@dataclass
class DWTResult:
    """A Haar-wavelet approximation of a series."""

    approximation: np.ndarray
    coefficients_kept: int
    error: float

    @property
    def size(self) -> int:
        """Number of constant segments in the reconstructed step function."""
        return segment_count(self.approximation)


def haar_decompose(series: np.ndarray) -> np.ndarray:
    """Full Haar decomposition of a power-of-two length series.

    Returns the coefficient vector ``[overall average, details...]`` using
    the orthonormal normalisation (each averaging level scales by √2), so
    that coefficient magnitudes are comparable across levels when selecting
    the most influential ones.
    """
    series = np.asarray(series, dtype=float)
    n = series.size
    if n == 0 or n & (n - 1):
        raise ValueError(f"Haar decomposition requires a power-of-two length, got {n}")
    coefficients = series.copy()
    length = n
    while length > 1:
        half = length // 2
        evens = coefficients[0:length:2]
        odds = coefficients[1:length:2]
        averages = (evens + odds) / np.sqrt(2.0)
        details = (evens - odds) / np.sqrt(2.0)
        coefficients[:half] = averages
        coefficients[half:length] = details
        length = half
    return coefficients


def haar_reconstruct(coefficients: np.ndarray) -> np.ndarray:
    """Invert :func:`haar_decompose`."""
    coefficients = np.asarray(coefficients, dtype=float)
    n = coefficients.size
    if n == 0 or n & (n - 1):
        raise ValueError(f"Haar reconstruction requires a power-of-two length, got {n}")
    series = coefficients.copy()
    length = 1
    while length < n:
        averages = series[:length].copy()
        details = series[length : 2 * length].copy()
        evens = (averages + details) / np.sqrt(2.0)
        odds = (averages - details) / np.sqrt(2.0)
        series[0 : 2 * length : 2] = evens
        series[1 : 2 * length : 2] = odds
        length *= 2
    return series


def dwt_approximate(series: np.ndarray, coefficients: int) -> DWTResult:
    """Approximate ``series`` keeping the ``coefficients`` largest Haar terms.

    The series is padded with its last value up to the next power of two,
    transformed, thresholded to the requested number of non-zero
    coefficients, reconstructed and truncated back to the original length.
    """
    series = np.asarray(series, dtype=float)
    if series.ndim != 1 or series.size == 0:
        raise ValueError("DWT expects a non-empty one-dimensional series")
    if coefficients < 1:
        raise ValueError(f"coefficient count must be positive, got {coefficients}")

    n = series.size
    padded_length = 1 << (n - 1).bit_length()
    padded = np.concatenate([series, np.full(padded_length - n, series[-1])])
    spectrum = haar_decompose(padded)

    keep = min(coefficients, spectrum.size)
    threshold_order = np.argsort(-np.abs(spectrum), kind="stable")[:keep]
    filtered = np.zeros_like(spectrum)
    filtered[threshold_order] = spectrum[threshold_order]
    reconstructed = haar_reconstruct(filtered)[:n]
    # Snap tiny floating point wiggles so segment counting is meaningful.
    reconstructed = np.round(reconstructed, 10)
    return DWTResult(
        reconstructed, keep, series_sse(series, reconstructed)
    )


def dwt_approximate_to_size(
    series: np.ndarray, size: int, max_coefficients: Optional[int] = None
) -> DWTResult:
    """Best DWT approximation whose step function has at most ``size`` segments.

    There is no direct relationship between the number of retained
    coefficients and the number of segments in the reconstruction, so —
    following the methodology described for Fig. 15 — all coefficient counts
    are tried and, among those yielding at most ``size`` segments, the one
    with the smallest error is returned.
    """
    series = np.asarray(series, dtype=float)
    if max_coefficients is None:
        max_coefficients = series.size
    best: DWTResult | None = None
    for k in range(1, max_coefficients + 1):
        candidate = dwt_approximate(series, k)
        if candidate.size <= size and (best is None or candidate.error < best.error):
            best = candidate
    if best is None:
        best = dwt_approximate(series, 1)
    return best
