"""V-optimal histograms (Jagadish et al., VLDB 1998).

The paper's dynamic-programming scheme "emanates from" the optimal histogram
construction of Jagadish et al. and extends it to multi-dimensional data with
temporal gaps and aggregation groups (Section 2.3).  This module exposes the
one-dimensional original as a thin wrapper over the PTA DP engine applied to
unit-length, single-group segments, both as a baseline and as a sanity check
that the extension degenerates to the classical algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..core import dp
from ..core.merge import AggregateSegment
from .base import segments_from_series


@dataclass
class Histogram:
    """A V-optimal histogram: bucket boundaries, means and total SSE."""

    buckets: List[Tuple[int, int, float]]
    error: float

    @property
    def size(self) -> int:
        return len(self.buckets)


def v_optimal_histogram(values: Sequence[float], buckets: int) -> Histogram:
    """Partition ``values`` into ``buckets`` buckets minimising the SSE.

    Each bucket is reported as ``(first_index, last_index, mean)`` with
    0-based inclusive indices into ``values``.
    """
    values = list(values)
    if not values:
        return Histogram([], 0.0)
    if buckets < 1:
        raise ValueError(f"bucket count must be positive, got {buckets}")
    segments = segments_from_series(values, start=0)
    result = dp.reduce_to_size(segments, min(buckets, len(values)))
    return Histogram(_to_buckets(result.segments), result.error)


def v_optimal_histogram_for_error(
    values: Sequence[float], epsilon: float
) -> Histogram:
    """Smallest V-optimal histogram whose SSE stays within ``ε · SSE_max``."""
    values = list(values)
    if not values:
        return Histogram([], 0.0)
    segments = segments_from_series(values, start=0)
    result = dp.reduce_to_error(segments, epsilon)
    return Histogram(_to_buckets(result.segments), result.error)


def _to_buckets(
    segments: Sequence[AggregateSegment],
) -> List[Tuple[int, int, float]]:
    return [
        (segment.interval.start, segment.interval.end, segment.values[0])
        for segment in segments
    ]
