"""Streaming compression pipeline for parsimonious temporal aggregation.

.. note::
   The canonical, typed surface of the engine is :mod:`repro.api`
   (``Plan`` / ``execute`` / ``Compressor``); :func:`compress` is kept as
   the historical one-call door and is a thin shim that builds a
   :class:`repro.api.Plan` and hands it to :func:`repro.api.execute`.

:func:`compress` accepts either a raw
:class:`~repro.temporal.TemporalRelation` (which is aggregated with ITA on
the fly) or any iterable of :class:`~repro.core.merge.AggregateSegment`
objects (an already aggregated relation, a time series converted to unit
segments, or a live generator), and reduces it under a size bound ``size``
or a relative error bound ``max_error`` (``error`` is accepted as an alias
for symmetry with the historical :func:`repro.pta` spelling).

The default ``method="greedy"`` keeps the pipeline *streaming*: segments are
pulled from the source in chunks of ``chunk_size`` and fed one by one into
the online algorithms ``gPTAc`` / ``gPTAε`` (Section 6 of the paper), so
the input is never materialised and memory stays bounded by the merge heap
(``c + β`` tuples) plus one chunk buffer.  ``chunk_size`` only controls how
eagerly the producer is driven — the merge policy stays tuple-at-a-time, so
the result is identical for every chunk size and for streaming versus batch
delivery.  ``method="dp"`` computes the exact optimum instead, which
requires materialising the stream (Section 5).

Both methods accept ``backend="python"`` (reference implementation) or
``backend="numpy"`` (vectorized kernels, :mod:`repro.core.kernels`); the two
backends produce identical reductions.

Passing ``workers=N`` switches the greedy method to the sharded multiprocess
engine of :mod:`repro.parallel`: the stream is materialised into flat
arrays, cut into independent shards at maximal-run boundaries, reduced
shard-by-shard on a process pool and reconciled under the global size or
error budget.  The result is the plain greedy merging strategy (the online
result with ``δ = ∞``) and is bit-identical for every worker count; see the
module docstring of :mod:`repro.parallel` for the exact semantics.

Typical usage::

    from repro import Interval, TemporalRelation
    from repro.pipeline import compress

    result = compress(relation, group_by=["proj"],
                      aggregates={"avg_sal": ("avg", "sal")}, size=4)
    for segment in result:
        print(segment)

    # Streaming: reduce an unbounded generator of segments online.
    result = compress(sensor_segments(), size=100)

    # Scale out: shard the reduction across every core.
    result = compress(big_segment_list, size=10_000, workers=0)
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .aggregation.functions import AggregatesLike
from .api import (
    DEFAULT_CHUNK_SIZE,
    ExecutionPolicy,
    Plan,
    Result,
    execute,
    iter_chunks,
    resolve_error_alias,
)
from .core import greedy
from .core.errors import Weights
from .core.merge import AggregateSegment
from .temporal import TemporalRelation

#: The unified result type; an alias of :class:`repro.api.Result`, kept
#: under its historical name for backwards compatibility.
CompressionResult = Result


def compress(
    records: TemporalRelation | Iterable[AggregateSegment],
    *,
    group_by: Sequence[str] = (),
    aggregates: AggregatesLike = (),
    size: int | None = None,
    max_error: float | None = None,
    error: float | None = None,
    method: str = "greedy",
    backend: str = "python",
    delta: greedy.Delta = 1,
    weights: Weights | None = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    input_size_estimate: int | None = None,
    max_error_estimate: float | None = None,
    workers: int | None = None,
    cluster: Sequence[str] | None = None,
    shard_size: int | None = None,
) -> CompressionResult:
    """Compress a temporal relation or segment stream with PTA.

    Exactly one of ``size`` (the output size bound ``c``) and ``max_error``
    (the relative error bound ``ε`` in ``[0, 1]``) must be given; ``error``
    is accepted as a legacy alias of ``max_error``.

    Parameters
    ----------
    records:
        A :class:`TemporalRelation` (aggregated with ITA using ``group_by``
        and ``aggregates`` before reduction) or an iterable of
        :class:`AggregateSegment` in group-then-time order.  Iterables are
        consumed lazily in chunks of ``chunk_size``; generators therefore
        never need full materialisation when ``method="greedy"``.
    method:
        ``"greedy"`` (default) for the online algorithms ``gPTAc``/``gPTAε``
        with bounded memory, ``"dp"`` for the exact optimum (materialises
        the stream).
    backend:
        ``"python"`` or ``"numpy"`` — see :mod:`repro.core.kernels`.
    delta:
        Greedy read-ahead parameter ``δ`` (ignored by ``method="dp"``).
    chunk_size:
        Number of segments pulled from the source per pipeline step.  A
        producer-side buffering knob only: results are identical for every
        value (the online merge policy stays tuple-at-a-time).
    input_size_estimate / max_error_estimate:
        Estimates ``n̂`` and ``Êmax`` enabling early merging in ``gPTAε``
        (Section 6.3).  Derived automatically when ``records`` is a relation
        or a materialised sequence; for opaque generators they default to
        ``None``, which is always correct but lets the heap grow.
    workers:
        ``None`` (default) keeps the single-process online evaluation.  Any
        integer switches to the sharded engine of :mod:`repro.parallel`:
        ``0`` uses every core, ``1`` runs the shards in-process, ``N > 1``
        dispatches them on an ``N``-wide process pool.  Requires
        ``method="greedy"``; the result is plain GMS (the online result
        with ``δ = ∞``, so ``delta`` does not apply) and is bit-identical
        for every worker count.  The engine always runs on the array
        kernels, so the reported backend is ``"numpy"``.
    cluster:
        ``"host:port"`` addresses of remote reducer workers
        (:mod:`repro.cluster.worker`).  Switches to the distributed
        engine: the same shard plan and reconciliation as ``workers``,
        with shards shipped to the cluster over the wire and reduced
        locally only as a last-resort fallback.  Mutually exclusive
        with ``workers``; requires ``method="greedy"``; bit-identical
        to every ``workers`` value regardless of worker placement,
        cluster size or mid-job worker death.
    shard_size:
        Segments per shard for the sharded engine (default
        :data:`repro.parallel.DEFAULT_SHARD_SIZE`).  A work-distribution
        knob only.
    """
    epsilon = resolve_error_alias(error, max_error)
    plan = Plan(records)
    if group_by:
        plan = plan.group_by(*group_by)
    if aggregates:
        plan = plan.aggregate(aggregates)
    plan = plan.reduce(size=size, max_error=epsilon, method=method)
    policy = ExecutionPolicy(
        backend=backend,
        workers=workers,
        cluster=tuple(cluster) if cluster is not None else None,
        shard_size=shard_size,
        chunk_size=chunk_size,
        delta=delta,
        weights=weights,
        input_size_estimate=input_size_estimate,
        max_error_estimate=max_error_estimate,
    )
    return execute(plan, policy)


__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "CompressionResult",
    "compress",
    "iter_chunks",
]
