"""Streaming compression pipeline for parsimonious temporal aggregation.

:func:`compress` is the one-call facade over the whole PTA stack: it accepts
either a raw :class:`~repro.temporal.TemporalRelation` (which is aggregated
with ITA on the fly) or any iterable of
:class:`~repro.core.merge.AggregateSegment` objects (an already aggregated
relation, a time series converted to unit segments, or a live generator),
and reduces it under a size bound ``size`` or a relative error bound
``max_error``.

The default ``method="greedy"`` keeps the pipeline *streaming*: segments are
pulled from the source in chunks of ``chunk_size`` and fed one by one into
the online algorithms ``gPTAc`` / ``gPTAε`` (Section 6 of the paper), so
the input is never materialised and memory stays bounded by the merge heap
(``c + β`` tuples) plus one chunk buffer.  ``chunk_size`` only controls how
eagerly the producer is driven — the merge policy stays tuple-at-a-time, so
the result is identical for every chunk size and for streaming versus batch
delivery.  ``method="dp"`` computes the exact optimum instead, which
requires materialising the stream (Section 5).

Both methods accept ``backend="python"`` (reference implementation) or
``backend="numpy"`` (vectorized kernels, :mod:`repro.core.kernels`); the two
backends produce identical reductions.

Passing ``workers=N`` switches the greedy method to the sharded multiprocess
engine of :mod:`repro.parallel`: the stream is materialised into flat
arrays, cut into independent shards at maximal-run boundaries, reduced
shard-by-shard on a process pool and reconciled under the global size or
error budget.  The result is the plain greedy merging strategy (the online
result with ``δ = ∞``) and is bit-identical for every worker count; see the
module docstring of :mod:`repro.parallel` for the exact semantics.

Typical usage::

    from repro import Interval, TemporalRelation
    from repro.pipeline import compress

    result = compress(relation, group_by=["proj"],
                      aggregates={"avg_sal": ("avg", "sal")}, size=4)
    for segment in result:
        print(segment)

    # Streaming: reduce an unbounded generator of segments online.
    result = compress(sensor_segments(), size=100)

    # Scale out: shard the reduction across every core.
    result = compress(big_segment_list, size=10_000, workers=0)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, List, Sequence

from .aggregation import iter_ita_segments
from .aggregation.functions import AggregatesLike
from .core import dp, greedy
from .core.errors import Weights
from .core.errors import max_error as exact_max_error
from .core.merge import AggregateSegment
from .temporal import TemporalRelation

#: Default number of segments pulled from the source per pipeline step.
#: Deliberately modest: the chunk buffer adds to the ``c + β`` heap bound,
#: so it should not dwarf typical output sizes.
DEFAULT_CHUNK_SIZE = 256


@dataclass
class CompressionResult:
    """Result of a :func:`compress` call, uniform across methods.

    Attributes
    ----------
    segments:
        The reduced relation in group-then-time order.
    error:
        Total SSE introduced with respect to the (conceptual) ITA input.
    size:
        Number of output segments.
    input_size:
        Number of ITA tuples consumed from the source.
    method / backend:
        The evaluation strategy and kernel backend that produced the result.
    max_heap_size:
        Largest number of tuples simultaneously buffered by the greedy merge
        heap (0 for the DP method, which materialises the input instead).
    merges:
        Number of merge steps performed (greedy method only).
    """

    segments: List[AggregateSegment] = field(default_factory=list)
    error: float = 0.0
    size: int = 0
    input_size: int = 0
    method: str = "greedy"
    backend: str = "python"
    max_heap_size: int = 0
    merges: int = 0

    def __iter__(self):
        return iter(self.segments)

    def __len__(self) -> int:
        return self.size


def compress(
    records: TemporalRelation | Iterable[AggregateSegment],
    *,
    group_by: Sequence[str] = (),
    aggregates: AggregatesLike = (),
    size: int | None = None,
    max_error: float | None = None,
    method: str = "greedy",
    backend: str = "python",
    delta: greedy.Delta = 1,
    weights: Weights | None = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    input_size_estimate: int | None = None,
    max_error_estimate: float | None = None,
    workers: int | None = None,
    shard_size: int | None = None,
) -> CompressionResult:
    """Compress a temporal relation or segment stream with PTA.

    Exactly one of ``size`` (the output size bound ``c``) and ``max_error``
    (the relative error bound ``ε`` in ``[0, 1]``) must be given.

    Parameters
    ----------
    records:
        A :class:`TemporalRelation` (aggregated with ITA using ``group_by``
        and ``aggregates`` before reduction) or an iterable of
        :class:`AggregateSegment` in group-then-time order.  Iterables are
        consumed lazily in chunks of ``chunk_size``; generators therefore
        never need full materialisation when ``method="greedy"``.
    method:
        ``"greedy"`` (default) for the online algorithms ``gPTAc``/``gPTAε``
        with bounded memory, ``"dp"`` for the exact optimum (materialises
        the stream).
    backend:
        ``"python"`` or ``"numpy"`` — see :mod:`repro.core.kernels`.
    delta:
        Greedy read-ahead parameter ``δ`` (ignored by ``method="dp"``).
    chunk_size:
        Number of segments pulled from the source per pipeline step.  A
        producer-side buffering knob only: results are identical for every
        value (the online merge policy stays tuple-at-a-time).
    input_size_estimate / max_error_estimate:
        Estimates ``n̂`` and ``Êmax`` enabling early merging in ``gPTAε``
        (Section 6.3).  Derived automatically when ``records`` is a relation
        or a materialised sequence; for opaque generators they default to
        ``None``, which is always correct but lets the heap grow.
    workers:
        ``None`` (default) keeps the single-process online evaluation.  Any
        integer switches to the sharded engine of :mod:`repro.parallel`:
        ``0`` uses every core, ``1`` runs the shards in-process, ``N > 1``
        dispatches them on an ``N``-wide process pool.  Requires
        ``method="greedy"``; the result is plain GMS (the online result
        with ``δ = ∞``, so ``delta`` does not apply) and is bit-identical
        for every worker count.  The engine always runs on the array
        kernels, so the reported backend is ``"numpy"``.
    shard_size:
        Segments per shard for the sharded engine (default
        :data:`repro.parallel.DEFAULT_SHARD_SIZE`).  A work-distribution
        knob only.
    """
    if (size is None) == (max_error is None):
        raise ValueError("provide exactly one of 'size' and 'max_error'")
    if method not in ("dp", "greedy"):
        raise ValueError(f"method must be 'dp' or 'greedy', got {method!r}")
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be at least 1, got {chunk_size}")
    if workers is not None and method != "greedy":
        raise ValueError(
            "workers is only supported for method='greedy'; the exact DP "
            "optimum couples the shards through the global output budget"
        )

    stream, input_size_estimate, max_error_estimate = _open_source(
        records,
        group_by,
        aggregates,
        weights,
        need_estimates=(
            max_error is not None and method == "greedy" and workers is None
        ),
        input_size_estimate=input_size_estimate,
        max_error_estimate=max_error_estimate,
    )

    if workers is not None:
        from .parallel import reduce_segments_parallel

        result = reduce_segments_parallel(
            stream,
            size=size,
            max_error=max_error,
            weights=weights,
            workers=workers,
            shard_size=shard_size,
        )
        return CompressionResult(
            segments=result.segments,
            error=result.error,
            size=result.size,
            input_size=result.input_size,
            method=method,
            backend="numpy",
            max_heap_size=result.max_heap_size,
            merges=result.merges,
        )

    if method == "dp":
        segments = list(stream)
        if size is not None:
            result = dp.reduce_to_size(segments, size, weights, backend=backend)
        else:
            result = dp.reduce_to_error(
                segments, max_error, weights, backend=backend
            )
        return CompressionResult(
            segments=result.segments,
            error=result.error,
            size=result.size,
            input_size=len(segments),
            method=method,
            backend=backend,
        )

    chunked = _rechunk(stream, chunk_size)
    if size is not None:
        result = greedy.greedy_reduce_to_size(
            chunked, size, delta, weights, backend=backend
        )
    else:
        result = greedy.greedy_reduce_to_error(
            chunked,
            max_error,
            delta,
            weights,
            input_size_estimate=input_size_estimate,
            max_error_estimate=max_error_estimate,
            backend=backend,
        )
    return CompressionResult(
        segments=result.segments,
        error=result.error,
        size=result.size,
        input_size=result.input_size,
        method=method,
        backend=backend,
        max_heap_size=result.max_heap_size,
        merges=result.merges,
    )


def iter_chunks(
    source: Iterable[Any], chunk_size: int
) -> Iterator[List[Any]]:
    """Split ``source`` into lists of at most ``chunk_size`` items.

    The building block of the streaming pipeline; exposed for tests and for
    callers that want to drive the chunking themselves.
    """
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be at least 1, got {chunk_size}")
    chunk: List[Any] = []
    for item in source:
        chunk.append(item)
        if len(chunk) >= chunk_size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


# ----------------------------------------------------------------------
# Internals
# ----------------------------------------------------------------------
def _open_source(
    records,
    group_by: Sequence[str],
    aggregates: AggregatesLike,
    weights: Weights | None,
    need_estimates: bool,
    input_size_estimate: int | None,
    max_error_estimate: float | None,
):
    """Normalise ``records`` into a segment iterator plus gPTAε estimates."""
    from .core.pta import estimate_max_error

    if isinstance(records, TemporalRelation):
        stream: Iterable[AggregateSegment] = iter_ita_segments(
            records, group_by, aggregates
        )
        if need_estimates:
            if input_size_estimate is None:
                input_size_estimate = max(2 * len(records) - 1, 1)
            if max_error_estimate is None:
                max_error_estimate = estimate_max_error(
                    records, group_by, aggregates, weights=weights
                )
        return stream, input_size_estimate, max_error_estimate

    if group_by or aggregates:
        raise ValueError(
            "group_by/aggregates only apply when compressing a "
            "TemporalRelation; segment streams are already aggregated"
        )
    if isinstance(records, (list, tuple)):
        # Materialised input: the exact values are cheap, use them.
        if need_estimates:
            if input_size_estimate is None:
                input_size_estimate = max(len(records), 1)
            if max_error_estimate is None:
                max_error_estimate = exact_max_error(records, weights)
        return iter(records), input_size_estimate, max_error_estimate
    return iter(records), input_size_estimate, max_error_estimate


def _rechunk(
    stream: Iterable[AggregateSegment], chunk_size: int
) -> Iterator[AggregateSegment]:
    """Pull segments from ``stream`` in chunks, re-yielding them one by one.

    Chunking decouples the producer (ITA, a file reader, a socket) from the
    consumer (the merge heap): the producer is driven ``chunk_size`` tuples
    at a time while the consumer still observes a flat, order-preserving
    stream, so results are bit-identical to the unchunked evaluation.
    """
    for chunk in iter_chunks(stream, chunk_size):
        yield from chunk


__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "CompressionResult",
    "compress",
    "iter_chunks",
]
