"""End-to-end request deadlines, carried across threads and machines.

A caller that gives up after two seconds is not helped by a worker that
keeps grinding for thirty: without a propagated deadline every timeout
in the chain is local, so budgets silently *add up* across retries,
shards and replication waits.  This module is the single deadline
currency the serving and cluster tiers share:

* :class:`Deadline` — an absolute expiry on the monotonic clock, built
  from a relative budget (``Deadline.after(0.5)``).  ``remaining()``
  is the only arithmetic anybody needs; ``clamp(timeout)`` bounds a
  socket timeout by it, so no blocking call outlives the request.
* A :class:`~contextvars.ContextVar` scope — :func:`deadline_scope`
  installs a deadline for the current task, :func:`current_deadline`
  reads it.  The HTTP front end opens a scope from the
  ``X-Repro-Deadline`` request header (a relative budget in seconds —
  relative, because wall clocks across machines disagree but budgets
  survive the hop); the store's quorum wait and the cluster
  coordinator read it.  Plain worker threads do not inherit context
  vars, so the coordinator captures the object before its fan-out and
  re-enters it per thread via :func:`attach` — the same discipline as
  :mod:`repro.obs.tracing` trace ids.
* Crossing a machine boundary, the deadline rides the PTAF envelope
  meta (key ``"deadline"``, next to ``"trace_id"``) as the *remaining*
  budget at send time; the receiver rebuilds an absolute expiry on its
  own clock.  Skew costs at most the network latency, and always in
  the lenient direction.
* :class:`DeadlineExceeded` subclasses :class:`TimeoutError`, so the
  HTTP error ladder's existing ``deadline_exceeded`` arm (400) answers
  expired requests with no new plumbing.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Callable, Iterator, Optional, Union

__all__ = [
    "DEADLINE_HEADER",
    "Deadline",
    "DeadlineExceeded",
    "attach",
    "current_deadline",
    "deadline_scope",
]

#: HTTP request header carrying the remaining budget in seconds.
DEADLINE_HEADER = "X-Repro-Deadline"


class DeadlineExceeded(TimeoutError):
    """The request's end-to-end deadline expired (HTTP 400
    ``deadline_exceeded``; PTAF error frames use the same slug)."""


class Deadline:
    """An absolute expiry on an injectable monotonic clock."""

    __slots__ = ("expires_at", "_clock")

    def __init__(
        self,
        expires_at: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.expires_at = expires_at
        self._clock = clock

    @classmethod
    def after(
        cls,
        budget: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> "Deadline":
        """A deadline ``budget`` seconds from now."""
        return cls(clock() + budget, clock)

    def remaining(self) -> float:
        """Seconds until expiry; negative once expired."""
        return self.expires_at - self._clock()

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def check(self, what: str) -> None:
        """Raise :class:`DeadlineExceeded` if the deadline has passed."""
        if self.expired:
            raise DeadlineExceeded(f"deadline exceeded before {what}")

    def clamp(self, timeout: Optional[float]) -> float:
        """Bound a socket/wait timeout by the remaining budget.

        Never returns a non-positive value (a zero socket timeout means
        non-blocking, not expired): callers :meth:`check` first, then
        clamp.  ``timeout=None`` (wait forever) becomes the remaining
        budget itself.
        """
        remaining = max(self.remaining(), 0.001)
        return remaining if timeout is None else min(timeout, remaining)

    def __repr__(self) -> str:
        return f"Deadline(remaining={self.remaining():.3f}s)"


_current: ContextVar[Optional[Deadline]] = ContextVar(
    "repro-deadline", default=None
)


def current_deadline() -> Optional[Deadline]:
    """The deadline governing the current task, if any."""
    return _current.get()


@contextmanager
def deadline_scope(
    budget: Union[None, float, Deadline]
) -> Iterator[Optional[Deadline]]:
    """Install a deadline for the duration of the block.

    ``budget`` may be a relative number of seconds, an existing
    :class:`Deadline` (adopted as-is), or ``None`` — a no-op that
    leaves any ambient deadline in place.
    """
    if budget is None:
        yield current_deadline()
        return
    deadline = budget if isinstance(budget, Deadline) else Deadline.after(budget)
    token = _current.set(deadline)
    try:
        yield deadline
    finally:
        _current.reset(token)


@contextmanager
def attach(deadline: Optional[Deadline]) -> Iterator[None]:
    """Re-enter a captured deadline on a plain worker thread.

    ``None`` is a no-op, so call sites need no branching — mirror of
    :func:`repro.obs.tracing.attach`.
    """
    if deadline is None:
        yield
        return
    token = _current.set(deadline)
    try:
        yield
    finally:
        _current.reset(token)
