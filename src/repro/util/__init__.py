"""Cross-cutting utilities shared by every layer.

Currently one module: :mod:`repro.util.failpoints`, the deterministic
fault-injection framework the robustness test suites drive the storage,
serving and parallel layers with.
"""

from . import failpoints

__all__ = ["failpoints"]
