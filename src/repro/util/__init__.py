"""Cross-cutting utilities shared by every layer.

* :mod:`repro.util.failpoints` — the deterministic fault-injection
  framework the robustness test suites drive the storage, serving and
  parallel layers with.
* :mod:`repro.util.backoff` — the shared exponential-backoff-with-
  decorrelated-jitter retry ladder (transport retries, pool rebuilds,
  replication reconnects).
* :mod:`repro.util.health` — per-peer circuit breakers consulted by the
  cluster coordinator's rotation and the replication links.
* :mod:`repro.util.deadline` — end-to-end request deadlines, carried
  across threads (context vars) and machines (envelope meta / the
  ``X-Repro-Deadline`` header).
"""

from . import backoff, deadline, failpoints, health

__all__ = ["backoff", "deadline", "failpoints", "health"]
