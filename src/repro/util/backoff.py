"""Exponential backoff with decorrelated jitter — the one retry ladder.

Every retry loop in the tree used to roll its own linear ladder
(``n * base`` before round ``n``): the socket transport's
:func:`repro.cluster.transport.request_with_retries`, the process-pool
rebuilds in :mod:`repro.parallel`, and (new in the self-healing tier)
the replication link's reconnect loop.  Linear ladders synchronise:
every client that observed the same fault retries on the same schedule,
so a recovering peer is hit by the whole herd at once.  This module
replaces them with one shared policy — *decorrelated jitter*::

    delay_0 = base
    delay_n = min(cap, uniform(base, 3 * delay_{n-1}))

which keeps the expected delay growing geometrically (so a dead peer is
probed ever more rarely) while decorrelating concurrent retriers (so a
revived peer is not thundering-herded).

Determinism: the jitter draws from an injectable :class:`random.Random`
instance, never the global RNG — tests pass a seeded generator and get
a reproducible delay schedule; production call sites construct a fresh
unseeded instance per ladder.  ``base=0`` degenerates to "no backoff"
(every delay is exactly ``0.0``), preserving the ``backoff=0.0`` fast
path the fault-injection suites rely on.
"""

from __future__ import annotations

import random
from typing import Iterator, Optional

__all__ = ["Backoff", "DEFAULT_CAP_S"]

#: Default ceiling on a single delay, in seconds.  High enough that a
#: struggling peer sees geometric growth for ~5 rounds, low enough that
#: a reconnect loop notices a revived peer within a couple of seconds.
DEFAULT_CAP_S = 2.0


class Backoff:
    """A decorrelated-jitter delay ladder.

    ``next()`` returns the next delay in seconds; the caller sleeps.
    The first delay is exactly ``base`` (deterministic — the first
    retry after a transient fault should be prompt and testable), every
    later delay is ``min(cap, uniform(base, 3 * previous))``.

    >>> ladder = Backoff(base=0.05, cap=2.0, rng=random.Random(7))
    >>> ladder.next()
    0.05
    >>> 0.05 <= ladder.next() <= 0.15
    True
    """

    def __init__(
        self,
        base: float,
        cap: float = DEFAULT_CAP_S,
        rng: Optional[random.Random] = None,
    ) -> None:
        if base < 0:
            raise ValueError(f"backoff base must be non-negative, got {base}")
        if cap < base:
            raise ValueError(
                f"backoff cap ({cap}) must be at least the base ({base})"
            )
        self.base = base
        self.cap = cap
        self._rng = rng if rng is not None else random.Random()
        self._previous: Optional[float] = None

    def next(self) -> float:
        """The next delay in seconds (call once per retry round)."""
        if self._previous is None or self.base == 0.0:
            delay = min(self.base, self.cap)
        else:
            delay = min(
                self.cap, self._rng.uniform(self.base, 3.0 * self._previous)
            )
        self._previous = delay
        return delay

    def reset(self) -> None:
        """Restart the ladder (after a success, before the next fault)."""
        self._previous = None

    def delays(self, count: int) -> Iterator[float]:
        """The next ``count`` delays, as an iterator (test convenience)."""
        for _ in range(count):
            yield self.next()
