"""Peer health tracking: per-address circuit breakers.

PR 8's cluster tier re-dialed a dead peer on every shard request and
every replication reconnect attempt, eating a full connect timeout each
time.  This module gives every layer one shared view of peer health —
a classic three-state circuit breaker per ``"host:port"`` address:

* **closed** — the peer is believed healthy; dials are allowed.  Each
  recorded failure increments a consecutive-failure streak; at
  ``threshold`` the breaker *opens*.
* **open** — the peer is believed dead; :meth:`PeerHealth.allow`
  answers ``False`` (no dial, no timeout burned) until ``cooldown``
  seconds have passed since the breaker opened.
* **half-open** — the cooldown elapsed; exactly **one** caller is
  granted a probe (the transport sends a ``PING`` before reusing the
  peer — see :func:`repro.cluster.transport.request_with_retries`).
  Success closes the breaker (the peer is re-admitted); failure
  re-opens it for another cooldown.

The tracker is thread-safe (one lock, transitions are cheap) and
publishes every address's state as the ``repro_peer_breaker_state``
gauge (0 = closed, 1 = half-open, 2 = open) so an operator can see
which peers the cluster has written off.  Consulted by
``reduce_cluster``'s peer rotation and the replication links'
reconnect loops; both share :data:`SHARED` by default so a peer that
died under shard traffic is also not hammered by replication, and vice
versa.  Time is injectable for tests.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Tuple

from ..obs import metrics as _metrics

__all__ = [
    "CLOSED",
    "HALF_OPEN",
    "OPEN",
    "PeerHealth",
    "SHARED",
    "STATE_VALUES",
]

CLOSED = "closed"
HALF_OPEN = "half_open"
OPEN = "open"

#: Gauge encoding of breaker states (what ``/metrics`` renders).
STATE_VALUES = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}

#: Consecutive failures before a closed breaker opens.
DEFAULT_THRESHOLD = 3

#: Seconds an open breaker refuses dials before allowing one probe.
DEFAULT_COOLDOWN_S = 5.0


class _Breaker:
    __slots__ = ("state", "failures", "opened_at")

    def __init__(self) -> None:
        self.state = CLOSED
        self.failures = 0
        self.opened_at = 0.0


class PeerHealth:
    """A registry of per-address circuit breakers.

    ``allow(address)`` is the gate consulted before every dial;
    ``success(address)`` / ``failure(address)`` record the outcome of
    an attempt.  Unknown addresses are implicitly closed (healthy) —
    the breaker is created on first contact.
    """

    def __init__(
        self,
        threshold: int = DEFAULT_THRESHOLD,
        cooldown: float = DEFAULT_COOLDOWN_S,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ValueError(
                f"breaker threshold must be at least 1, got {threshold}"
            )
        if cooldown <= 0:
            raise ValueError(
                f"breaker cooldown must be positive, got {cooldown}"
            )
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock
        self._lock = threading.Lock()
        self._breakers: Dict[str, _Breaker] = {}

    # ------------------------------------------------------------------
    # The gate
    # ------------------------------------------------------------------
    def allow(self, address: str) -> bool:
        """May ``address`` be dialed right now?

        Closed: yes.  Open within the cooldown: no.  Open past the
        cooldown: the breaker moves to half-open and this one caller is
        granted the probe; concurrent callers keep getting ``False``
        until the probe's outcome is recorded.
        """
        with self._lock:
            breaker = self._breakers.get(address)
            if breaker is None or breaker.state == CLOSED:
                return True
            if breaker.state == HALF_OPEN:
                return False  # a probe is already in flight
            if self._clock() - breaker.opened_at >= self.cooldown:
                breaker.state = HALF_OPEN
                self._publish(address, breaker)
                return True
            return False

    def probation(self, address: str) -> bool:
        """Whether ``address`` is currently in its half-open probe
        window — the transport prefixes the request with a ``PING``
        probe for such peers."""
        with self._lock:
            breaker = self._breakers.get(address)
            return breaker is not None and breaker.state == HALF_OPEN

    # ------------------------------------------------------------------
    # Outcomes
    # ------------------------------------------------------------------
    def success(self, address: str) -> None:
        """The peer answered: close its breaker, clear the streak."""
        with self._lock:
            breaker = self._breakers.get(address)
            if breaker is None:
                return
            changed = breaker.state != CLOSED or breaker.failures
            breaker.state = CLOSED
            breaker.failures = 0
            if changed:
                self._publish(address, breaker)

    def failure(self, address: str) -> None:
        """A dial or request failed: grow the streak / (re-)open."""
        with self._lock:
            breaker = self._breakers.setdefault(address, _Breaker())
            if breaker.state == HALF_OPEN:
                # The probe failed: straight back to open, new cooldown.
                breaker.state = OPEN
                breaker.opened_at = self._clock()
                self._publish(address, breaker)
                return
            breaker.failures += 1
            if breaker.state == CLOSED and breaker.failures >= self.threshold:
                breaker.state = OPEN
                breaker.opened_at = self._clock()
                self._publish(address, breaker)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def state(self, address: str) -> str:
        """``"closed"`` / ``"open"`` / ``"half_open"`` for ``address``."""
        with self._lock:
            breaker = self._breakers.get(address)
            return CLOSED if breaker is None else breaker.state

    def states(self) -> List[Tuple[str, str]]:
        """Every tracked ``(address, state)`` pair (operator surface)."""
        with self._lock:
            return [
                (address, breaker.state)
                for address, breaker in self._breakers.items()
            ]

    def reset(self) -> None:
        """Forget every breaker (test isolation)."""
        with self._lock:
            for address, breaker in self._breakers.items():
                breaker.state = CLOSED
                breaker.failures = 0
                self._publish(address, breaker)
            self._breakers.clear()

    @staticmethod
    def _publish(address: str, breaker: _Breaker) -> None:
        _metrics.gauge(
            "repro_peer_breaker_state",
            "Circuit breaker per peer: 0 closed, 1 half-open, 2 open.",
            peer=address,
        ).set(STATE_VALUES[breaker.state])


#: The process-wide tracker shared by the cluster coordinator and the
#: replication links (pass a private instance to either for isolation).
SHARED = PeerHealth()
