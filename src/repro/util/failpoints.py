"""Deterministic fault injection: named, seedable failpoints.

Every fragile operation in the tree — a WAL append, an fsync, a
checkpoint rename, a shard reduction inside a pool worker — carries a
*failpoint*: a named call to :func:`fail` that does nothing in
production (one ``is None`` check) but can be armed by tests to raise,
return an error value, delay, or kill the process at exactly that line.
This is how the robustness suites (``tests/test_fault_injection.py``,
``tests/test_chaos.py``) turn "what if the disk fails here?" into a
reproducible assertion instead of a hope.

Usage at an injection site (zero-cost when disabled)::

    from repro.util import failpoints
    ...
    failpoints.fail("wal.append")        # may raise / sleep / no-op

Arming sites in a test::

    with failpoints.activated(
        {"wal.append": failpoints.Raise(OSError(28, "No space left"),
                                        probability=0.2, times=3)},
        seed=7,
    ):
        ...

Semantics:

* **Zero cost when disabled.**  :func:`fail` reads one module global;
  no registry lookups, no locks, no allocation.
* **Seedable.**  ``probability`` draws come from one ``random.Random``
  per activation, so a chaos schedule is a pure function of its seed.
* **Bounded.**  ``times=N`` caps how often an action fires (evaluations
  past the budget are no-ops), so "fail the first append, then heal" is
  one line.
* **Process-aware.**  :class:`Exit` (simulating a crashed pool worker)
  only ever fires in a process *other than* the one that armed it —
  forked workers inherit the armed state but the driving process never
  kills itself.  A cross-process kill budget is expressed with
  ``limit=``/``limit_dir=``: workers atomically claim kill tokens from a
  shared directory, so "kill exactly two workers, then heal" is
  deterministic even across respawned pools.
* **Spawn-safe.**  ``activated(..., propagate=True)`` mirrors the
  configuration into ``REPRO_FAILPOINTS`` so spawn/forkserver children
  (which do not inherit parent memory) re-arm themselves on import.

Only one activation may be live at a time; nesting raises, because
overlapping chaos schedules have no well-defined seed.
"""

from __future__ import annotations

import json
import os
import random
import threading
import time
from contextlib import contextmanager
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    Mapping,
    Optional,
    Union,
)

#: Environment variable used to re-arm failpoints in spawned children.
ENV_VAR = "REPRO_FAILPOINTS"


class FailpointError(RuntimeError):
    """Default exception injected by a :class:`Raise` with no payload."""


class Action:
    """Base class of everything a failpoint site can be armed with.

    ``probability`` is the chance one evaluation fires (drawn from the
    activation's seeded RNG); ``times`` caps the number of firings per
    activation per process (``None`` = unbounded).
    """

    def __init__(
        self, probability: float = 1.0, times: Optional[int] = None
    ) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError(
                f"probability must be within [0, 1], got {probability}"
            )
        if times is not None and times < 0:
            raise ValueError(f"times must be non-negative, got {times}")
        self.probability = probability
        self.times = times

    def fire(self, site: str) -> Any:  # pragma: no cover - overridden
        raise NotImplementedError

    def env_spec(self) -> Dict[str, Any]:
        """JSON-encodable form for :data:`ENV_VAR` propagation."""
        raise NotImplementedError(
            f"{type(self).__name__} cannot be propagated to spawned "
            f"children via the environment"
        )

    def _base_spec(self, mode: str) -> Dict[str, Any]:
        return {
            "mode": mode,
            "probability": self.probability,
            "times": self.times,
        }


class Raise(Action):
    """Raise an exception at the site.

    ``exception`` is an instance (re-raised as-is each firing) or a
    zero-argument factory.  Defaults to :class:`FailpointError`.
    """

    def __init__(
        self,
        exception: Union[BaseException, Callable[[], BaseException], None] = None,
        probability: float = 1.0,
        times: Optional[int] = None,
    ) -> None:
        super().__init__(probability, times)
        self.exception = exception

    def fire(self, site: str) -> Any:
        source = self.exception
        if source is None:
            raise FailpointError(f"injected failure at failpoint {site!r}")
        raise source() if callable(source) else source

    def env_spec(self) -> Dict[str, Any]:
        source = self.exception
        instance = source() if callable(source) else source
        if instance is None:
            spec = self._base_spec("raise")
        elif type(instance).__module__ == "builtins":
            spec = self._base_spec("raise")
            spec["exception"] = type(instance).__name__
            spec["args"] = [
                arg for arg in instance.args
                if isinstance(arg, (str, int, float, bool))
            ]
        else:
            return super().env_spec()  # non-builtin: refuse loudly
        return spec


class Return(Action):
    """Make :func:`fail` return ``value`` — the *return-error* mode.

    Sites that support it check the return value::

        injected = failpoints.fail("engine.reduce")
        if injected is not None:
            return injected
    """

    def __init__(
        self,
        value: Any,
        probability: float = 1.0,
        times: Optional[int] = None,
    ) -> None:
        super().__init__(probability, times)
        self.value = value

    def fire(self, site: str) -> Any:
        return self.value

    def env_spec(self) -> Dict[str, Any]:
        spec = self._base_spec("return")
        spec["value"] = self.value  # must be JSON-encodable
        return spec


class Delay(Action):
    """Sleep ``seconds`` at the site (overload / slow-disk simulation)."""

    def __init__(
        self,
        seconds: float,
        probability: float = 1.0,
        times: Optional[int] = None,
    ) -> None:
        super().__init__(probability, times)
        if seconds < 0:
            raise ValueError(f"seconds must be non-negative, got {seconds}")
        self.seconds = seconds

    def fire(self, site: str) -> Any:
        time.sleep(self.seconds)
        return None

    def env_spec(self) -> Dict[str, Any]:
        spec = self._base_spec("delay")
        spec["seconds"] = self.seconds
        return spec


class Exit(Action):
    """Kill the evaluating process with ``os._exit`` — a worker crash.

    Never fires in the process that armed the failpoint (the driving
    test must survive to observe the recovery), only in children that
    inherited it — pool workers above all.  With ``limit_dir=`` the
    firing budget is *cross-process*: at most ``limit`` kills happen
    across every worker that ever evaluates the site, claimed atomically
    as ``O_EXCL`` token files, so respawned pools eventually heal.
    """

    def __init__(
        self,
        code: int = 1,
        probability: float = 1.0,
        times: Optional[int] = None,
        limit: int = 1,
        limit_dir: Optional[str] = None,
    ) -> None:
        super().__init__(probability, times)
        if limit < 0:
            raise ValueError(f"limit must be non-negative, got {limit}")
        self.code = code
        self.limit = limit
        self.limit_dir = limit_dir

    def _claim_token(self, site: str) -> bool:
        if self.limit_dir is None:
            return True
        safe = site.replace("/", "_")
        for index in range(self.limit):
            token = os.path.join(self.limit_dir, f"{safe}.kill-{index}")
            try:
                descriptor = os.open(
                    token, os.O_CREAT | os.O_EXCL | os.O_WRONLY
                )
            except FileExistsError:
                continue
            os.close(descriptor)
            return True
        return False

    def fire(self, site: str) -> Any:
        if not self._claim_token(site):
            return None
        os._exit(self.code)

    def env_spec(self) -> Dict[str, Any]:
        spec = self._base_spec("exit")
        spec.update(
            {"code": self.code, "limit": self.limit,
             "limit_dir": self.limit_dir}
        )
        return spec


class _Activation:
    """One armed configuration: sites, seeded RNG, counters, owner pid."""

    def __init__(
        self,
        sites: Mapping[str, Action],
        seed: Optional[int],
        owner_pid: int,
    ) -> None:
        self.sites: Dict[str, Action] = dict(sites)
        self.rng = random.Random(seed)
        self.owner_pid = owner_pid
        self.lock = threading.Lock()
        self.evaluations: Dict[str, int] = {}
        self.firings: Dict[str, int] = {}
        self._spent: Dict[str, int] = {}

    def evaluate(self, site: str) -> Any:
        with self.lock:
            self.evaluations[site] = self.evaluations.get(site, 0) + 1
            action = self.sites.get(site)
            if action is None:
                return None
            if isinstance(action, Exit) and os.getpid() == self.owner_pid:
                return None
            spent = self._spent.get(site, 0)
            if action.times is not None and spent >= action.times:
                return None
            if (
                action.probability < 1.0
                and self.rng.random() >= action.probability
            ):
                return None
            self._spent[site] = spent + 1
            self.firings[site] = self.firings.get(site, 0) + 1
        return action.fire(site)


#: The live activation, or ``None`` (the common case — :func:`fail`
#: reads exactly this).
_active: Optional[_Activation] = None
_arm_lock = threading.Lock()


def fail(site: str) -> Any:
    """Evaluate the failpoint ``site``.

    No-op returning ``None`` unless an activation arms the site, in
    which case the armed action may raise, sleep, kill the process, or
    return an injected value.
    """
    state = _active
    if state is None:
        return None
    return state.evaluate(site)


def is_active() -> bool:
    """Whether any failpoint configuration is currently armed."""
    return _active is not None


def evaluations(site: str) -> int:
    """How often ``site`` was evaluated under the current activation."""
    state = _active
    return 0 if state is None else state.evaluations.get(site, 0)


def firings(site: str) -> int:
    """How often ``site`` actually fired under the current activation."""
    state = _active
    return 0 if state is None else state.firings.get(site, 0)


@contextmanager
def activated(
    sites: Mapping[str, Action],
    seed: Optional[int] = None,
    propagate: bool = False,
) -> Iterator[None]:
    """Arm ``sites`` for the duration of the ``with`` block.

    ``seed`` fixes the probability draws.  ``propagate=True`` mirrors
    the configuration into :data:`ENV_VAR` so children created with the
    ``spawn``/``forkserver`` start methods re-arm themselves on import
    (``fork`` children inherit the armed memory state directly).  Only
    JSON-encodable actions can be propagated; :meth:`Action.env_spec`
    raises for the rest.
    """
    global _active
    with _arm_lock:
        if _active is not None:
            raise RuntimeError(
                "failpoints are already active; nested activations have "
                "no well-defined seed"
            )
        _active = _Activation(sites, seed, os.getpid())
    previous_env = os.environ.get(ENV_VAR)
    try:
        # Inside the try: a non-propagatable action raising here must
        # still disarm, or the refused activation would stay live.
        if propagate:
            os.environ[ENV_VAR] = json.dumps(
                {
                    "owner_pid": os.getpid(),
                    "seed": seed,
                    "sites": {
                        name: action.env_spec()
                        for name, action in sites.items()
                    },
                }
            )
        yield
    finally:
        with _arm_lock:
            _active = None
        if propagate:
            if previous_env is None:
                os.environ.pop(ENV_VAR, None)
            else:
                os.environ[ENV_VAR] = previous_env


def deactivate() -> None:
    """Force-disarm (crash-recovery hatch for tests; normally unused)."""
    global _active
    with _arm_lock:
        _active = None


# ----------------------------------------------------------------------
# Environment re-arming (spawned children)
# ----------------------------------------------------------------------
def _action_from_spec(spec: Mapping[str, Any]) -> Action:
    mode = spec.get("mode")
    probability = float(spec.get("probability", 1.0))
    times = spec.get("times")
    times = None if times is None else int(times)
    if mode == "raise":
        name = spec.get("exception")
        exception: Optional[BaseException] = None
        if name is not None:
            factory = getattr(__import__("builtins"), str(name), None)
            if not (isinstance(factory, type)
                    and issubclass(factory, BaseException)):
                raise ValueError(f"unknown exception type {name!r}")
            exception = factory(*spec.get("args", []))
        return Raise(exception, probability=probability, times=times)
    if mode == "return":
        return Return(spec.get("value"), probability=probability, times=times)
    if mode == "delay":
        return Delay(
            float(spec.get("seconds", 0.0)),
            probability=probability,
            times=times,
        )
    if mode == "exit":
        return Exit(
            code=int(spec.get("code", 1)),
            probability=probability,
            times=times,
            limit=int(spec.get("limit", 1)),
            limit_dir=spec.get("limit_dir"),
        )
    raise ValueError(f"unknown failpoint mode {mode!r}")


def _activate_from_env() -> None:
    """Re-arm from :data:`ENV_VAR` — called once at import time.

    Only does anything in a process that (a) finds the variable set and
    (b) is not the process that armed it (the owner already holds the
    in-memory activation; fork children inherit it).
    """
    global _active
    raw = os.environ.get(ENV_VAR)
    if not raw or _active is not None:
        return
    try:
        payload = json.loads(raw)
        owner_pid = int(payload.get("owner_pid", -1))
        if owner_pid == os.getpid():
            return
        sites = {
            str(name): _action_from_spec(spec)
            for name, spec in dict(payload.get("sites", {})).items()
        }
    except (ValueError, TypeError, AttributeError):
        return  # a malformed spec must never take a worker down
    _active = _Activation(sites, payload.get("seed"), owner_pid)


_activate_from_env()


__all__ = [
    "Action",
    "Delay",
    "ENV_VAR",
    "Exit",
    "FailpointError",
    "Raise",
    "Return",
    "activated",
    "deactivate",
    "evaluations",
    "fail",
    "firings",
    "is_active",
]
