"""Vectorized NumPy kernels for the PTA hot paths.

The reference implementations in :mod:`repro.core.dp`, :mod:`repro.core.heap`
and :mod:`repro.core.greedy` evaluate the paper's algorithms with pure-Python
loops over :class:`~repro.core.merge.AggregateSegment` objects.  This module
provides drop-in array-backed counterparts selected with the
``backend="numpy"`` flag:

* :class:`NumpyPrefixSums` — the prefix sums of Proposition 1 stored as
  ``float64`` arrays, with :meth:`NumpyPrefixSums.sse_run_batch` evaluating
  the SSE of *every* candidate run ``s_{j+1} .. s_i`` for a fixed ``i`` in one
  vector expression;
* :func:`dp_first_row` / :func:`dp_best_split` — the DP error-matrix
  recurrence of Section 5.1 with the inner split-point loop replaced by a
  single ``np.argmin`` over the ``j``-range;
* :class:`NumpyMergeHeap` — the merge heap of Section 6.2.2 as parallel NumPy
  arrays (interval endpoints, aggregate values, linked-list indices, merge
  keys) under a :mod:`heapq` priority queue with lazy-deletion version
  stamps.  Merging updates array slices in place instead of allocating new
  segment objects, dead slots are compacted away so memory tracks the live
  heap size, and :meth:`NumpyMergeHeap.insert_batch` computes the merge keys
  of a whole batch of tuples vectorized (used by the batch GMS helpers).

Both backends implement the same recurrences with the same floating-point
formulae, so the pure-Python path remains the reference oracle the NumPy path
is validated against (see ``tests/test_kernels.py``).
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..temporal import Interval
from .errors import Weights, resolve_weights
from .merge import AggregateSegment


# ----------------------------------------------------------------------
# Prefix sums and the vectorized DP inner loop (Sections 5.1 / 5.2)
# ----------------------------------------------------------------------
class NumpyPrefixSums:
    """Array-backed prefix sums for constant-time run SSE (Proposition 1).

    Mirrors :class:`repro.core.errors.PrefixSums` but stores the cumulative
    length / value / squared-value sums as ``float64`` arrays, enabling the
    batched run-error evaluation used by the vectorized DP recurrence.
    """

    __slots__ = ("segments", "weights", "_w2", "_L", "_S", "_SS")

    def __init__(
        self,
        segments: Sequence[AggregateSegment],
        weights: Weights | None = None,
    ) -> None:
        self.segments = list(segments)
        dimensions = self.segments[0].dimensions if self.segments else 0
        self.weights = resolve_weights(weights, dimensions)
        self._w2 = np.asarray(self.weights, dtype=np.float64) ** 2

        count = len(self.segments)
        lengths = np.zeros(count + 1, dtype=np.float64)
        values = np.zeros((dimensions, count + 1), dtype=np.float64)
        for index, segment in enumerate(self.segments, start=1):
            lengths[index] = segment.length
            values[:, index] = segment.values
        weighted = values * lengths
        self._L = np.cumsum(lengths)
        self._S = np.cumsum(weighted, axis=1)
        self._SS = np.cumsum(weighted * values, axis=1)

    def __len__(self) -> int:
        return len(self.segments)

    @property
    def dimensions(self) -> int:
        """Number of aggregate dimensions ``p``."""
        return self._S.shape[0]

    def total_length(self, first: int, last: int) -> float:
        """Total interval length of segments ``first .. last`` (inclusive)."""
        return float(self._L[last + 1] - self._L[first])

    def merged_values(self, first: int, last: int) -> Tuple[float, ...]:
        """Length-weighted mean values of segments ``first .. last``."""
        length = self._L[last + 1] - self._L[first]
        return tuple(
            float(v) for v in (self._S[:, last + 1] - self._S[:, first]) / length
        )

    def sse(self, first: int, last: int) -> float:
        """SSE of merging segments ``first .. last`` into a single tuple."""
        length = self._L[last + 1] - self._L[first]
        run_sum = self._S[:, last + 1] - self._S[:, first]
        run_square = self._SS[:, last + 1] - self._SS[:, first]
        deviation = np.maximum(run_square - run_sum * run_sum / length, 0.0)
        return float(self._w2 @ deviation)

    def sse_run_batch(self, j_lo: int, i: int) -> np.ndarray:
        """Run errors ``SSE(s_{j+1} .. s_i)`` for every ``j`` in ``[j_lo, i)``.

        Uses the paper's 1-based split-point convention: entry ``m`` of the
        returned array is the error of the run starting right after split
        point ``j = j_lo + m`` and ending at segment ``s_i``.
        """
        length = self._L[i] - self._L[j_lo:i]
        run_sum = self._S[:, [i]] - self._S[:, j_lo:i]
        run_square = self._SS[:, [i]] - self._SS[:, j_lo:i]
        deviation = np.maximum(run_square - run_sum * run_sum / length, 0.0)
        return self._w2 @ deviation


def dp_first_row(
    prefix: NumpyPrefixSums, i_max: int, first_gap: int | None
) -> np.ndarray:
    """Row ``k = 1`` of the error matrix: ``E[1][i] = SSE(s_1 .. s_i)``.

    ``first_gap`` is the position of the first non-adjacent pair (1-based) or
    ``None``; prefixes extending past it cannot be merged into one tuple and
    receive an infinite error.
    """
    n = len(prefix)
    row = np.full(n + 1, math.inf)
    length = prefix._L[1 : i_max + 1]
    run_sum = prefix._S[:, 1 : i_max + 1]
    run_square = prefix._SS[:, 1 : i_max + 1]
    deviation = np.maximum(run_square - run_sum * run_sum / length, 0.0)
    row[1 : i_max + 1] = prefix._w2 @ deviation
    if first_gap is not None and first_gap < i_max:
        row[first_gap + 1 : i_max + 1] = math.inf
    return row


def dp_best_split(
    prefix: NumpyPrefixSums,
    previous_row: np.ndarray,
    j_lo: int,
    i: int,
    infeasible_below: int = 0,
) -> Tuple[float, int]:
    """Best split point for cell ``E[k][i]`` via one vectorized ``argmin``.

    Evaluates ``E[k-1][j] + SSE(s_{j+1} .. s_i)`` for every candidate split
    ``j`` in ``[j_lo, i)`` and returns ``(error, split)``.  Candidates below
    ``infeasible_below`` correspond to runs crossing a gap and are forced to
    an infinite total (only relevant for the plain-DP baseline; the optimized
    evaluation passes a ``j_lo`` at or right of the last gap).  Ties are
    broken towards the *largest* ``j``, matching the pure-Python reference
    which scans the candidates from ``i - 1`` downwards and only accepts
    strict improvements.
    """
    totals = previous_row[j_lo:i] + prefix.sse_run_batch(j_lo, i)
    if infeasible_below > j_lo:
        totals[: infeasible_below - j_lo] = math.inf
    reversed_totals = totals[::-1]
    position = int(np.argmin(reversed_totals))
    best = float(reversed_totals[position])
    if math.isinf(best):
        return math.inf, 0
    return best, i - 1 - position


# ----------------------------------------------------------------------
# Array-backed merge heap (Section 6.2.2)
# ----------------------------------------------------------------------
class NumpyHeapNode:
    """Lightweight view of one live slot of a :class:`NumpyMergeHeap`.

    Exposes the same ``id`` / ``key`` / ``segment`` surface as
    :class:`repro.core.heap.HeapNode` so the greedy algorithms can treat both
    heap backends uniformly.  ``id`` is the stable insertion-order number
    (monotone exactly as in the linked-node implementation, and preserved
    across array compaction); ``index`` is the current array slot.

    Unlike a linked :class:`~repro.core.heap.HeapNode` — which stays valid
    forever — a view's slot can be reassigned when a later insertion
    compacts the storage.  Accessing ``key`` / ``segment`` through a stale
    view raises :class:`RuntimeError` instead of silently reading another
    tuple's data.
    """

    __slots__ = ("_heap", "index", "_id")

    def __init__(self, heap: "NumpyMergeHeap", index: int) -> None:
        self._heap = heap
        self.index = index
        self._id = int(heap._node_id[index])

    def _checked_index(self) -> int:
        if self._heap._node_id[self.index] != self._id:
            raise RuntimeError(
                "heap node view invalidated: the storage was compacted by a "
                "later insertion; re-obtain the node via peek()/iteration"
            )
        return self.index

    @property
    def id(self) -> int:
        return self._id

    @property
    def key(self) -> float:
        return float(self._heap._key[self._checked_index()])

    @property
    def segment(self) -> AggregateSegment:
        return self._heap._segment_at(self._checked_index())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NumpyHeapNode(id={self._id})"


class NumpyMergeHeap:
    """Merge heap over parallel NumPy arrays with lazy-deletion stamps.

    Column layout (one row per inserted tuple, rows never move):

    ``_start`` / ``_end``
        interval endpoints (``int64``);
    ``_values``
        length-weighted mean aggregate values, shape ``(capacity, p)``;
    ``_group``
        dense integer group ids (arbitrary group tuples are interned);
    ``_prev`` / ``_next``
        doubly linked chronological list as row indices (``-1`` = none);
    ``_key`` / ``_version`` / ``_alive``
        merge-with-predecessor error, lazy-deletion stamp and liveness.

    The priority queue is a :mod:`heapq` binary heap of
    ``(key, counter, index, version)`` entries; stale entries are skipped
    during ``peek`` exactly like the pure-Python heap.  Merging a tuple into
    its predecessor is a handful of in-place array updates — no intermediate
    :class:`AggregateSegment` objects are allocated until :meth:`segments`
    materialises the final relation.

    Merged rows leave dead slots behind; when an insertion would outgrow the
    arrays while at least half the slots are dead, the storage is compacted
    in place instead of doubled, so memory stays proportional to the *live*
    heap size (``c + β`` for the online algorithms) rather than to the total
    number of tuples ever streamed.  Node ids survive compaction; the
    priority queue is rebuilt from the surviving keys.
    """

    _INITIAL_CAPACITY = 1024

    def __init__(self, weights: Weights | None = None) -> None:
        self._weights = weights
        self._w2: np.ndarray | None = None
        self._dimensions: int | None = None
        self._capacity = 0
        self._count = 0
        self._size = 0
        self.max_size = 0
        self._head = -1
        self._tail = -1
        self._entries: List[tuple] = []
        self._entry_counter = 0
        self._next_node_id = 1
        self._group_ids: Dict[tuple, int] = {}
        self._group_keys: List[tuple] = []

    # ------------------------------------------------------------------
    # Storage management
    # ------------------------------------------------------------------
    def _allocate(self, dimensions: int) -> None:
        self._dimensions = dimensions
        self._w2 = (
            np.asarray(resolve_weights(self._weights, dimensions)) ** 2
        )
        capacity = self._INITIAL_CAPACITY
        self._capacity = capacity
        self._start = np.zeros(capacity, dtype=np.int64)
        self._end = np.zeros(capacity, dtype=np.int64)
        self._values = np.zeros((capacity, dimensions), dtype=np.float64)
        self._group = np.zeros(capacity, dtype=np.int64)
        self._prev = np.full(capacity, -1, dtype=np.int64)
        self._next = np.full(capacity, -1, dtype=np.int64)
        self._key = np.full(capacity, math.inf, dtype=np.float64)
        self._version = np.zeros(capacity, dtype=np.int64)
        self._alive = np.zeros(capacity, dtype=bool)
        self._node_id = np.zeros(capacity, dtype=np.int64)

    def _ensure_capacity(self, extra: int) -> None:
        """Make room for ``extra`` more rows, compacting before growing.

        Compaction is preferred whenever at least half the allocated slots
        are dead (merged away): it keeps memory bounded by the live heap
        size on long streams.  Growing preserves row indices; compaction
        does not, so it must only happen between insertions — any
        outstanding :class:`NumpyHeapNode` indices become invalid.
        """
        if self._count + extra <= self._capacity:
            return
        if self._size <= self._capacity // 2:
            self._compact()
        if self._count + extra > self._capacity:
            self._grow(self._count + extra)

    def _compact(self) -> None:
        """Drop dead rows, renumbering slots in chronological order."""
        order = []
        index = self._head
        while index >= 0:
            order.append(index)
            index = int(self._next[index])
        live = np.asarray(order, dtype=np.int64)
        count = len(live)
        if count:
            for name in ("_start", "_end", "_group", "_key", "_version",
                         "_node_id"):
                array = getattr(self, name)
                array[:count] = array[live]
            self._values[:count] = self._values[live]
            self._prev[:count] = np.arange(-1, count - 1)
            self._next[: count - 1] = np.arange(1, count)
            self._next[count - 1] = -1
            self._alive[:count] = True
            # Prune the group intern table to the groups still alive, so
            # memory does not grow with the number of groups ever streamed.
            live_groups = np.unique(self._group[:count])
            self._group[:count] = np.searchsorted(
                live_groups, self._group[:count]
            )
            self._group_keys = [
                self._group_keys[int(g)] for g in live_groups
            ]
            self._group_ids = {
                key: position
                for position, key in enumerate(self._group_keys)
            }
        else:
            self._group_keys = []
            self._group_ids = {}
        self._alive[count : self._count] = False
        self._head = 0 if count else -1
        self._tail = count - 1 if count else -1
        self._count = count
        # All queue entries reference pre-compaction slots: rebuild from the
        # surviving keys.  Re-pushing in chronological order can reorder
        # *exactly equal* keys relative to the reference heap's push order —
        # for such ties either merge is a valid greedy step of equal error.
        self._entries = []
        for index in range(count):
            if not math.isinf(self._key[index]):
                self._push_entry(index)

    def _grow(self, needed: int) -> None:
        capacity = self._capacity
        while capacity < needed:
            capacity *= 2
        extra = capacity - self._capacity
        self._start = np.concatenate([self._start, np.zeros(extra, np.int64)])
        self._end = np.concatenate([self._end, np.zeros(extra, np.int64)])
        self._values = np.concatenate(
            [self._values, np.zeros((extra, self._dimensions), np.float64)]
        )
        self._group = np.concatenate([self._group, np.zeros(extra, np.int64)])
        self._prev = np.concatenate([self._prev, np.full(extra, -1, np.int64)])
        self._next = np.concatenate([self._next, np.full(extra, -1, np.int64)])
        self._key = np.concatenate(
            [self._key, np.full(extra, math.inf, np.float64)]
        )
        self._version = np.concatenate(
            [self._version, np.zeros(extra, np.int64)]
        )
        self._alive = np.concatenate([self._alive, np.zeros(extra, bool)])
        self._node_id = np.concatenate(
            [self._node_id, np.zeros(extra, np.int64)]
        )
        self._capacity = capacity

    def _intern_group(self, group: tuple) -> int:
        group_id = self._group_ids.get(group)
        if group_id is None:
            group_id = len(self._group_keys)
            self._group_ids[group] = group_id
            self._group_keys.append(group)
        return group_id

    # ------------------------------------------------------------------
    # Basic state
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    @property
    def tail(self) -> Optional[NumpyHeapNode]:
        """The most recently inserted (chronologically last) node."""
        return NumpyHeapNode(self, self._tail) if self._tail >= 0 else None

    @property
    def head(self) -> Optional[NumpyHeapNode]:
        """The chronologically first node."""
        return NumpyHeapNode(self, self._head) if self._head >= 0 else None

    # ------------------------------------------------------------------
    # Operations of the paper: INSERT, PEEK, MERGE
    # ------------------------------------------------------------------
    def insert(self, segment: AggregateSegment) -> NumpyHeapNode:
        """Append one tuple at the end of the list and index it in the heap."""
        if self._dimensions is not None:
            self._ensure_capacity(1)
        index = self._append_slot(segment)
        self._refresh_key(index)
        return NumpyHeapNode(self, index)

    def insert_batch(
        self, segments: Sequence[AggregateSegment]
    ) -> List[NumpyHeapNode]:
        """Append a chunk of tuples, computing all merge keys vectorized.

        Equivalent to calling :meth:`insert` once per segment but the
        pairwise merge errors (Proposition 2) of the whole batch are
        evaluated with array expressions.  Used by the batch GMS helpers
        (:func:`repro.core.greedy.gms_reduce_to_size` /
        ``gms_reduce_to_error``) to build the initial heap vectorized; the
        *online* algorithms insert tuple by tuple because their merge policy
        is interleaved with insertion.
        """
        if not segments:
            return []
        if self._dimensions is None:
            self._allocate(segments[0].dimensions)
        self._ensure_capacity(len(segments))
        first = self._count
        for segment in segments:
            self._append_slot(segment)
        last = self._count  # exclusive

        starts = self._start[first:last]
        ends = self._end[first:last]
        groups = self._group[first:last]
        values = self._values[first:last]
        prev_rows = self._prev[first:last]
        has_prev = prev_rows >= 0
        prev_idx = np.where(has_prev, prev_rows, 0)
        adjacent = (
            has_prev
            & (self._group[prev_idx] == groups)
            & (self._end[prev_idx] + 1 == starts)
        )

        keys = np.full(last - first, math.inf)
        if adjacent.any():
            rows = np.nonzero(adjacent)[0]
            pred = prev_rows[rows]
            left_len = (self._end[pred] - self._start[pred] + 1).astype(
                np.float64
            )
            right_len = (ends[rows] - starts[rows] + 1).astype(np.float64)
            factor = left_len * right_len / (left_len + right_len)
            diff = self._values[pred] - values[rows]
            keys[rows] = (self._w2 * factor[:, None] * diff * diff).sum(axis=1)
        self._key[first:last] = keys
        self._version[first:last] += 1
        for offset in np.nonzero(np.isfinite(keys))[0]:
            index = first + int(offset)
            self._push_entry(index)
        return [NumpyHeapNode(self, index) for index in range(first, last)]

    def peek(self) -> Optional[NumpyHeapNode]:
        """Return the node with the smallest key without removing it."""
        index = self._peek_index()
        return NumpyHeapNode(self, index) if index is not None else None

    def merge_top(self) -> NumpyHeapNode:
        """Merge the minimum-key node into its predecessor (in place)."""
        index = self._peek_index()
        if index is None or math.isinf(self._key[index]):
            raise ValueError("no adjacent pair available for merging")
        predecessor = int(self._prev[index])
        left_length = float(self._end[predecessor] - self._start[predecessor] + 1)
        right_length = float(self._end[index] - self._start[index] + 1)
        total = left_length + right_length
        self._values[predecessor] = (
            left_length * self._values[predecessor]
            + right_length * self._values[index]
        ) / total
        self._end[predecessor] = self._end[index]

        successor = int(self._next[index])
        self._next[predecessor] = successor
        if successor >= 0:
            self._prev[successor] = predecessor
        else:
            self._tail = predecessor
        self._alive[index] = False
        self._size -= 1

        self._refresh_key(predecessor)
        if successor >= 0:
            self._refresh_key(successor)
        return NumpyHeapNode(self, predecessor)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _append_slot(self, segment: AggregateSegment) -> int:
        if self._dimensions is None:
            self._allocate(segment.dimensions)
        elif self._count >= self._capacity:
            # Callers reserve space up front; this only fires if they did
            # not, and growing (unlike compacting) preserves row indices.
            self._grow(self._count + 1)
        index = self._count
        self._count += 1
        self._node_id[index] = self._next_node_id
        self._next_node_id += 1
        interval = segment.interval
        self._start[index] = interval.start
        self._end[index] = interval.end
        self._values[index] = segment.values
        self._group[index] = self._intern_group(segment.group)
        previous = self._tail
        self._prev[index] = previous
        # Slots can be reused after compaction: clear the stale successor.
        self._next[index] = -1
        if previous >= 0:
            self._next[previous] = index
        else:
            self._head = index
        self._tail = index
        self._alive[index] = True
        self._size += 1
        self.max_size = max(self.max_size, self._size)
        return index

    def _is_adjacent(self, left: int, right: int) -> bool:
        return (
            self._group[left] == self._group[right]
            and self._end[left] + 1 == self._start[right]
        )

    def _refresh_key(self, index: int) -> None:
        predecessor = int(self._prev[index])
        if predecessor < 0 or not self._is_adjacent(predecessor, index):
            self._key[index] = math.inf
            self._version[index] += 1
            return
        left_length = float(self._end[predecessor] - self._start[predecessor] + 1)
        right_length = float(self._end[index] - self._start[index] + 1)
        factor = left_length * right_length / (left_length + right_length)
        diff = self._values[predecessor] - self._values[index]
        self._key[index] = float((self._w2 * factor * diff * diff).sum())
        self._version[index] += 1
        self._push_entry(index)

    def _push_entry(self, index: int) -> None:
        self._entry_counter += 1
        heapq.heappush(
            self._entries,
            (
                float(self._key[index]),
                self._entry_counter,
                index,
                int(self._version[index]),
            ),
        )

    def _peek_index(self) -> Optional[int]:
        while self._entries:
            key, _, index, version = self._entries[0]
            if (
                self._alive[index]
                and self._version[index] == version
                and self._key[index] == key
            ):
                return index
            heapq.heappop(self._entries)
        return None

    def _segment_at(self, index: int) -> AggregateSegment:
        return AggregateSegment(
            self._group_keys[int(self._group[index])],
            tuple(float(v) for v in self._values[index]),
            Interval(int(self._start[index]), int(self._end[index])),
        )

    def adjacent_successor_count(self, node, limit: int) -> int:
        """Number of successors chained to ``node`` by adjacency, up to ``limit``."""
        count = 0
        if isinstance(node, NumpyHeapNode):
            current = node._checked_index()
        else:
            current = int(node)
        while count < limit:
            successor = int(self._next[current])
            if successor < 0 or not self._is_adjacent(current, successor):
                break
            count += 1
            current = successor
        return count

    def __iter__(self) -> Iterator[NumpyHeapNode]:
        """Iterate over live nodes in chronological (list) order."""
        index = self._head
        while index >= 0:
            yield NumpyHeapNode(self, index)
            index = int(self._next[index])

    def segments(self) -> List[AggregateSegment]:
        """Materialise the current intermediate relation in list order."""
        return [self._segment_at(node.index) for node in self]


__all__ = [
    "NumpyHeapNode",
    "NumpyMergeHeap",
    "NumpyPrefixSums",
    "dp_best_split",
    "dp_first_row",
]
