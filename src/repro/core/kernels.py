"""Vectorized NumPy kernels for the PTA hot paths.

The reference implementations in :mod:`repro.core.dp`, :mod:`repro.core.heap`
and :mod:`repro.core.greedy` evaluate the paper's algorithms with pure-Python
loops over :class:`~repro.core.merge.AggregateSegment` objects.  This module
provides drop-in array-backed counterparts selected with the
``backend="numpy"`` flag:

* :class:`NumpyPrefixSums` — the prefix sums of Proposition 1 stored as
  ``float64`` arrays, with :meth:`NumpyPrefixSums.sse_run_batch` evaluating
  the SSE of *every* candidate run ``s_{j+1} .. s_i`` for a fixed ``i`` in one
  vector expression;
* :func:`dp_first_row` / :func:`dp_best_split` — the DP error-matrix
  recurrence of Section 5.1 with the inner split-point loop replaced by a
  single ``np.argmin`` over the ``j``-range;
* :class:`NumpyMergeHeap` — the merge heap of Section 6.2.2 as parallel NumPy
  arrays (interval endpoints, aggregate values, linked-list indices, merge
  keys) under a :mod:`heapq` priority queue with lazy-deletion version
  stamps.  Merging updates array slices in place instead of allocating new
  segment objects, dead slots are compacted away so memory tracks the live
  heap size, and :meth:`NumpyMergeHeap.insert_batch` computes the merge keys
  of a whole batch of tuples vectorized (used by the batch GMS helpers);
* :meth:`NumpyMergeHeap.stage_chunk` / :meth:`NumpyMergeHeap.insert_staged` —
  the batched *online* insert path: a whole chunk of incoming tuples is
  bulk-written into reserved slots with their raw pairwise merge keys
  precomputed vectorized, then made visible to the merge policy one tuple at
  a time, so the online algorithms keep their exact tuple-at-a-time
  semantics while the per-insert key computation is amortised per chunk;
* :func:`greedy_merge_trajectory` — the complete greedy merge schedule of an
  array-encoded segment shard (the boundary-removal order and the merge
  error of every step down to ``cmin``), the unit of work executed by the
  sharded multiprocess engine of :mod:`repro.parallel`.

Both backends implement the same recurrences with the same floating-point
formulae, so the pure-Python path remains the reference oracle the NumPy path
is validated against (see ``tests/test_kernels.py``).
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..temporal import Interval
from .errors import Weights, resolve_weights
from .merge import AggregateSegment


# ----------------------------------------------------------------------
# Prefix sums and the vectorized DP inner loop (Sections 5.1 / 5.2)
# ----------------------------------------------------------------------
class NumpyPrefixSums:
    """Array-backed prefix sums for constant-time run SSE (Proposition 1).

    Mirrors :class:`repro.core.errors.PrefixSums` but stores the cumulative
    length / value / squared-value sums as ``float64`` arrays, enabling the
    batched run-error evaluation used by the vectorized DP recurrence.
    """

    __slots__ = ("segments", "weights", "_w2", "_L", "_S", "_SS")

    def __init__(
        self,
        segments: Sequence[AggregateSegment],
        weights: Weights | None = None,
    ) -> None:
        self.segments = list(segments)
        dimensions = self.segments[0].dimensions if self.segments else 0
        self.weights = resolve_weights(weights, dimensions)
        self._w2 = np.asarray(self.weights, dtype=np.float64) ** 2

        count = len(self.segments)
        lengths = np.zeros(count + 1, dtype=np.float64)
        values = np.zeros((dimensions, count + 1), dtype=np.float64)
        for index, segment in enumerate(self.segments, start=1):
            lengths[index] = segment.length
            values[:, index] = segment.values
        weighted = values * lengths
        self._L = np.cumsum(lengths)
        self._S = np.cumsum(weighted, axis=1)
        self._SS = np.cumsum(weighted * values, axis=1)

    def __len__(self) -> int:
        return len(self.segments)

    @property
    def dimensions(self) -> int:
        """Number of aggregate dimensions ``p``."""
        return self._S.shape[0]

    def total_length(self, first: int, last: int) -> float:
        """Total interval length of segments ``first .. last`` (inclusive)."""
        return float(self._L[last + 1] - self._L[first])

    def merged_values(self, first: int, last: int) -> Tuple[float, ...]:
        """Length-weighted mean values of segments ``first .. last``."""
        length = self._L[last + 1] - self._L[first]
        return tuple(
            float(v) for v in (self._S[:, last + 1] - self._S[:, first]) / length
        )

    def sse(self, first: int, last: int) -> float:
        """SSE of merging segments ``first .. last`` into a single tuple."""
        length = self._L[last + 1] - self._L[first]
        run_sum = self._S[:, last + 1] - self._S[:, first]
        run_square = self._SS[:, last + 1] - self._SS[:, first]
        deviation = np.maximum(run_square - run_sum * run_sum / length, 0.0)
        return float(self._w2 @ deviation)

    def sse_run_batch(self, j_lo: int, i: int) -> np.ndarray:
        """Run errors ``SSE(s_{j+1} .. s_i)`` for every ``j`` in ``[j_lo, i)``.

        Uses the paper's 1-based split-point convention: entry ``m`` of the
        returned array is the error of the run starting right after split
        point ``j = j_lo + m`` and ending at segment ``s_i``.
        """
        length = self._L[i] - self._L[j_lo:i]
        run_sum = self._S[:, [i]] - self._S[:, j_lo:i]
        run_square = self._SS[:, [i]] - self._SS[:, j_lo:i]
        deviation = np.maximum(run_square - run_sum * run_sum / length, 0.0)
        return self._w2 @ deviation


def dp_first_row(
    prefix: NumpyPrefixSums, i_max: int, first_gap: int | None
) -> np.ndarray:
    """Row ``k = 1`` of the error matrix: ``E[1][i] = SSE(s_1 .. s_i)``.

    ``first_gap`` is the position of the first non-adjacent pair (1-based) or
    ``None``; prefixes extending past it cannot be merged into one tuple and
    receive an infinite error.
    """
    n = len(prefix)
    row = np.full(n + 1, math.inf)
    length = prefix._L[1 : i_max + 1]
    run_sum = prefix._S[:, 1 : i_max + 1]
    run_square = prefix._SS[:, 1 : i_max + 1]
    deviation = np.maximum(run_square - run_sum * run_sum / length, 0.0)
    row[1 : i_max + 1] = prefix._w2 @ deviation
    if first_gap is not None and first_gap < i_max:
        row[first_gap + 1 : i_max + 1] = math.inf
    return row


def dp_best_split(
    prefix: NumpyPrefixSums,
    previous_row: np.ndarray,
    j_lo: int,
    i: int,
    infeasible_below: int = 0,
) -> Tuple[float, int]:
    """Best split point for cell ``E[k][i]`` via one vectorized ``argmin``.

    Evaluates ``E[k-1][j] + SSE(s_{j+1} .. s_i)`` for every candidate split
    ``j`` in ``[j_lo, i)`` and returns ``(error, split)``.  Candidates below
    ``infeasible_below`` correspond to runs crossing a gap and are forced to
    an infinite total (only relevant for the plain-DP baseline; the optimized
    evaluation passes a ``j_lo`` at or right of the last gap).  Ties are
    broken towards the *largest* ``j``, matching the pure-Python reference
    which scans the candidates from ``i - 1`` downwards and only accepts
    strict improvements.
    """
    totals = previous_row[j_lo:i] + prefix.sse_run_batch(j_lo, i)
    if infeasible_below > j_lo:
        totals[: infeasible_below - j_lo] = math.inf
    reversed_totals = totals[::-1]
    position = int(np.argmin(reversed_totals))
    best = float(reversed_totals[position])
    if math.isinf(best):
        return math.inf, 0
    return best, i - 1 - position


# ----------------------------------------------------------------------
# Shared vectorized primitives over array-encoded segments
# ----------------------------------------------------------------------
def adjacent_pair_mask(
    starts: np.ndarray, ends: np.ndarray, groups: np.ndarray
) -> np.ndarray:
    """Adjacency of every consecutive pair (Definition 2, vectorized).

    Element ``i`` is ``True`` iff positions ``i`` and ``i + 1`` belong to
    the same group and meet without a temporal gap.  The ``False`` positions
    are exactly the maximal-run boundaries; this single definition is shared
    by the heap kernels, the trajectory kernel and the shard planner of
    :mod:`repro.parallel`, so a change to the adjacency rule cannot diverge
    between them.
    """
    return (groups[:-1] == groups[1:]) & (ends[:-1] + 1 == starts[1:])


def pairwise_merge_keys(
    starts: np.ndarray,
    ends: np.ndarray,
    values: np.ndarray,
    groups: np.ndarray,
    w2: np.ndarray,
) -> np.ndarray:
    """Merge error of every consecutive pair, ``inf`` where not adjacent.

    The vectorized pairwise form of Proposition 2 —
    ``l·r/(l+r) · Σ_d w²_d (v_l − v_r)²`` — with exactly the floating-point
    operation order of the scalar key refresh, so keys computed in batch are
    bit-identical to keys computed one at a time.  The dimension sum is
    accumulated sequentially (one fused pass per dimension) to mirror the
    scalar loop of :meth:`NumpyMergeHeap._refresh_key`; only the rows are
    vectorized.
    """
    if len(starts) < 2:
        return np.zeros(0, dtype=np.float64)
    adjacent = adjacent_pair_mask(starts, ends, groups)
    left_len = (ends[:-1] - starts[:-1] + 1).astype(np.float64)
    right_len = (ends[1:] - starts[1:] + 1).astype(np.float64)
    factor = left_len * right_len / (left_len + right_len)
    pair = np.zeros(len(factor), dtype=np.float64)
    for d in range(values.shape[1]):
        diff = values[:-1, d] - values[1:, d]
        pair += (w2[d] * factor) * diff * diff
    return np.where(adjacent, pair, math.inf)


# ----------------------------------------------------------------------
# Array-backed merge heap (Section 6.2.2)
# ----------------------------------------------------------------------
class NumpyHeapNode:
    """Lightweight view of one live slot of a :class:`NumpyMergeHeap`.

    Exposes the same ``id`` / ``key`` / ``segment`` surface as
    :class:`repro.core.heap.HeapNode` so the greedy algorithms can treat both
    heap backends uniformly.  ``id`` is the stable insertion-order number
    (monotone exactly as in the linked-node implementation, and preserved
    across array compaction); ``index`` is the current array slot.

    Unlike a linked :class:`~repro.core.heap.HeapNode` — which stays valid
    forever — a view's slot can be reassigned when a later insertion
    compacts the storage.  Accessing ``key`` / ``segment`` through a stale
    view raises :class:`RuntimeError` instead of silently reading another
    tuple's data.
    """

    __slots__ = ("_heap", "index", "_id")

    def __init__(self, heap: "NumpyMergeHeap", index: int) -> None:
        self._heap = heap
        self.index = index
        self._id = heap._node_id[index]

    def _checked_index(self) -> int:
        node_ids = self._heap._node_id
        if self.index >= len(node_ids) or node_ids[self.index] != self._id:
            raise RuntimeError(
                "heap node view invalidated: the storage was compacted by a "
                "later insertion; re-obtain the node via peek()/iteration"
            )
        return self.index

    @property
    def id(self) -> int:
        return self._id

    @property
    def key(self) -> float:
        return self._heap._key[self._checked_index()]

    @property
    def segment(self) -> AggregateSegment:
        return self._heap._segment_at(self._checked_index())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NumpyHeapNode(id={self._id})"


class NumpyMergeHeap:
    """Merge heap over parallel columns with lazy-deletion stamps.

    Column layout (one row per inserted tuple, rows never move):

    ``_start`` / ``_end``
        interval endpoints;
    ``_values``
        length-weighted mean aggregate values, one immutable row (tuple or
        list of ``p`` floats) per tuple.  Rows are *rebound*, never mutated
        in place, so a row reference taken at any point stays valid forever
        (the merge delta log exploits this to record merged values by
        reference);
    ``_group``
        dense integer group ids (arbitrary group tuples are interned);
    ``_prev`` / ``_next``
        doubly linked chronological list as row indices (``-1`` = none);
    ``_key`` / ``_version`` / ``_alive``
        merge-with-predecessor error, lazy-deletion stamp and liveness.

    All columns are Python lists rather than arrays: the online merge loop
    is dominated by single-element reads and writes, where list indexing is
    several times faster than NumPy scalar indexing, and at the typical
    ``p ≤ 16`` even the per-row value arithmetic is faster as a scalar loop
    than as NumPy row expressions (measured ~3× at ``p = 10``).  Bulk
    operations (batch key computation, staged chunks) still run vectorized
    on arrays built from the incoming segments, with the dimension sums
    accumulated sequentially so batch keys stay bit-identical to scalar
    keys.

    The priority queue is a :mod:`heapq` binary heap of
    ``(key, counter, index, version)`` entries; stale entries are skipped
    during ``peek`` exactly like the pure-Python heap.  Merging a tuple into
    its predecessor is a handful of in-place updates — no intermediate
    :class:`AggregateSegment` objects are allocated until :meth:`segments`
    materialises the final relation.

    Merged rows leave dead slots behind; when an insertion would outgrow the
    arrays while at least half the slots are dead, the storage is compacted
    in place instead of doubled, so memory stays proportional to the *live*
    heap size (``c + β`` for the online algorithms) rather than to the total
    number of tuples ever streamed.  Node ids survive compaction; the
    priority queue is rebuilt from the surviving keys.
    """

    _INITIAL_CAPACITY = 1024

    def __init__(self, weights: Weights | None = None) -> None:
        self._weights = weights
        self._w2: np.ndarray | None = None
        self._dimensions: int | None = None
        self._capacity = 0
        self._count = 0
        self._size = 0
        self.max_size = 0
        self._head = -1
        self._tail = -1
        self._entries: List[tuple] = []
        self._entry_counter = 0
        self._next_node_id = 1
        self._group_ids: Dict[tuple, int] = {}
        self._group_keys: List[tuple] = []
        self._staged_base = 0
        self._staged_end = 0
        self._staged_keys: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Storage management
    # ------------------------------------------------------------------
    def _allocate(self, dimensions: int) -> None:
        self._dimensions = dimensions
        self._w2 = (
            np.asarray(resolve_weights(self._weights, dimensions)) ** 2
        )
        self._w2l: List[float] = self._w2.tolist()
        self._capacity = self._INITIAL_CAPACITY
        self._values: List[Sequence[float]] = []
        #: Interval lengths as floats (exact — lengths are small integers),
        #: maintained alongside the endpoints so the merge arithmetic never
        #: recomputes ``end - start + 1``.  A merged row's length is the sum
        #: of its parts, bit-identical to recomputing from the endpoints.
        self._length: List[float] = []
        self._start: List[int] = []
        self._end: List[int] = []
        self._group: List[int] = []
        self._prev: List[int] = []
        self._next: List[int] = []
        self._key: List[float] = []
        self._version: List[int] = []
        self._alive: List[bool] = []
        self._node_id: List[int] = []

    def _ensure_capacity(self, extra: int) -> None:
        """Make room for ``extra`` more rows, compacting before growing.

        Compaction is preferred whenever at least half the allocated slots
        are dead (merged away): it keeps memory bounded by the live heap
        size on long streams.  Growing preserves row indices; compaction
        does not, so it must only happen between insertions — any
        outstanding :class:`NumpyHeapNode` indices become invalid.
        """
        if self._count + extra <= self._capacity:
            return
        if self._size <= self._capacity // 2:
            self._compact()
            # Leave headroom proportional to the live size after compacting
            # (capacity ≥ 2× the post-compaction occupancy): steady-state
            # streams then compact every ~live-size tuples instead of every
            # few chunks, while memory stays bounded by the live heap.
            self._grow(2 * (self._count + extra))
        if self._count + extra > self._capacity:
            self._grow(self._count + extra)

    def _compact(self) -> None:
        """Drop dead rows, renumbering slots in chronological order."""
        order = []
        index = self._head
        while index >= 0:
            order.append(index)
            index = self._next[index]
        count = len(order)
        if count:
            self._start = [self._start[i] for i in order]
            self._end = [self._end[i] for i in order]
            self._key = [self._key[i] for i in order]
            self._version = [self._version[i] for i in order]
            self._node_id = [self._node_id[i] for i in order]
            self._values = [self._values[i] for i in order]
            self._length = [self._length[i] for i in order]
            self._prev = list(range(-1, count - 1))
            self._next = list(range(1, count + 1))
            self._next[-1] = -1
            self._alive = [True] * count
            # Prune the group intern table to the groups still alive, so
            # memory does not grow with the number of groups ever streamed.
            group_rows = np.asarray(
                [self._group[i] for i in order], dtype=np.int64
            )
            live_groups = np.unique(group_rows)
            self._group = np.searchsorted(live_groups, group_rows).tolist()
            self._group_keys = [
                self._group_keys[int(g)] for g in live_groups
            ]
            self._group_ids = {
                key: position
                for position, key in enumerate(self._group_keys)
            }
        else:
            self._start = []
            self._end = []
            self._group = []
            self._prev = []
            self._next = []
            self._key = []
            self._version = []
            self._alive = []
            self._node_id = []
            self._values = []
            self._length = []
            self._group_keys = []
            self._group_ids = {}
        self._head = 0 if count else -1
        self._tail = count - 1 if count else -1
        self._count = count
        # Compaction only runs with no staged tuples pending, but the stale
        # staging marker from an earlier fully-consumed chunk must follow
        # the renumbered rows or the pending check would misfire forever.
        self._staged_base = count
        self._staged_end = count
        self._staged_keys = None
        # All queue entries reference pre-compaction slots: rebuild from the
        # surviving keys.  Re-pushing in chronological order can reorder
        # *exactly equal* keys relative to the reference heap's push order —
        # for such ties either merge is a valid greedy step of equal error.
        counter = self._entry_counter
        key = self._key
        version = self._version
        entries = []
        for index in range(count):
            entry_key = key[index]
            if entry_key != math.inf:
                counter += 1
                entries.append((entry_key, counter, index, version[index]))
        heapq.heapify(entries)
        self._entry_counter = counter
        self._entries = entries

    def _grow(self, needed: int) -> None:
        # The columns are plain lists, so growing is just raising the
        # capacity watermark that drives the compaction cadence.
        capacity = self._capacity
        while capacity < needed:
            capacity *= 2
        self._capacity = capacity

    def _intern_group(self, group: tuple) -> int:
        group_id = self._group_ids.get(group)
        if group_id is None:
            group_id = len(self._group_keys)
            self._group_ids[group] = group_id
            self._group_keys.append(group)
        return group_id

    # ------------------------------------------------------------------
    # Basic state
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    @property
    def tail(self) -> Optional[NumpyHeapNode]:
        """The most recently inserted (chronologically last) node."""
        return NumpyHeapNode(self, self._tail) if self._tail >= 0 else None

    @property
    def head(self) -> Optional[NumpyHeapNode]:
        """The chronologically first node."""
        return NumpyHeapNode(self, self._head) if self._head >= 0 else None

    # ------------------------------------------------------------------
    # Operations of the paper: INSERT, PEEK, MERGE
    # ------------------------------------------------------------------
    def insert(self, segment: AggregateSegment) -> NumpyHeapNode:
        """Append one tuple at the end of the list and index it in the heap."""
        self._check_no_staged()
        if self._dimensions is not None:
            self._ensure_capacity(1)
        index = self._append_slot(segment)
        self._refresh_key(index)
        return NumpyHeapNode(self, index)

    def insert_batch(
        self, segments: Sequence[AggregateSegment]
    ) -> List[NumpyHeapNode]:
        """Append a chunk of tuples, computing all merge keys vectorized.

        Equivalent to calling :meth:`insert` once per segment but the
        pairwise merge errors (Proposition 2) of the whole batch are
        evaluated with array expressions.  Used by the batch GMS helpers
        (:func:`repro.core.greedy.gms_reduce_to_size` /
        ``gms_reduce_to_error``) to build the initial heap vectorized; the
        *online* algorithms insert tuple by tuple because their merge policy
        is interleaved with insertion.
        """
        self._check_no_staged()
        if not segments:
            return []
        if self._dimensions is None:
            self._allocate(segments[0].dimensions)
        self._ensure_capacity(len(segments))
        first = self._count
        for segment in segments:
            self._append_slot(segment)
        last = self._count  # exclusive
        count = last - first

        starts = np.asarray(self._start[first:last], dtype=np.int64)
        ends = np.asarray(self._end[first:last], dtype=np.int64)
        groups = np.asarray(self._group[first:last], dtype=np.int64)
        values = np.asarray(self._values[first:last], dtype=np.float64)

        # Rows after the first have their predecessor inside the batch; the
        # first row's predecessor is whatever the tail was before the batch.
        keys = np.full(count, math.inf)
        keys[1:] = pairwise_merge_keys(starts, ends, values, groups, self._w2)
        key_list = keys.tolist()
        predecessor = self._prev[first]
        if predecessor >= 0 and self._is_adjacent(predecessor, first):
            key_list[0] = self._pair_key(predecessor, first)
        for offset, key in enumerate(key_list):
            index = first + offset
            self._key[index] = key
            self._version[index] += 1
            if not math.isinf(key):
                self._push_entry(index)
        return [NumpyHeapNode(self, index) for index in range(first, last)]

    # ------------------------------------------------------------------
    # Batched online insertion (staged chunks)
    # ------------------------------------------------------------------
    def stage_chunk(self, segments: Sequence[AggregateSegment]) -> int:
        """Bulk-write a chunk of incoming tuples without making them visible.

        The whole chunk is written into reserved slots in one pass — interval
        endpoints, aggregate values, interned groups, node ids — and the raw
        pairwise merge keys *within* the chunk are precomputed vectorized.
        Tuples then enter the heap one at a time via :meth:`insert_staged`,
        which reuses the precomputed key whenever the tuple's chronological
        predecessor is still the untouched raw tuple staged right before it
        (the overwhelmingly common case) and falls back to a full key
        recomputation otherwise.  The observable heap state after each
        ``insert_staged`` is identical to calling :meth:`insert` tuple by
        tuple; only the per-insert Python overhead is amortised.

        Every staged tuple must be activated before the next ``stage_chunk``
        / ``insert`` / ``insert_batch`` call.
        """
        if self._count < self._staged_end:
            raise RuntimeError(
                "cannot stage a new chunk while staged tuples are pending; "
                "activate them with insert_staged() first"
            )
        count = len(segments)
        if count == 0:
            return 0
        if self._dimensions is None:
            self._allocate(segments[0].dimensions)
        self._ensure_capacity(count)
        base = self._count
        starts = np.fromiter(
            (s.interval.start for s in segments), np.int64, count
        )
        ends = np.fromiter((s.interval.end for s in segments), np.int64, count)
        rows = [s.values for s in segments]
        self._start.extend(starts.tolist())
        self._end.extend(ends.tolist())
        self._length.extend((ends - starts + 1).astype(np.float64).tolist())
        self._values.extend(rows)
        last_group: tuple | None = None
        last_group_id = -1
        for segment in segments:
            if segment.group != last_group:
                last_group = segment.group
                last_group_id = self._intern_group(last_group)
            self._group.append(last_group_id)
        self._node_id.extend(
            range(self._next_node_id, self._next_node_id + count)
        )
        self._next_node_id += count
        self._prev.extend([-1] * count)
        self._next.extend([-1] * count)
        self._alive.extend([False] * count)
        self._key.extend([math.inf] * count)
        self._version.extend([0] * count)

        # Raw pairwise keys: key of staged tuple t against staged tuple t-1.
        # The first tuple's predecessor is whatever the live tail is at
        # activation time, so its key is always recomputed (NaN sentinel).
        keys = np.full(count, np.nan)
        if count > 1:
            groups = np.asarray(self._group[base : base + count], np.int64)
            keys[1:] = pairwise_merge_keys(
                starts, ends,
                np.asarray(rows, dtype=np.float64),
                groups, self._w2,
            )
        self._staged_base = base
        self._staged_end = base + count
        self._staged_keys = keys
        return count

    def insert_staged(self) -> Tuple[int, float]:
        """Make the next staged tuple visible; returns ``(node_id, key)``.

        Links the tuple at the end of the chronological list and indexes it
        in the priority queue, exactly like :meth:`insert`, but reuses the
        merge key precomputed by :meth:`stage_chunk` when it is still valid.
        """
        index = self._count
        if index >= self._staged_end:
            raise RuntimeError(
                "no staged tuples pending; call stage_chunk() first"
            )
        self._count = index + 1
        previous = self._tail
        self._prev[index] = previous
        self._next[index] = -1
        if previous >= 0:
            self._next[previous] = index
        else:
            self._head = index
        self._tail = index
        self._alive[index] = True
        self._size += 1
        self.max_size = max(self.max_size, self._size)
        node_id = self._node_id[index]
        staged_key = float(self._staged_keys[index - self._staged_base])
        # The precomputed key assumed the predecessor is the raw tuple staged
        # right before this one.  A live tail with node id one less is
        # necessarily that tuple, untouched: it cannot have absorbed a
        # successor (none was live yet) and being merged away would have
        # killed it.
        if (
            not math.isnan(staged_key)
            and previous >= 0
            and self._node_id[previous] == node_id - 1
        ):
            self._key[index] = staged_key
            self._version[index] += 1
            if not math.isinf(staged_key):
                self._push_entry(index)
            return node_id, staged_key
        self._refresh_key(index)
        return node_id, self._key[index]

    def _check_no_staged(self) -> None:
        if self._count < self._staged_end:
            raise RuntimeError(
                "staged tuples are pending; activate them with "
                "insert_staged() before inserting directly"
            )

    def activate_staged_all(
        self,
        *,
        size: Optional[int] = None,
        step_threshold: float = 0.0,
        delta: float = 1,
        last_gap_id: int = 0,
        before_gap: int = 0,
        after_gap: int = 0,
        total_error: float = 0.0,
        merges: int = 0,
        log: "Optional[DeltaLog]" = None,
    ) -> Tuple[int, int, int, float, int]:
        """Activate every pending staged tuple, draining merges in between.

        The fused form of the online inner loop: activates the staged chunk
        tuple by tuple and runs the merge policy of the paper's Fig. 11
        (``size`` given, gPTAc) or Fig. 13 (``step_threshold``, gPTAε)
        after each activation, exactly as
        :class:`repro.core.greedy.OnlineReducer` does through the
        ``insert_staged`` / ``peek_entry`` / ``merge_top`` protocol — but
        with every column aliased to a local and the per-dimension
        arithmetic inlined, which removes the per-tuple method-dispatch and
        row-view overhead that dominated the staged path.  The observable
        heap state, the gap bookkeeping and the accumulated error are
        bit-identical to the per-tuple protocol (asserted by the session
        and kernel parity suites); the policy logic here and in
        ``OnlineReducer._drain_size_bounded`` / ``_drain_error_bounded``
        must be kept in lockstep.

        Two *no-interaction* fast paths activate tuples in bulk (slice
        writes for the linking and liveness columns) because no merge can
        possibly fire between their activations:

        * size-bounded: the prefix that fits under the size budget — the
          drain only runs while the heap exceeds ``size``;
        * error-bounded: the whole chunk, when neither the current frontier
          (top of the heap) nor any staged merge key can beat the
          ``step_threshold`` — no key below the threshold can appear
          without a merge happening first.

        Returns the updated ``(last_gap_id, before_gap, after_gap,
        total_error, merges)`` bookkeeping.  When ``log`` is given, every
        committed insert and merge is appended to it in commit order.
        """
        first = self._count
        stop = self._staged_end
        if first >= stop:
            return last_gap_id, before_gap, after_gap, total_error, merges
        offset = self._staged_base
        assert self._staged_keys is not None
        skeys = self._staged_keys.tolist()

        # Local aliases of every column touched by the hot loop.
        start = self._start
        end = self._end
        group = self._group
        prev_ = self._prev
        next_ = self._next
        key = self._key
        version = self._version
        alive = self._alive
        node_id = self._node_id
        values = self._values
        length = self._length
        w2l = self._w2l
        entries = self._entries
        push = heapq.heappush
        pop = heapq.heappop
        counter = self._entry_counter
        live = self._size
        max_size = self.max_size
        head = self._head
        tail = self._tail
        inf = math.inf
        size_bounded = size is not None
        delta_is_inf = delta == math.inf
        delta_is_one = delta == 1
        delta_int = 0 if delta_is_inf else int(delta)
        group_keys = self._group_keys
        record_insert = log.record_insert if log is not None else None
        record_merge = log.record_merge if log is not None else None

        # Staged rows are fresh (version 0, unlinked, unreachable until
        # activated), so liveness and the activation version bump can be
        # written for the whole span up front with two slice assignments.
        alive[first:stop] = [True] * (stop - first)
        version[first:stop] = [1] * (stop - first)

        # One-shot no-interaction detection for the error-bounded policy:
        # when neither the current frontier nor any staged key can beat the
        # step threshold, no merge can fire anywhere in this chunk (keys
        # only change through merges), so the whole chunk bulk-activates.
        error_bulk = False
        if not size_bounded:
            top_key = None
            while entries:
                entry_key, _, entry_index, entry_version = entries[0]
                if (
                    alive[entry_index]
                    and version[entry_index] == entry_version
                    and key[entry_index] == entry_key
                ):
                    top_key = entry_key
                    break
                pop(entries)
            chunk_min = inf
            for position in range(first, stop):
                staged = skeys[position - offset]
                if staged != staged:  # NaN = resolve against the predecessor
                    predecessor = tail if position == first else position - 1
                    if (
                        predecessor >= 0
                        and group[predecessor] == group[position]
                        and end[predecessor] + 1 == start[position]
                    ):
                        staged = self._pair_key(predecessor, position)
                    else:
                        staged = inf
                    skeys[position - offset] = staged
                if staged < chunk_min:
                    chunk_min = staged
            error_bulk = (
                top_key is None or top_key > step_threshold
            ) and chunk_min > step_threshold

        index = first
        while index < stop:
            # ----------------------------------------------------------
            # Bulk-activate the no-interaction span starting here.
            # ----------------------------------------------------------
            if size_bounded:
                bulk = min(stop - index, size - live) if live < size else 0
            else:
                bulk = stop - index if error_bulk else 0
            if bulk:
                span = range(index, index + bulk)
                prev_[index : index + bulk] = range(
                    index - 1, index + bulk - 1
                )
                previous_tail = tail
                prev_[index] = previous_tail
                next_[index : index + bulk] = range(index + 1, index + bulk + 1)
                next_[index + bulk - 1] = -1
                if previous_tail >= 0:
                    next_[previous_tail] = index
                else:
                    head = index
                tail = index + bulk - 1
                live += bulk
                if live > max_size:
                    max_size = live
                for position in span:
                    activation_key = skeys[position - offset]
                    if activation_key != activation_key:
                        predecessor = (
                            previous_tail if position == index else position - 1
                        )
                        if (
                            predecessor >= 0
                            and group[predecessor] == group[position]
                            and end[predecessor] + 1 == start[position]
                        ):
                            activation_key = self._pair_key(
                                predecessor, position
                            )
                        else:
                            activation_key = inf
                    key[position] = activation_key
                    if activation_key != inf:
                        counter += 1
                        push(
                            entries,
                            (activation_key, counter, position, 1),
                        )
                        after_gap += 1
                    else:
                        last_gap_id = node_id[position]
                        before_gap += after_gap
                        after_gap = 1
                    if record_insert is not None:
                        record_insert(
                            node_id[position],
                            start[position],
                            end[position],
                            group_keys[group[position]],
                            values[position],
                            activation_key,
                        )
                index += bulk
                continue

            # ----------------------------------------------------------
            # Interacting tuple: activate it, then drain eligible merges.
            # ----------------------------------------------------------
            previous = tail
            prev_[index] = previous
            if previous >= 0:
                next_[previous] = index
            else:
                head = index
            tail = index
            live += 1
            if live > max_size:
                max_size = live
            activation_key = skeys[index - offset]
            if activation_key != activation_key or previous != index - 1:
                # NaN sentinel, or the staged predecessor was disturbed by
                # a merge: recompute against the live tail.
                if (
                    previous >= 0
                    and group[previous] == group[index]
                    and end[previous] + 1 == start[index]
                ):
                    activation_key = self._pair_key(previous, index)
                else:
                    activation_key = inf
            key[index] = activation_key
            if activation_key != inf:
                counter += 1
                push(entries, (activation_key, counter, index, 1))
                after_gap += 1
            else:
                last_gap_id = node_id[index]
                before_gap += after_gap
                after_gap = 1
            if record_insert is not None:
                record_insert(
                    node_id[index],
                    start[index],
                    end[index],
                    group_keys[group[index]],
                    values[index],
                    activation_key,
                )

            # Drain: one iteration per committed merge.
            while True:
                if size_bounded and live <= size:
                    break
                top_index = -1
                while entries:
                    entry_key, _, entry_index, entry_version = entries[0]
                    if (
                        alive[entry_index]
                        and version[entry_index] == entry_version
                        and key[entry_index] == entry_key
                    ):
                        top_index = entry_index
                        top_key = entry_key
                        break
                    pop(entries)
                if top_index < 0:
                    break
                if not size_bounded and top_key > step_threshold:
                    break
                top_node = node_id[top_index]
                if top_node < last_gap_id:
                    if size_bounded and before_gap < size:
                        break
                    before_gap -= 1
                elif top_node > last_gap_id:
                    if delta_is_one:
                        successor = next_[top_index]
                        if (
                            successor < 0
                            or group[top_index] != group[successor]
                            or end[top_index] + 1 != start[successor]
                        ):
                            break
                    elif delta_is_inf:
                        break
                    elif delta_int:
                        count = 0
                        cursor = top_index
                        while count < delta_int:
                            successor = next_[cursor]
                            if (
                                successor < 0
                                or group[cursor] != group[successor]
                                or end[cursor] + 1 != start[successor]
                            ):
                                break
                            count += 1
                            cursor = successor
                        if count < delta_int:
                            break
                    after_gap -= 1
                else:
                    break
                total_error += top_key
                merges += 1
                # The winning entry is consumed by this merge: pop it now
                # instead of leaving it to go stale (same heap contents,
                # one fewer lazy validity round per merge).
                pop(entries)

                # Inline merge_top: fold the top into its predecessor.
                predecessor = prev_[top_index]
                left_length = length[predecessor]
                right_length = length[top_index]
                length_sum = left_length + right_length
                merged_row = [
                    (left_length * a + right_length * b) / length_sum
                    for a, b in zip(values[predecessor], values[top_index])
                ]
                values[predecessor] = merged_row
                end[predecessor] = end[top_index]
                length[predecessor] = length_sum
                successor = next_[top_index]
                next_[predecessor] = successor
                if successor >= 0:
                    prev_[successor] = predecessor
                else:
                    tail = predecessor
                alive[top_index] = False
                live -= 1

                # Refresh the predecessor's key, then the successor's —
                # the same order (and entry-counter order) as merge_top.
                before = prev_[predecessor]
                if (
                    before >= 0
                    and group[before] == group[predecessor]
                    and end[before] + 1 == start[predecessor]
                ):
                    left2 = length[before]
                    factor = left2 * length_sum / (left2 + length_sum)
                    refreshed = 0.0
                    for w2, a, b in zip(w2l, values[before], merged_row):
                        diff = a - b
                        refreshed += (w2 * factor) * diff * diff
                    key[predecessor] = refreshed
                    version[predecessor] += 1
                    counter += 1
                    push(
                        entries,
                        (refreshed, counter, predecessor,
                         version[predecessor]),
                    )
                else:
                    key[predecessor] = inf
                    version[predecessor] += 1
                if successor >= 0:
                    if (
                        group[predecessor] == group[successor]
                        and end[predecessor] + 1 == start[successor]
                    ):
                        right2 = length[successor]
                        factor = (
                            length_sum * right2 / (length_sum + right2)
                        )
                        refreshed = 0.0
                        for w2, a, b in zip(
                            w2l, merged_row, values[successor]
                        ):
                            diff = a - b
                            refreshed += (w2 * factor) * diff * diff
                        key[successor] = refreshed
                        version[successor] += 1
                        counter += 1
                        push(
                            entries,
                            (refreshed, counter, successor,
                             version[successor]),
                        )
                    else:
                        key[successor] = inf
                        version[successor] += 1
                if record_merge is not None:
                    record_merge(
                        node_id[top_index],
                        node_id[predecessor],
                        merged_row,
                        key[predecessor],
                        node_id[successor] if successor >= 0 else -1,
                        key[successor] if successor >= 0 else inf,
                    )
            index += 1

        # Write the aliased scalars back.
        self._count = stop
        self._size = live
        self.max_size = max_size
        self._head = head
        self._tail = tail
        self._entry_counter = counter
        # A chunk boundary is an insertion boundary, so compacting here is
        # as safe as inside ``_ensure_capacity`` — and it is the only
        # chance to reclaim the dead rows a single huge chunk leaves
        # behind (one 200k-tuple push would otherwise pin 200k dead slots
        # behind a 1k-row live heap for the session's lifetime).
        if live <= self._count // 4 and self._count >= self._INITIAL_CAPACITY:
            self._compact()
        return last_gap_id, before_gap, after_gap, total_error, merges

    def peek(self) -> Optional[NumpyHeapNode]:
        """Return the node with the smallest key without removing it."""
        index = self._peek_index()
        return NumpyHeapNode(self, index) if index is not None else None

    def peek_entry(self) -> Optional[Tuple[int, int, float]]:
        """Scalar view of the top: ``(handle, node_id, key)`` or ``None``.

        The allocation-free twin of :meth:`peek` used by the greedy inner
        loops: ``handle`` is accepted by :meth:`adjacent_successor_count`
        and the id/key are plain scalars instead of node-view properties.
        """
        index = self._peek_index()
        if index is None:
            return None
        return index, self._node_id[index], self._key[index]

    def merge_top(self) -> NumpyHeapNode:
        """Merge the minimum-key node into its predecessor (in place)."""
        index = self._peek_index()
        if index is None or math.isinf(self._key[index]):
            raise ValueError("no adjacent pair available for merging")
        predecessor = self._prev[index]
        left_length = self._length[predecessor]
        right_length = self._length[index]
        total = left_length + right_length
        # Rebind, never mutate: outstanding row references (delta log) must
        # keep seeing the pre-merge values.
        self._values[predecessor] = [
            (left_length * a + right_length * b) / total
            for a, b in zip(self._values[predecessor], self._values[index])
        ]
        self._end[predecessor] = self._end[index]
        self._length[predecessor] = total

        successor = self._next[index]
        self._next[predecessor] = successor
        if successor >= 0:
            self._prev[successor] = predecessor
        else:
            self._tail = predecessor
        self._alive[index] = False
        self._size -= 1

        self._refresh_key(predecessor)
        if successor >= 0:
            self._refresh_key(successor)
        return NumpyHeapNode(self, predecessor)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _append_slot(self, segment: AggregateSegment) -> int:
        if self._dimensions is None:
            self._allocate(segment.dimensions)
        elif self._count >= self._capacity:
            # Callers reserve space up front; this only fires if they did
            # not, and growing (unlike compacting) preserves row indices.
            self._grow(self._count + 1)
        index = self._count
        self._count += 1
        self._node_id.append(self._next_node_id)
        self._next_node_id += 1
        interval = segment.interval
        self._start.append(interval.start)
        self._end.append(interval.end)
        self._length.append(float(interval.end - interval.start + 1))
        self._values.append(segment.values)
        self._group.append(self._intern_group(segment.group))
        previous = self._tail
        self._prev.append(previous)
        self._next.append(-1)
        if previous >= 0:
            self._next[previous] = index
        else:
            self._head = index
        self._tail = index
        self._alive.append(True)
        self._key.append(math.inf)
        self._version.append(0)
        self._size += 1
        self.max_size = max(self.max_size, self._size)
        return index

    def _is_adjacent(self, left: int, right: int) -> bool:
        return (
            self._group[left] == self._group[right]
            and self._end[left] + 1 == self._start[right]
        )

    def _pair_key(self, predecessor: int, index: int) -> float:
        """Merge error of the (adjacent) pair ``predecessor`` / ``index``.

        The scalar form of :func:`pairwise_merge_keys`: same per-element
        operation order, dimensions accumulated sequentially, so scalar and
        batch keys are bit-identical.
        """
        left_length = self._length[predecessor]
        right_length = self._length[index]
        factor = left_length * right_length / (left_length + right_length)
        key = 0.0
        for w2, a, b in zip(
            self._w2l, self._values[predecessor], self._values[index]
        ):
            diff = a - b
            key += (w2 * factor) * diff * diff
        return key

    def _refresh_key(self, index: int) -> None:
        predecessor = self._prev[index]
        if predecessor < 0 or not self._is_adjacent(predecessor, index):
            self._key[index] = math.inf
            self._version[index] += 1
            return
        self._key[index] = self._pair_key(predecessor, index)
        self._version[index] += 1
        self._push_entry(index)

    def _push_entry(self, index: int) -> None:
        self._entry_counter += 1
        heapq.heappush(
            self._entries,
            (
                self._key[index],
                self._entry_counter,
                index,
                self._version[index],
            ),
        )

    def _peek_index(self) -> Optional[int]:
        while self._entries:
            key, _, index, version = self._entries[0]
            if (
                self._alive[index]
                and self._version[index] == version
                and self._key[index] == key
            ):
                return index
            heapq.heappop(self._entries)
        return None

    def _segment_at(self, index: int) -> AggregateSegment:
        return AggregateSegment(
            self._group_keys[self._group[index]],
            tuple(self._values[index]),
            Interval(self._start[index], self._end[index]),
        )

    def adjacent_successor_count(self, node, limit: int) -> int:
        """Number of successors chained to ``node`` by adjacency, up to ``limit``."""
        count = 0
        if isinstance(node, NumpyHeapNode):
            current = node._checked_index()
        else:
            current = int(node)
        while count < limit:
            successor = self._next[current]
            if successor < 0 or not self._is_adjacent(current, successor):
                break
            count += 1
            current = successor
        return count

    def successor_entry(self, node) -> Optional[Tuple[int, float]]:
        """``(id, key)`` of the chronological successor, or ``None``.

        ``node`` is a :class:`NumpyHeapNode` or a raw row index, as for
        :meth:`adjacent_successor_count`.
        """
        if isinstance(node, NumpyHeapNode):
            index = node._checked_index()
        else:
            index = int(node)
        successor = self._next[index]
        if successor < 0:
            return None
        return self._node_id[successor], self._key[successor]

    def values_entry(self, node) -> Sequence[float]:
        """The node's aggregate value row (immutable, by reference)."""
        if isinstance(node, NumpyHeapNode):
            index = node._checked_index()
        else:
            index = int(node)
        return self._values[index]

    def __iter__(self) -> Iterator[NumpyHeapNode]:
        """Iterate over live nodes in chronological (list) order."""
        index = self._head
        while index >= 0:
            yield NumpyHeapNode(self, index)
            index = self._next[index]

    def segments(self) -> List[AggregateSegment]:
        """Materialise the current intermediate relation in list order."""
        return [self._segment_at(node.index) for node in self]

    def clone(self) -> "NumpyMergeHeap":
        """Return an independent copy with identical observable behaviour.

        Every column, the priority queue (stale entries included — they
        carry the tie-breaking counters) and all allocation bookkeeping are
        copied, so any operation sequence on the clone yields bit-identical
        results to the same sequence on the original.  Used by the
        incremental compression session (:class:`repro.api.Compressor`) to
        finalise a snapshot without disturbing the live online state.
        Staged tuples must all be activated before cloning.
        """
        self._check_no_staged()
        other = NumpyMergeHeap(self._weights)
        other._w2 = self._w2
        other._dimensions = self._dimensions
        other._capacity = self._capacity
        other._count = self._count
        other._size = self._size
        other.max_size = self.max_size
        other._head = self._head
        other._tail = self._tail
        other._entries = list(self._entries)
        other._entry_counter = self._entry_counter
        other._next_node_id = self._next_node_id
        other._group_ids = dict(self._group_ids)
        other._group_keys = list(self._group_keys)
        other._staged_base = self._staged_base
        other._staged_end = self._staged_end
        if self._dimensions is not None:
            other._w2l = self._w2l
            # Rows are immutable by convention (rebound on merge, never
            # mutated), so a shallow column copy suffices.
            other._values = list(self._values)
            other._length = list(self._length)
            other._start = list(self._start)
            other._end = list(self._end)
            other._group = list(self._group)
            other._prev = list(self._prev)
            other._next = list(self._next)
            other._key = list(self._key)
            other._version = list(self._version)
            other._alive = list(self._alive)
            other._node_id = list(self._node_id)
        return other


# ----------------------------------------------------------------------
# Delta-based incremental snapshots (merge delta log + mirror)
# ----------------------------------------------------------------------
class DeltaLog:
    """Column-oriented record of committed heap operations.

    The online state machine (:class:`repro.core.greedy.OnlineReducer`)
    appends one entry per *committed* operation — an insert made visible to
    the merge policy, or a merge folded into the relation — so a snapshot
    consumer can bring a materialised image of the live intermediate
    relation up to date in time proportional to the number of operations
    since the last snapshot, instead of re-reading the whole heap.

    Entries are stored as parallel columns per operation kind, with a
    ``kinds`` sequence preserving the interleaving.  Merged value rows are
    recorded *by reference*: both heap backends rebind a fresh immutable
    row on every merge, so no copying is needed.

    This same record is what makes the durability tier's write-ahead
    logging sound (:mod:`repro.service.durability`): because the log
    captures every committed operation deterministically, re-feeding the
    logged input chunks through
    :meth:`~repro.core.greedy.OnlineReducer.replay` reproduces the exact
    operation sequence — the **replay invariant**: *WAL replay composed
    over the last checkpoint equals the live reducer state,
    bit-identically*, so a recovered store serves the same summary bytes
    the uncrashed process would have.
    """

    INSERT = 0
    MERGE = 1

    __slots__ = (
        "kinds",
        "insert_ids",
        "insert_starts",
        "insert_ends",
        "insert_groups",
        "insert_values",
        "insert_keys",
        "merge_absorbed",
        "merge_survivors",
        "merge_values",
        "merge_survivor_keys",
        "merge_successors",
        "merge_successor_keys",
    )

    def __init__(self) -> None:
        self.kinds: List[int] = []
        self.insert_ids: List[int] = []
        self.insert_starts: List[int] = []
        self.insert_ends: List[int] = []
        self.insert_groups: List[tuple] = []
        self.insert_values: List[Sequence[float]] = []
        self.insert_keys: List[float] = []
        self.merge_absorbed: List[int] = []
        self.merge_survivors: List[int] = []
        self.merge_values: List[Sequence[float]] = []
        self.merge_survivor_keys: List[float] = []
        self.merge_successors: List[int] = []
        self.merge_successor_keys: List[float] = []

    def __len__(self) -> int:
        return len(self.kinds)

    def record_insert(
        self,
        node_id: int,
        start: int,
        end: int,
        group: tuple,
        values: Sequence[float],
        key: float,
    ) -> None:
        """One tuple appended at the tail with its activation merge key."""
        self.kinds.append(DeltaLog.INSERT)
        self.insert_ids.append(node_id)
        self.insert_starts.append(start)
        self.insert_ends.append(end)
        self.insert_groups.append(group)
        self.insert_values.append(values)
        self.insert_keys.append(key)

    def record_merge(
        self,
        absorbed_id: int,
        survivor_id: int,
        values: Sequence[float],
        survivor_key: float,
        successor_id: int,
        successor_key: float,
    ) -> None:
        """One committed merge: ``absorbed_id`` folded into ``survivor_id``.

        ``values`` is the survivor's post-merge row (by reference) and the
        two keys are the post-refresh merge keys of the survivor and of the
        absorbed tuple's chronological successor (``-1`` / ``inf`` when it
        has none) — everything a mirror needs to replay the merge without
        redoing any floating-point work.
        """
        self.kinds.append(DeltaLog.MERGE)
        self.merge_absorbed.append(absorbed_id)
        self.merge_survivors.append(survivor_id)
        self.merge_values.append(values)
        self.merge_survivor_keys.append(survivor_key)
        self.merge_successors.append(successor_id)
        self.merge_successor_keys.append(successor_key)

    def clear(self) -> None:
        for column in self.__slots__:
            getattr(self, column).clear()


class SnapshotColumns:
    """A summary snapshot as flat, query-ready columns.

    The column twin of a segment list: time-ordered interval endpoints,
    a dense ``(n, p)`` value matrix, interned group ids and the group-key
    table.  This is what the serving layer's query index consumes directly,
    skipping the per-segment object materialisation on the cold path.
    """

    __slots__ = ("starts", "ends", "values", "group_ids", "group_keys")

    def __init__(
        self,
        starts: np.ndarray,
        ends: np.ndarray,
        values: np.ndarray,
        group_ids: np.ndarray,
        group_keys: List[tuple],
    ) -> None:
        self.starts = starts
        self.ends = ends
        self.values = values
        self.group_ids = group_ids
        self.group_keys = group_keys

    def __len__(self) -> int:
        return len(self.starts)

    def segments(self) -> List[AggregateSegment]:
        """Materialise the snapshot as a segment list (row order)."""
        group_keys = self.group_keys
        group_ids = self.group_ids.tolist()
        starts = self.starts.tolist()
        ends = self.ends.tolist()
        return [
            AggregateSegment(
                group_keys[group_ids[i]],
                tuple(row),
                Interval(starts[i], ends[i]),
            )
            for i, row in enumerate(self.values.tolist())
        ]

    @classmethod
    def from_segments(
        cls, segments: Sequence[AggregateSegment]
    ) -> "SnapshotColumns":
        """Column form of an already-materialised segment list."""
        count = len(segments)
        starts = np.fromiter(
            (s.interval.start for s in segments), np.int64, count
        )
        ends = np.fromiter(
            (s.interval.end for s in segments), np.int64, count
        )
        dimensions = segments[0].dimensions if count else 0
        values = np.array(
            [s.values for s in segments], dtype=np.float64
        ).reshape(count, dimensions)
        group_keys: List[tuple] = []
        interned: Dict[tuple, int] = {}
        group_ids = np.zeros(count, dtype=np.int64)
        for index, segment in enumerate(segments):
            group_id = interned.get(segment.group)
            if group_id is None:
                group_id = len(group_keys)
                interned[segment.group] = group_id
                group_keys.append(segment.group)
            group_ids[index] = group_id
        return cls(starts, ends, values, group_ids, group_keys)

    @classmethod
    def concatenate(
        cls, parts: Sequence["SnapshotColumns"]
    ) -> "SnapshotColumns":
        """Row-wise concatenation, re-interning group ids across parts."""
        parts = [part for part in parts if len(part)]
        if not parts:
            return cls(
                np.zeros(0, np.int64),
                np.zeros(0, np.int64),
                np.zeros((0, 0), np.float64),
                np.zeros(0, np.int64),
                [],
            )
        if len(parts) == 1:
            return parts[0]
        group_keys: List[tuple] = []
        interned: Dict[tuple, int] = {}
        remapped: List[np.ndarray] = []
        for part in parts:
            mapping = np.zeros(len(part.group_keys), dtype=np.int64)
            for local_id, group in enumerate(part.group_keys):
                global_id = interned.get(group)
                if global_id is None:
                    global_id = len(group_keys)
                    interned[group] = global_id
                    group_keys.append(group)
                mapping[local_id] = global_id
            remapped.append(mapping[part.group_ids])
        return cls(
            np.concatenate([p.starts for p in parts]),
            np.concatenate([p.ends for p in parts]),
            np.concatenate([p.values for p in parts]),
            np.concatenate(remapped),
            group_keys,
        )


class SnapshotMirror:
    """Patchable column image of a live heap's intermediate relation.

    Holds the same information as the merge heap's columns — ids, interval
    endpoints, value rows, groups and the merge-with-predecessor keys — in
    chronological row order, and stays in sync by replaying a
    :class:`DeltaLog` (:meth:`apply`) instead of re-reading the heap.
    Value rows and keys are *copied* from the log, never recomputed, so the
    mirror is bit-exact with respect to the heap on either backend.

    Merged-away rows become tombstones; the storage is compacted once dead
    rows outnumber live ones, which keeps every operation amortised O(1)
    and memory proportional to the live relation.
    """

    _COMPACT_FLOOR = 1024

    def __init__(self) -> None:
        self.starts: List[int] = []
        self.ends: List[int] = []
        self.values: List[Sequence[float]] = []
        self.group_ids: List[int] = []
        self.keys: List[float] = []
        self.alive: List[bool] = []
        self.group_keys: List[tuple] = []
        self._interned: Dict[tuple, int] = {}
        self._position: Dict[int, int] = {}
        self.live = 0

    @classmethod
    def from_heap(cls, heap: Any) -> "SnapshotMirror":
        """Build the initial mirror from a heap's live nodes (O(heap)).

        Called once per session — every later snapshot patches this image
        with the delta log instead.
        """
        mirror = cls()
        for node in heap:
            segment = node.segment
            mirror._append(
                node.id,
                segment.interval.start,
                segment.interval.end,
                segment.group,
                segment.values,
                node.key,
            )
        return mirror

    def _append(
        self,
        node_id: int,
        start: int,
        end: int,
        group: tuple,
        values: Sequence[float],
        key: float,
    ) -> None:
        group_id = self._interned.get(group)
        if group_id is None:
            group_id = len(self.group_keys)
            self._interned[group] = group_id
            self.group_keys.append(group)
        self._position[node_id] = len(self.starts)
        self.starts.append(start)
        self.ends.append(end)
        self.values.append(values)
        self.group_ids.append(group_id)
        self.keys.append(key)
        self.alive.append(True)
        self.live += 1

    def apply(self, log: DeltaLog) -> None:
        """Replay a delta log, bringing the mirror up to the heap's state."""
        position = self._position
        insert_cursor = 0
        merge_cursor = 0
        for kind in log.kinds:
            if kind == DeltaLog.INSERT:
                self._append(
                    log.insert_ids[insert_cursor],
                    log.insert_starts[insert_cursor],
                    log.insert_ends[insert_cursor],
                    log.insert_groups[insert_cursor],
                    log.insert_values[insert_cursor],
                    log.insert_keys[insert_cursor],
                )
                insert_cursor += 1
            else:
                absorbed = position.pop(log.merge_absorbed[merge_cursor])
                survivor = position[log.merge_survivors[merge_cursor]]
                self.ends[survivor] = self.ends[absorbed]
                self.values[survivor] = log.merge_values[merge_cursor]
                self.keys[survivor] = log.merge_survivor_keys[merge_cursor]
                successor_id = log.merge_successors[merge_cursor]
                if successor_id >= 0:
                    self.keys[position[successor_id]] = (
                        log.merge_successor_keys[merge_cursor]
                    )
                self.alive[absorbed] = False
                self.live -= 1
                merge_cursor += 1
        if (
            len(self.starts) >= self._COMPACT_FLOOR
            and len(self.starts) >= 2 * self.live
        ):
            self._compact()

    def _compact(self) -> None:
        alive = self.alive
        order = [i for i in range(len(alive)) if alive[i]]
        self.starts = [self.starts[i] for i in order]
        self.ends = [self.ends[i] for i in order]
        self.values = [self.values[i] for i in order]
        self.group_ids = [self.group_ids[i] for i in order]
        self.keys = [self.keys[i] for i in order]
        self.alive = [True] * len(order)
        ids = {pos: node_id for node_id, pos in self._position.items()}
        self._position = {
            ids[old]: new for new, old in enumerate(order)
        }


def finalize_mirror(
    mirror: SnapshotMirror,
    *,
    size: Optional[int] = None,
    error_threshold: Optional[float] = None,
    total_error: float = 0.0,
    backend: str = "numpy",
    weights: Weights | None = None,
) -> Optional[Tuple[SnapshotColumns, float, int]]:
    """Run the end-of-input merge phase on a mirror, without touching it.

    The delta-snapshot twin of ``OnlineReducer.finalize``: gathers the
    mirror's live rows into working columns, replays the paper's
    end-of-input greedy phase — size-bounded down to ``size``, or
    error-bounded while ``total_error`` stays within ``error_threshold``
    (with the same ``1e-9`` slack as the oracle) — and returns the final
    snapshot as :class:`SnapshotColumns` together with the accumulated
    error and the number of tail merges.

    Starting keys are the mirror's (copied from the heap via the delta
    log); refreshed keys and merged value rows are computed with exactly
    the per-``backend`` floating-point formulae of the corresponding heap,
    so the result is bit-identical to cloning and finalising the live heap
    itself — with one guarded exception.  Tail entries are tie-broken in
    chronological order, while the live heap's queue carries historical
    insertion counters, so a pair of *exactly equal* winning keys could
    merge in a different order than the oracle would (common on
    integer-valued streams).  Rather than silently returning a different
    — if equal-error — reduction, the tail detects the ambiguity the
    moment a committed merge's key ties with any other queued key and
    returns ``None``; the caller then falls back to the clone+finalize
    oracle for that snapshot, keeping the bit-for-bit contract
    unconditional.
    """
    alive = mirror.alive
    live = [i for i in range(len(alive)) if alive[i]]
    starts = [mirror.starts[i] for i in live]
    ends = [mirror.ends[i] for i in live]
    values = [mirror.values[i] for i in live]
    group_ids = [mirror.group_ids[i] for i in live]
    keys = [mirror.keys[i] for i in live]
    count = len(live)
    prev_ = list(range(-1, count - 1))
    next_ = list(range(1, count + 1))
    if count:
        next_[-1] = -1
    row_alive = [True] * count
    version = [0] * count
    inf = math.inf

    entries = [
        (keys[i], i, i, 0) for i in range(count) if keys[i] != inf
    ]
    heapq.heapify(entries)
    counter = count  # refresh counters sort after every initial entry
    push = heapq.heappush
    pop = heapq.heappop

    if count:
        dimensions = len(values[0])
    else:
        dimensions = 0
    python_backend = backend == "python"
    resolved = resolve_weights(weights, dimensions)
    # Derive w² exactly as the corresponding heap does (`**` on Python
    # floats versus NumPy array power) — the two can differ in the last
    # ulp for non-trivial weights.
    if python_backend:
        w2l = [w ** 2 for w in resolved]
    else:
        w2l = (np.asarray(resolved, dtype=np.float64) ** 2).tolist()

    merges = 0
    remaining = count
    while entries:
        if size is not None and remaining <= size:
            break
        top_key, _, top, top_version = entries[0]
        if (
            not row_alive[top]
            or version[top] != top_version
            or keys[top] != top_key
        ):
            pop(entries)
            continue
        if error_threshold is not None:
            if total_error + top_key > error_threshold + 1e-9:
                break
        # Tie guard: the second-smallest key of a binary heap sits in one
        # of the root's children, so an equal key there (valid or stale —
        # conservative either way) means the pop order is counter-
        # dependent and could diverge from the oracle's historical
        # counters.  Bail out; the caller re-runs via the oracle.
        if (len(entries) > 1 and entries[1][0] == top_key) or (
            len(entries) > 2 and entries[2][0] == top_key
        ):
            return None
        total_error += top_key
        merges += 1

        predecessor = prev_[top]
        if python_backend:
            # The reference merge operator works on integer lengths.
            left_length = ends[predecessor] - starts[predecessor] + 1
            right_length = ends[top] - starts[top] + 1
        else:
            left_length = float(ends[predecessor] - starts[predecessor] + 1)
            right_length = float(ends[top] - starts[top] + 1)
        length_sum = left_length + right_length
        values[predecessor] = [
            (left_length * a + right_length * b) / length_sum
            for a, b in zip(values[predecessor], values[top])
        ]
        ends[predecessor] = ends[top]
        successor = next_[top]
        next_[predecessor] = successor
        if successor >= 0:
            prev_[successor] = predecessor
        row_alive[top] = False
        remaining -= 1

        for target in (predecessor, successor):
            if target < 0:
                continue
            before = prev_[target]
            if (
                before < 0
                or group_ids[before] != group_ids[target]
                or ends[before] + 1 != starts[target]
            ):
                refreshed = inf
            elif python_backend:
                left2 = ends[before] - starts[before] + 1
                right2 = ends[target] - starts[target] + 1
                factor = left2 * right2 / (left2 + right2)
                refreshed = 0.0
                for w2, a, b in zip(w2l, values[before], values[target]):
                    diff = a - b
                    refreshed += w2 * factor * diff ** 2
            else:
                left2 = float(ends[before] - starts[before] + 1)
                right2 = float(ends[target] - starts[target] + 1)
                factor = left2 * right2 / (left2 + right2)
                refreshed = 0.0
                for w2, a, b in zip(w2l, values[before], values[target]):
                    diff = a - b
                    refreshed += (w2 * factor) * diff * diff
            keys[target] = refreshed
            version[target] += 1
            if refreshed != inf:
                counter += 1
                push(entries, (refreshed, counter, target, version[target]))

    survivors = [i for i in range(count) if row_alive[i]]
    columns = SnapshotColumns(
        np.asarray([starts[i] for i in survivors], dtype=np.int64),
        np.asarray([ends[i] for i in survivors], dtype=np.int64),
        np.asarray(
            [values[i] for i in survivors], dtype=np.float64
        ).reshape(len(survivors), dimensions),
        np.asarray([group_ids[i] for i in survivors], dtype=np.int64),
        list(mirror.group_keys),
    )
    return columns, total_error, merges


# ----------------------------------------------------------------------
# Array-encoded greedy merge trajectories (sharded engine work unit)
# ----------------------------------------------------------------------
def greedy_merge_trajectory(
    starts: np.ndarray,
    ends: np.ndarray,
    values: np.ndarray,
    groups: np.ndarray,
    w2: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Complete greedy merge schedule of an array-encoded segment shard.

    Runs the greedy merging strategy over the shard all the way down to its
    local ``cmin`` and records every step: element ``t`` of the returned
    ``(boundaries, keys)`` pair says that the ``t``-th cheapest-first merge
    removed the boundary between original positions ``boundaries[t] - 1``
    and ``boundaries[t]`` at a cost of ``keys[t]``.

    Because greedy merging never crosses a maximal-run boundary, the global
    GMS reduction of a sharded input is exactly "each shard follows its own
    local schedule"; the only cross-shard coordination is *how many* steps of
    each schedule are taken, which :mod:`repro.parallel` decides with a
    k-way merge over the shard frontiers.  The schedule matches the merges
    the sequential heaps would perform inside this shard, with the same
    lazy-deletion tie-breaking (initial keys in insertion order, refreshed
    keys in merge order, predecessor before successor); only exact key ties
    are sensitive to floating-point formulation differences.

    Instead of maintaining merged aggregate values, the kernel exploits
    Proposition 2: a node is a contiguous block of original positions and
    its merge-with-predecessor key equals ``SSE(union) − SSE(left) −
    SSE(right)``, evaluated in constant time from weighted prefix sums
    (Proposition 1).  Each node carries its block's cached SSE, so a merge
    is a couple of scalar updates and each key refresh is one prefix-row
    difference plus a dot product (pure scalar arithmetic for ``p = 1``).

    All inputs are plain arrays (``int64`` endpoints and group ids,
    ``float64`` values of shape ``(n, p)`` and squared weights ``w2``), so a
    shard travels to a worker process as a handful of array buffers instead
    of ``n`` segment objects.
    """
    n = len(starts)
    if n < 2:
        return np.zeros(0, np.int64), np.zeros(0, np.float64)
    lengths_arr = (ends - starts + 1).astype(np.float64)
    adjacent = adjacent_pair_mask(starts, ends, groups)

    # Prefix sums over original positions (1-based, position 0 = zero):
    #   lengths[i] = Σ l,   weighted[i] = Σ l·w·v (per dim),
    #   squares[i] = Σ l·Σ_d w²·v_d²  (collapsed to a scalar).
    # SSE of block [lo, hi) = squares[hi]−squares[lo]
    #                         − ‖weighted[hi]−weighted[lo]‖² / (L[hi]−L[lo]).
    dimensions = values.shape[1]
    scaled = values * np.sqrt(w2)
    weighted_rows = np.zeros((n + 1, dimensions), dtype=np.float64)
    np.cumsum(scaled * lengths_arr[:, None], axis=0, out=weighted_rows[1:])
    length_prefix = [0.0]
    length_prefix.extend(np.cumsum(lengths_arr).tolist())
    square_prefix = [0.0]
    square_prefix.extend(
        np.cumsum((scaled * scaled).sum(axis=1) * lengths_arr).tolist()
    )
    # Per-refresh cross terms: pure scalar arithmetic for one dimension, a
    # Python inner product over list rows for small p (beats two array
    # temporaries plus a dot call), NumPy rows beyond that.
    scalar_weighted = (
        weighted_rows[:, 0].tolist() if dimensions == 1 else None
    )
    list_weighted = (
        weighted_rows.tolist() if 1 < dimensions <= 16 else None
    )

    # Node i is the block starting at original position i; ``last`` is the
    # exclusive end of the block and ``sse`` its cached internal error.
    # ``can_merge[i]`` never changes: a node's left boundary is fixed.
    can_merge = [False]
    can_merge.extend(adjacent.tolist())
    last = list(range(1, n + 1))
    sse = [0.0] * n
    key: List[float] = [math.inf] * n
    prev_ = list(range(-1, n - 1))
    next_ = list(range(1, n + 1))
    next_[-1] = -1
    alive = [True] * n
    version = [0] * n

    # Initial keys, vectorized: singleton blocks have zero internal SSE, so
    # the key of position i is just SSE of the pair block [i-1, i+1).
    pair_length = lengths_arr[:-1] + lengths_arr[1:]
    pair_weighted = weighted_rows[2:] - weighted_rows[:-2]
    pair_square = (
        np.asarray(square_prefix[2:]) - np.asarray(square_prefix[:-2])
    )
    pair_sse = np.maximum(
        pair_square - (pair_weighted * pair_weighted).sum(axis=1) / pair_length,
        0.0,
    )
    initial = np.where(adjacent, pair_sse, math.inf)
    key[1:] = initial.tolist()

    counter = 0
    entries: List[tuple] = []
    for index in range(1, n):
        if key[index] != math.inf:
            counter += 1
            entries.append((key[index], counter, index, 0))
    heapq.heapify(entries)

    boundaries: List[int] = []
    merge_keys: List[float] = []

    def refresh(index: int) -> None:
        nonlocal counter
        if not can_merge[index]:
            key[index] = math.inf
            version[index] += 1
            return
        predecessor = prev_[index]
        lo = predecessor
        hi = last[index]
        union_length = length_prefix[hi] - length_prefix[lo]
        if scalar_weighted is not None:
            delta = scalar_weighted[hi] - scalar_weighted[lo]
            cross = delta * delta
        elif list_weighted is not None:
            cross = 0.0
            for high, low in zip(list_weighted[hi], list_weighted[lo]):
                delta = high - low
                cross += delta * delta
        else:
            delta = weighted_rows[hi] - weighted_rows[lo]
            cross = float(delta @ delta)
        union_sse = (
            square_prefix[hi] - square_prefix[lo] - cross / union_length
        )
        refreshed = union_sse - sse[predecessor] - sse[index]
        if refreshed < 0.0:
            refreshed = 0.0
        key[index] = refreshed
        version[index] += 1
        counter += 1
        heapq.heappush(entries, (refreshed, counter, index, version[index]))

    heappop = heapq.heappop
    while entries:
        top_key, _, index, top_version = heappop(entries)
        if (
            not alive[index]
            or version[index] != top_version
            or key[index] != top_key
        ):
            continue
        predecessor = prev_[index]
        # The union SSE was already evaluated when this key was computed.
        sse[predecessor] = top_key + sse[predecessor] + sse[index]
        last[predecessor] = last[index]
        successor = next_[index]
        next_[predecessor] = successor
        if successor >= 0:
            prev_[successor] = predecessor
        alive[index] = False
        boundaries.append(index)
        merge_keys.append(top_key)
        refresh(predecessor)
        if successor >= 0:
            refresh(successor)

    return (
        np.asarray(boundaries, dtype=np.int64),
        np.asarray(merge_keys, dtype=np.float64),
    )


def shard_sse_max(
    starts: np.ndarray,
    ends: np.ndarray,
    values: np.ndarray,
    groups: np.ndarray,
    w2: np.ndarray,
) -> float:
    """``SSE_max`` of an array-encoded shard (error of collapsing each run).

    Vectorized equivalent of :func:`repro.core.errors.max_error` for the
    sharded engine: the shard is split at its maximal-run boundaries and the
    per-run deviations are evaluated with one ``reduceat`` per statistic.
    ``SSE_max`` is additive across runs, so summing the per-shard results
    yields the global error budget of the error-bounded reduction.
    """
    n = len(starts)
    if n == 0:
        return 0.0
    lengths = (ends - starts + 1).astype(np.float64)
    adjacent = adjacent_pair_mask(starts, ends, groups)
    run_starts = np.flatnonzero(np.concatenate(([True], ~adjacent)))
    weighted = values * lengths[:, None]
    run_length = np.add.reduceat(lengths, run_starts)
    run_sum = np.add.reduceat(weighted, run_starts, axis=0)
    run_square = np.add.reduceat(weighted * values, run_starts, axis=0)
    deviation = np.maximum(
        run_square - run_sum * run_sum / run_length[:, None], 0.0
    )
    return float((deviation @ w2).sum())


# ----------------------------------------------------------------------
# Snapshot-query helpers (serving layer, Propositions 1 / 2 reused)
# ----------------------------------------------------------------------
def instant_index(starts: np.ndarray, ends: np.ndarray, t: int) -> int:
    """Index of the segment covering chronon ``t``, or ``-1`` for a gap.

    One binary search over the (time-ordered, non-overlapping) segment
    starts of a summary snapshot; the candidate found is then checked
    against its end, so gaps between runs answer ``-1`` instead of the
    nearest neighbour.  This is the point-lookup primitive of the serving
    layer's :class:`repro.service.QueryEngine`.
    """
    index = int(np.searchsorted(starts, t, side="right")) - 1
    if index < 0 or ends[index] < int(t):
        return -1
    return index


def time_weighted_prefix(
    starts: np.ndarray, ends: np.ndarray, values: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Prefix sums of chronon counts and value·length products.

    Returns ``(L, W)`` where ``L[i]`` is the total number of chronons
    covered by segments ``0 .. i-1`` and ``W[i]`` (shape ``(n + 1, p)``)
    the cumulative per-dimension sum of ``value · length`` — exactly the
    Proposition 1 sums the merge kernels use, evaluated once per snapshot
    so any range aggregate over the snapshot costs two prefix-row
    differences (:func:`range_weighted_sum`).
    """
    lengths = (ends - starts + 1).astype(np.float64)
    count = len(starts)
    length_prefix = np.zeros(count + 1, dtype=np.float64)
    np.cumsum(lengths, out=length_prefix[1:])
    weighted = np.zeros((count + 1, values.shape[1]), dtype=np.float64)
    np.cumsum(values * lengths[:, None], axis=0, out=weighted[1:])
    return length_prefix, weighted


def range_weighted_sum(
    starts: np.ndarray,
    ends: np.ndarray,
    values: np.ndarray,
    length_prefix: np.ndarray,
    weighted_prefix: np.ndarray,
    lo: int,
    hi: int,
    t1: int,
    t2: int,
) -> Tuple[float, np.ndarray]:
    """Covered chronons and value·length sums of ``[t1, t2]`` in O(p).

    ``lo`` / ``hi`` bound the (inclusive) index range of segments
    overlapping ``[t1, t2]``.  Because a summary tuple's value is constant
    over its interval, clipping the two boundary segments is exact: the
    full-range prefix difference minus the uncovered left part of segment
    ``lo`` and the uncovered right part of segment ``hi``.  Together with
    :func:`time_weighted_prefix` this is the constant-time range-aggregate
    identity the serving layer answers queries with — the same weighted
    prefix sums that give the merge kernels their constant-time SSE
    (Propositions 1 and 2).
    """
    left_excess = float(max(int(t1) - int(starts[lo]), 0))
    right_excess = float(max(int(ends[hi]) - int(t2), 0))
    covered = (
        float(length_prefix[hi + 1] - length_prefix[lo])
        - left_excess
        - right_excess
    )
    weighted = (
        weighted_prefix[hi + 1]
        - weighted_prefix[lo]
        - left_excess * values[lo]
        - right_excess * values[hi]
    )
    return covered, weighted


__all__ = [
    "DeltaLog",
    "NumpyHeapNode",
    "NumpyMergeHeap",
    "NumpyPrefixSums",
    "SnapshotColumns",
    "SnapshotMirror",
    "adjacent_pair_mask",
    "dp_best_split",
    "dp_first_row",
    "finalize_mirror",
    "greedy_merge_trajectory",
    "instant_index",
    "pairwise_merge_keys",
    "range_weighted_sum",
    "shard_sse_max",
    "time_weighted_prefix",
]
