"""Core PTA machinery: merging, error measures, DP and greedy evaluation."""

from .dp import DPResult, DPStats, optimal_error_curve, reduce_to_error, reduce_to_size
from .errors import (
    PrefixSums,
    error_ratio,
    max_error,
    normalized_error,
    pairwise_merge_error,
    sse_between,
    sse_of_run,
)
from .greedy import (
    DELTA_INFINITY,
    GreedyResult,
    OnlineReducer,
    gms_reduce_to_error,
    gms_reduce_to_size,
    greedy_reduce_to_error,
    greedy_reduce_to_size,
)
from .heap import HeapNode, MergeHeap, make_merge_heap
from .merge import (
    AggregateSegment,
    adjacency_flags,
    adjacent,
    cmin,
    gap_positions,
    maximal_runs,
    merge,
    merge_run,
    reduce_random,
    segments_from_relation,
    segments_to_relation,
)
from .pta import (
    estimate_max_error,
    gpta_error_bounded,
    gpta_size_bounded,
    pta,
    pta_error_bounded,
    pta_size_bounded,
    reduce_ita,
)

# The NumPy kernels are re-exported lazily (PEP 562) so that a plain
# `import repro` with backend="python" never pays the numpy import; the
# in-function `from .kernels import ...` blocks in dp.py and heap.py defer
# it for the same reason.
_LAZY_KERNEL_EXPORTS = ("NumpyMergeHeap", "NumpyPrefixSums")


def __getattr__(name):
    if name in _LAZY_KERNEL_EXPORTS:
        from . import kernels

        return getattr(kernels, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "AggregateSegment",
    "DELTA_INFINITY",
    "DPResult",
    "DPStats",
    "GreedyResult",
    "HeapNode",
    "MergeHeap",
    "NumpyMergeHeap",
    "NumpyPrefixSums",
    "OnlineReducer",
    "PrefixSums",
    "adjacency_flags",
    "adjacent",
    "cmin",
    "error_ratio",
    "estimate_max_error",
    "gap_positions",
    "gms_reduce_to_error",
    "gms_reduce_to_size",
    "make_merge_heap",
    "gpta_error_bounded",
    "gpta_size_bounded",
    "greedy_reduce_to_error",
    "greedy_reduce_to_size",
    "max_error",
    "maximal_runs",
    "merge",
    "merge_run",
    "normalized_error",
    "optimal_error_curve",
    "pairwise_merge_error",
    "pta",
    "pta_error_bounded",
    "pta_size_bounded",
    "reduce_ita",
    "reduce_random",
    "reduce_to_error",
    "reduce_to_size",
    "segments_from_relation",
    "segments_to_relation",
    "sse_between",
    "sse_of_run",
]
