"""Error measures for PTA reductions.

The quality of a reduction is quantified by the interval-length weighted sum
squared error (SSE) between the original ITA result and the reduced relation
(Definition 5).  For the dynamic-programming algorithms the SSE of merging a
contiguous run of segments must be available in constant time; following
Jagadish et al. (VLDB 1998) and Proposition 1 of the paper this is achieved
with prefix sums of the weighted values, their squares and the interval
lengths.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from .merge import AggregateSegment, cmin, maximal_runs

Weights = Sequence[float]


def resolve_weights(
    weights: Weights | None, dimensions: int
) -> Tuple[float, ...]:
    """Return per-dimension weights, defaulting to 1.0 for every dimension."""
    if weights is None:
        return (1.0,) * dimensions
    weights = tuple(float(w) for w in weights)
    if len(weights) != dimensions:
        raise ValueError(
            f"expected {dimensions} weights, got {len(weights)}"
        )
    if any(w <= 0 for w in weights):
        raise ValueError(f"weights must be positive, got {weights}")
    return weights


def sse_of_run(
    segments: Sequence[AggregateSegment],
    weights: Weights | None = None,
) -> float:
    """SSE introduced by merging a run of adjacent segments into one tuple.

    Computed directly from Definition 5: the merged value per dimension is
    the length-weighted mean, and the error is the length-weighted squared
    deviation from it.  This is the naive ``O(len(run) * p)`` formulation the
    prefix-sum variant is validated against in the tests.
    """
    if not segments:
        return 0.0
    dimensions = segments[0].dimensions
    weights = resolve_weights(weights, dimensions)
    total_length = sum(segment.length for segment in segments)
    error = 0.0
    for d in range(dimensions):
        weighted_sum = sum(
            segment.length * segment.values[d] for segment in segments
        )
        mean = weighted_sum / total_length
        error += weights[d] ** 2 * sum(
            segment.length * (segment.values[d] - mean) ** 2
            for segment in segments
        )
    return error


def sse_between(
    original: Sequence[AggregateSegment],
    reduced: Sequence[AggregateSegment],
    weights: Weights | None = None,
) -> float:
    """Total SSE between an ITA result and a reduction of it (Definition 5).

    Every original segment is matched to the reduced segment of the same
    aggregation group whose interval contains it; the error is the weighted
    squared distance between their aggregate values, weighted by the original
    segment's interval length.
    """
    if not original:
        return 0.0
    dimensions = original[0].dimensions
    weights = resolve_weights(weights, dimensions)

    containers: Dict[tuple, List[AggregateSegment]] = {}
    for segment in reduced:
        containers.setdefault(segment.group, []).append(segment)
    for group_segments in containers.values():
        group_segments.sort(key=lambda seg: seg.interval.start)

    error = 0.0
    for segment in original:
        target = _containing_segment(containers, segment)
        if target is None:
            raise ValueError(
                f"reduced relation has no segment covering {segment}"
            )
        error += segment.length * sum(
            (weights[d] * (segment.values[d] - target.values[d])) ** 2
            for d in range(dimensions)
        )
    return error


def _containing_segment(
    containers: Dict[tuple, List[AggregateSegment]],
    segment: AggregateSegment,
) -> AggregateSegment | None:
    candidates = containers.get(segment.group, ())
    for candidate in candidates:
        if candidate.interval.contains_interval(segment.interval):
            return candidate
    return None


def max_error(
    segments: Sequence[AggregateSegment],
    weights: Weights | None = None,
) -> float:
    """``SSE_max``: error of the maximal reduction ``ρ(s, cmin)``.

    Obtained by merging every maximal adjacent run into a single tuple.  The
    error-bounded PTA operator expresses its threshold as a fraction of this
    value (Definition 7).
    """
    return sum(
        sse_of_run([segments[i] for i in run], weights)
        for run in maximal_runs(segments)
    )


class PrefixSums:
    """Constant-time SSE of contiguous runs via prefix sums (Proposition 1).

    For a sorted sequence of segments the class precomputes, per aggregate
    dimension ``d``::

        S[d][i]  = sum_{j <= i} |T_j| * B_d(j)
        SS[d][i] = sum_{j <= i} |T_j| * B_d(j)^2
        L[i]     = sum_{j <= i} |T_j|

    after which the SSE of merging segments ``i .. j`` (0-based, inclusive)
    into one tuple is computed in ``O(p)`` time.  The same sums also yield
    the merged (length-weighted mean) values, which the DP algorithms use to
    build the output tuples.
    """

    __slots__ = ("segments", "weights", "_sums", "_square_sums", "_lengths")

    def __init__(
        self,
        segments: Sequence[AggregateSegment],
        weights: Weights | None = None,
    ) -> None:
        self.segments = list(segments)
        dimensions = self.segments[0].dimensions if self.segments else 0
        self.weights = resolve_weights(weights, dimensions)

        count = len(self.segments)
        self._lengths = [0.0] * (count + 1)
        self._sums = [[0.0] * (count + 1) for _ in range(dimensions)]
        self._square_sums = [[0.0] * (count + 1) for _ in range(dimensions)]
        for index, segment in enumerate(self.segments, start=1):
            length = float(segment.length)
            self._lengths[index] = self._lengths[index - 1] + length
            for d in range(dimensions):
                value = segment.values[d]
                self._sums[d][index] = self._sums[d][index - 1] + length * value
                self._square_sums[d][index] = (
                    self._square_sums[d][index - 1] + length * value * value
                )

    def __len__(self) -> int:
        return len(self.segments)

    @property
    def dimensions(self) -> int:
        """Number of aggregate dimensions ``p``."""
        return len(self._sums)

    def total_length(self, first: int, last: int) -> float:
        """Total interval length of segments ``first .. last`` (inclusive)."""
        return self._lengths[last + 1] - self._lengths[first]

    def merged_values(self, first: int, last: int) -> Tuple[float, ...]:
        """Length-weighted mean values of segments ``first .. last``."""
        length = self.total_length(first, last)
        return tuple(
            (self._sums[d][last + 1] - self._sums[d][first]) / length
            for d in range(self.dimensions)
        )

    def sse(self, first: int, last: int) -> float:
        """SSE of merging segments ``first .. last`` into a single tuple.

        Implements Proposition 1:
        ``SSE = Σ_d w_d² [ SS_d − S_d² / L ]`` over the run, evaluated from
        the prefix sums in ``O(p)`` time.
        """
        length = self.total_length(first, last)
        error = 0.0
        for d in range(self.dimensions):
            run_sum = self._sums[d][last + 1] - self._sums[d][first]
            run_square_sum = (
                self._square_sums[d][last + 1] - self._square_sums[d][first]
            )
            deviation = run_square_sum - run_sum * run_sum / length
            # Guard against tiny negative values from floating-point rounding.
            error += self.weights[d] ** 2 * max(deviation, 0.0)
        return error


def pairwise_merge_error(
    left: AggregateSegment,
    right: AggregateSegment,
    weights: Weights | None = None,
) -> float:
    """Dissimilarity ``dsim(left, right)`` of two adjacent segments.

    By Proposition 2 the additional error of merging two adjacent segments in
    any intermediate relation equals ``SSE({left, right}, {left ⊕ right})``,
    which has the closed form
    ``Σ_d w_d² · |T_l||T_r| / (|T_l| + |T_r|) · (B_d(l) − B_d(r))²``.
    """
    dimensions = left.dimensions
    weights = resolve_weights(weights, dimensions)
    left_length = left.length
    right_length = right.length
    factor = left_length * right_length / (left_length + right_length)
    return sum(
        weights[d] ** 2 * factor * (left.values[d] - right.values[d]) ** 2
        for d in range(dimensions)
    )


def normalized_error(
    segments: Sequence[AggregateSegment],
    reduced: Sequence[AggregateSegment],
    weights: Weights | None = None,
) -> float:
    """Error of a reduction normalised by ``SSE_max`` (0 … 1 range).

    Returns 0.0 when the relation cannot be reduced at all
    (``SSE_max == 0``), e.g. when every maximal run has constant values.
    """
    maximum = max_error(segments, weights)
    if maximum == 0.0:
        return 0.0
    return sse_between(segments, reduced, weights) / maximum


def error_ratio(approximate_error: float, optimal_error: float) -> float:
    """Ratio of an approximate reduction's error to the optimal error.

    Follows the convention of the paper's Figures 15–17: a ratio of 1 means
    the approximation matched the optimum.  When the optimal error is zero
    the ratio is defined as 1 if the approximation is also exact and ``inf``
    otherwise.
    """
    if optimal_error == 0.0:
        return 1.0 if approximate_error <= 1e-12 else math.inf
    return approximate_error / optimal_error


__all__ = [
    "PrefixSums",
    "Weights",
    "cmin",
    "error_ratio",
    "max_error",
    "normalized_error",
    "pairwise_merge_error",
    "resolve_weights",
    "sse_between",
    "sse_of_run",
]
