"""The parsimonious temporal aggregation operator (user-facing facade).

.. note::
   The canonical, typed surface of the engine is :mod:`repro.api`
   (``Plan`` / ``execute`` / ``Compressor``).  :func:`pta` is kept as the
   historical operator-style door and is a thin shim that builds a
   :class:`repro.api.Plan` and hands it to :func:`repro.api.execute`, so
   validation behaves identically across every entry point.

``G PTA[A, F, c] r`` and ``G PTA[A, F, ε] r`` from the paper are exposed as
:func:`pta` (plus the explicit variants :func:`pta_size_bounded`,
:func:`pta_error_bounded`, :func:`gpta_size_bounded` and
:func:`gpta_error_bounded`, which call the engines directly and serve as
the pre-refactor reference in the parity tests).  Conceptually the operator

1. evaluates instant temporal aggregation over the argument relation, and
2. reduces the ITA result by merging adjacent tuples until the size or error
   bound is met, either optimally (dynamic programming, Section 5) or
   greedily and online (Section 6).

The facade returns plain :class:`~repro.temporal.TemporalRelation` objects;
callers that need algorithm statistics (error introduced, heap sizes, DP
work counters) use :mod:`repro.api` (whose ``Result`` carries them) or
:mod:`repro.core.dp` and :mod:`repro.core.greedy` directly, which is what
the benchmark harness does.
"""

from __future__ import annotations

import random
from typing import Iterator, Sequence

from ..aggregation import ita, iter_ita_segments, normalize_aggregates
from ..aggregation.functions import AggregatesLike
from ..temporal import TemporalRelation
from . import dp, greedy
from .errors import Weights, max_error
from .merge import (
    AggregateSegment,
    segments_from_relation,
    segments_to_relation,
)


def pta(
    relation: TemporalRelation,
    group_by: Sequence[str] = (),
    aggregates: AggregatesLike = (),
    size: int | None = None,
    error: float | None = None,
    method: str = "dp",
    delta: greedy.Delta = 1,
    weights: Weights | None = None,
    backend: str = "python",
    workers: int | None = None,
    max_error: float | None = None,
) -> TemporalRelation:
    """Evaluate a PTA query over ``relation``.

    Exactly one of ``size`` (the bound ``c``) and ``error`` (the bound ``ε``
    in ``[0, 1]``) must be given; ``max_error`` is accepted as an alias of
    ``error`` — the canonical spelling used by :mod:`repro.api` and
    :func:`repro.compress`.  ``method`` selects the evaluation strategy:
    ``"dp"`` for the exact dynamic-programming algorithms and ``"greedy"``
    for the online greedy algorithms; ``delta`` is the greedy read-ahead
    parameter ``δ``.  ``backend`` selects the pure-Python reference kernels
    or the vectorized NumPy kernels (:mod:`repro.core.kernels`); both yield
    identical results.  ``workers`` (greedy method only) routes the
    reduction through the sharded multiprocess engine of
    :mod:`repro.parallel`, which computes plain GMS (``δ = ∞`` semantics)
    bit-identically for every worker count.

    This is a shim over :func:`repro.api.execute`; the equivalent plan is
    ``Plan(relation).group_by(*A).aggregate(F).reduce(budget, method)``.

    Returns a temporal relation with schema ``(A..., B..., T)``.
    """
    from ..api import ExecutionPolicy, Plan, execute, resolve_error_alias

    epsilon = resolve_error_alias(error, max_error)
    plan = Plan(relation)
    if group_by:
        plan = plan.group_by(*group_by)
    if aggregates:
        plan = plan.aggregate(aggregates)
    plan = plan.reduce(size=size, max_error=epsilon, method=method)
    policy = ExecutionPolicy(
        backend=backend, workers=workers, delta=delta, weights=weights
    )
    return execute(plan, policy).to_relation()


def pta_size_bounded(
    relation: TemporalRelation,
    group_by: Sequence[str],
    aggregates: AggregatesLike,
    size: int,
    weights: Weights | None = None,
    backend: str = "python",
) -> TemporalRelation:
    """Exact size-bounded PTA (Definition 6, algorithm ``PTAc``)."""
    segments, group_columns, value_columns = _ita_segments(
        relation, group_by, aggregates
    )
    result = dp.reduce_to_size(segments, size, weights, backend=backend)
    return segments_to_relation(
        result.segments, group_columns, value_columns,
        relation.schema.timestamp_name,
    )


def pta_error_bounded(
    relation: TemporalRelation,
    group_by: Sequence[str],
    aggregates: AggregatesLike,
    error: float,
    weights: Weights | None = None,
    backend: str = "python",
) -> TemporalRelation:
    """Exact error-bounded PTA (Definition 7, algorithm ``PTAε``)."""
    segments, group_columns, value_columns = _ita_segments(
        relation, group_by, aggregates
    )
    result = dp.reduce_to_error(segments, error, weights, backend=backend)
    return segments_to_relation(
        result.segments, group_columns, value_columns,
        relation.schema.timestamp_name,
    )


def gpta_size_bounded(
    relation: TemporalRelation,
    group_by: Sequence[str],
    aggregates: AggregatesLike,
    size: int,
    delta: greedy.Delta = 1,
    weights: Weights | None = None,
    backend: str = "python",
    workers: int | None = None,
) -> TemporalRelation:
    """Greedy online size-bounded PTA (algorithm ``gPTAc``).

    The ITA result is streamed into the merge heap, so the full ITA relation
    is never materialised.  With ``workers`` set the reduction runs on the
    sharded engine instead (which materialises the ITA result as flat
    arrays and ignores ``delta``/``backend``).
    """
    group_columns, value_columns = _result_columns(group_by, aggregates)
    stream = _segment_stream(relation, group_by, aggregates)
    if workers is not None:
        from ..parallel import reduce_segments_parallel

        result = reduce_segments_parallel(stream, size=size, weights=weights,
                                          workers=workers)
    else:
        result = greedy.greedy_reduce_to_size(
            stream, size, delta, weights, backend=backend
        )
    return segments_to_relation(
        result.segments, group_columns, value_columns,
        relation.schema.timestamp_name,
    )


def gpta_error_bounded(
    relation: TemporalRelation,
    group_by: Sequence[str],
    aggregates: AggregatesLike,
    error: float,
    delta: greedy.Delta = 1,
    weights: Weights | None = None,
    sample_fraction: float = 0.05,
    seed: int = 0,
    backend: str = "python",
    workers: int | None = None,
) -> TemporalRelation:
    """Greedy online error-bounded PTA (algorithm ``gPTAε``).

    The ITA result size is estimated as ``2·|r| − 1`` and ``SSE_max`` is
    estimated from a sample of the argument relation
    (:func:`estimate_max_error`); both estimates only influence how early
    merging may start, not the error guarantee of the final result.  With
    ``workers`` set the reduction runs on the sharded engine, which knows
    the exact ``SSE_max`` and needs no estimates.
    """
    group_columns, value_columns = _result_columns(group_by, aggregates)
    stream = _segment_stream(relation, group_by, aggregates)
    if workers is not None:
        from ..parallel import reduce_segments_parallel

        result = reduce_segments_parallel(
            stream, max_error=error, weights=weights, workers=workers
        )
        return segments_to_relation(
            result.segments, group_columns, value_columns,
            relation.schema.timestamp_name,
        )
    size_estimate = max(2 * len(relation) - 1, 1)
    error_estimate = estimate_max_error(
        relation, group_by, aggregates, sample_fraction, weights, seed
    )
    result = greedy.greedy_reduce_to_error(
        stream,
        error,
        delta,
        weights,
        input_size_estimate=size_estimate,
        max_error_estimate=error_estimate,
        backend=backend,
    )
    return segments_to_relation(
        result.segments, group_columns, value_columns,
        relation.schema.timestamp_name,
    )


def reduce_ita(
    ita_result: TemporalRelation,
    group_by: Sequence[str],
    value_columns: Sequence[str],
    size: int | None = None,
    error: float | None = None,
    method: str = "dp",
    delta: greedy.Delta = 1,
    weights: Weights | None = None,
    backend: str = "python",
) -> TemporalRelation:
    """Reduce an already computed ITA result (or any sequential relation).

    Useful when the ITA relation comes from elsewhere — e.g. a time series
    converted to unit-interval tuples, as the paper does for the UCR data.
    """
    if (size is None) == (error is None):
        raise ValueError("provide exactly one of 'size' and 'error'")
    segments = segments_from_relation(ita_result, group_by, value_columns)
    if method == "dp":
        if size is not None:
            result = dp.reduce_to_size(segments, size, weights, backend=backend)
        else:
            result = dp.reduce_to_error(
                segments, error, weights, backend=backend
            )
        reduced = result.segments
    elif method == "greedy":
        if size is not None:
            reduced = greedy.greedy_reduce_to_size(
                iter(segments), size, delta, weights, backend=backend
            ).segments
        else:
            reduced = greedy.greedy_reduce_to_error(
                iter(segments),
                error,
                delta,
                weights,
                input_size_estimate=len(segments),
                max_error_estimate=max_error(segments, weights),
                backend=backend,
            ).segments
    else:
        raise ValueError(f"method must be 'dp' or 'greedy', got {method!r}")
    return segments_to_relation(
        reduced, group_by, value_columns, ita_result.schema.timestamp_name
    )


def estimate_max_error(
    relation: TemporalRelation,
    group_by: Sequence[str],
    aggregates: AggregatesLike,
    sample_fraction: float = 0.05,
    weights: Weights | None = None,
    seed: int = 0,
) -> float:
    """Estimate ``SSE_max`` of the ITA result from a sample of ``relation``.

    A uniform sample of the argument tuples is aggregated with ITA and its
    maximal reduction error is scaled by the inverse sampling fraction.  The
    paper notes (Section 6.3) that underestimating ``SSE_max`` only causes
    the greedy heap to grow, while overestimating may change the result with
    respect to plain GMS; the estimate is therefore deliberately simple.
    """
    if not 0.0 < sample_fraction <= 1.0:
        raise ValueError(
            f"sample_fraction must be in (0, 1], got {sample_fraction}"
        )
    rows = relation.rows()
    sample_size = max(int(len(rows) * sample_fraction), 1)
    rng = random.Random(seed)
    chosen = rows if sample_size >= len(rows) else rng.sample(rows, sample_size)
    sample = TemporalRelation(relation.schema, chosen)
    segments, _, _ = _ita_segments(sample, group_by, aggregates)
    if not segments:
        return 0.0
    return max_error(segments, weights) / sample_fraction


# ----------------------------------------------------------------------
# Internals
# ----------------------------------------------------------------------
def _result_columns(
    group_by: Sequence[str], aggregates: AggregatesLike
) -> tuple[tuple[str, ...], tuple[str, ...]]:
    specs = normalize_aggregates(aggregates)
    return tuple(group_by), tuple(spec.output for spec in specs)


def _ita_segments(
    relation: TemporalRelation,
    group_by: Sequence[str],
    aggregates: AggregatesLike,
):
    group_columns, value_columns = _result_columns(group_by, aggregates)
    ita_result = ita(relation, group_by, aggregates)
    segments = segments_from_relation(ita_result, group_columns, value_columns)
    return segments, group_columns, value_columns


def _segment_stream(
    relation: TemporalRelation,
    group_by: Sequence[str],
    aggregates: AggregatesLike,
) -> Iterator[AggregateSegment]:
    return iter_ita_segments(relation, group_by, aggregates)
