"""Exact PTA evaluation via dynamic programming (Section 5).

The optimal reduction of a sorted ITA result ``s = {s_1, ..., s_n}`` to ``c``
tuples is found with the error-matrix recurrence of Section 5.1: cell
``E[k][i]`` holds the smallest error of reducing the prefix ``s^i`` to ``k``
tuples, and ``J[k][i]`` remembers the split point that achieved it.  Three
refinements from the paper are implemented:

* constant-time SSE of contiguous runs via prefix sums (Section 5.2,
  :class:`~repro.core.errors.PrefixSums`);
* pruning with the gap vector ``G``: the upper bound ``i_max`` skips cells
  that are necessarily infinite and the lower bound ``j_min`` restricts the
  split-point search to the region right of the last gap (Section 5.3);
* the early ``break`` once the run error alone exceeds the best split found,
  exploiting that the run error grows monotonically as ``j`` decreases.

``reduce_to_size`` implements algorithm ``PTAc`` (Fig. 7) and
``reduce_to_error`` implements ``PTAε`` (Fig. 8).  Setting
``optimized=False`` disables the gap pruning and the early break, which is
the plain "DP" baseline used in the runtime experiments (Figs. 18 and 19).

Every entry point accepts ``backend="python"`` (the reference, loop-based
evaluation) or ``backend="numpy"``, which replaces the inner split-point loop
of each cell with one vectorized ``np.argmin`` over the ``j``-range
(:mod:`repro.core.kernels`).  Both backends evaluate the same recurrence with
the same floating-point formulae and tie-breaking, so they produce identical
reductions.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import List, Sequence

from ..temporal import Interval
from .errors import PrefixSums, Weights, max_error, resolve_weights
from .merge import AggregateSegment, cmin, gap_positions


@dataclass
class DPStats:
    """Instrumentation counters for the DP evaluation (used by ablations)."""

    cells_evaluated: int = 0
    split_candidates: int = 0
    rows_filled: int = 0


@dataclass
class DPResult:
    """Result of an exact PTA reduction.

    Attributes
    ----------
    segments:
        The reduced relation, in group-then-time order.
    error:
        Total SSE introduced with respect to the input ITA result.
    size:
        Number of output segments (equals ``len(segments)``).
    stats:
        Work counters, useful for the pruning ablation benchmarks.
    """

    segments: List[AggregateSegment]
    error: float
    size: int
    stats: DPStats

    def __iter__(self):
        return iter(self.segments)


class _ErrorMatrix:
    """Row-by-row evaluation of the DP error / split-point matrices.

    The error matrix only needs its two most recent rows; the split-point
    matrix must be kept entirely to reconstruct the output (Section 5.4).
    Indices follow the paper's 1-based convention: ``i`` and ``j`` range over
    ``1 .. n`` and split point ``j = 0`` means "merge everything up to i".
    """

    def __init__(
        self,
        segments: Sequence[AggregateSegment],
        weights: Weights | None,
        optimized: bool,
        backend: str = "python",
    ) -> None:
        if backend not in ("python", "numpy"):
            raise ValueError(
                f"backend must be 'python' or 'numpy', got {backend!r}"
            )
        self.segments = list(segments)
        self.count = len(self.segments)
        self.backend = backend
        if backend == "numpy":
            from .kernels import NumpyPrefixSums

            self.prefix = NumpyPrefixSums(self.segments, weights)
        else:
            self.prefix = PrefixSums(self.segments, weights)
        self.gaps = gap_positions(self.segments)
        self.optimized = optimized
        self.stats = DPStats()
        self.split_rows: List[List[int]] = [[0] * (self.count + 1)]
        self._previous_row: List[float] = []
        self._current_row: List[float] = []
        self.rows_computed = 0

    def run_error(self, j: int, i: int) -> float:
        """SSE of merging segments ``s_{j+1} .. s_i`` into one tuple.

        Merging across a boundary (temporal gap or group change) is assigned
        an infinite error, as required by the DP formulation of Section 5.1.
        The optimized evaluation never asks for such runs thanks to the
        ``i_max`` / ``j_min`` bounds; the plain DP baseline relies on this
        check.
        """
        position = bisect.bisect_right(self.gaps, j)
        if position < len(self.gaps) and self.gaps[position] < i:
            return math.inf
        return self.prefix.sse(j, i - 1)

    # ------------------------------------------------------------------
    def fill_next_row(self) -> List[float]:
        """Fill row ``k = rows_computed + 1`` and return it."""
        if self.backend == "numpy":
            return self._fill_next_row_numpy()
        k = self.rows_computed + 1
        n = self.count
        row = [math.inf] * (n + 1)
        splits = [0] * (n + 1)
        if k == 1:
            i_max = self._upper_bound(k)
            for i in range(1, i_max + 1):
                self.stats.cells_evaluated += 1
                row[i] = self.run_error(0, i)
        else:
            i_max = self._upper_bound(k)
            previous = self._current_row
            for i in range(k, i_max + 1):
                self.stats.cells_evaluated += 1
                j_min = self._lower_bound(k, i)
                if (
                    self.optimized
                    and len(self.gaps) >= k - 1
                    and self.gaps[k - 2] == j_min
                ):
                    # The prefix s^i contains exactly k - 1 gaps: the only
                    # feasible split point is the last gap itself.
                    j = j_min
                    self.stats.split_candidates += 1
                    row[i] = previous[j] + self.run_error(j, i)
                    splits[i] = j
                    continue
                best = math.inf
                best_split = 0
                for j in range(i - 1, j_min - 1, -1):
                    self.stats.split_candidates += 1
                    err1 = previous[j]
                    err2 = self.run_error(j, i)
                    if err1 + err2 < best:
                        best = err1 + err2
                        best_split = j
                    if self.optimized and err2 > best:
                        # err2 grows as j decreases; no better split remains.
                        break
                row[i] = best
                splits[i] = best_split
        self._previous_row = self._current_row
        self._current_row = row
        self.split_rows.append(splits)
        self.rows_computed = k
        self.stats.rows_filled = k
        return row

    def _fill_next_row_numpy(self):
        """Fill row ``k`` with the split-point search vectorized per cell.

        The loop over cells ``i`` stays in Python, but the inner loop over
        candidate split points ``j`` — the quadratic part of the recurrence —
        is a single batched run-error evaluation plus one ``argmin``
        (:func:`repro.core.kernels.dp_best_split`).
        """
        from .kernels import dp_best_split, dp_first_row, np

        k = self.rows_computed + 1
        n = self.count
        i_max = self._upper_bound(k)
        splits = [0] * (n + 1)
        if k == 1:
            self.stats.cells_evaluated += i_max
            first_gap = None
            if not self.optimized and self.gaps:
                first_gap = self.gaps[0]
            row = dp_first_row(self.prefix, i_max, first_gap)
        else:
            row = np.full(n + 1, math.inf)
            previous = self._current_row
            for i in range(k, i_max + 1):
                self.stats.cells_evaluated += 1
                j_min = self._lower_bound(k, i)
                infeasible = 0
                if not self.optimized:
                    position = bisect.bisect_left(self.gaps, i)
                    if position:
                        infeasible = self.gaps[position - 1]
                self.stats.split_candidates += i - j_min
                best, split = dp_best_split(
                    self.prefix, previous, j_min, i, infeasible
                )
                row[i] = best
                splits[i] = split
        self._previous_row = self._current_row
        self._current_row = row
        self.split_rows.append(splits)
        self.rows_computed = k
        self.stats.rows_filled = k
        return row

    # ------------------------------------------------------------------
    def _upper_bound(self, k: int) -> int:
        """``i_max``: largest prefix length reducible to ``k`` tuples."""
        if not self.optimized:
            return self.count
        if k <= len(self.gaps):
            return self.gaps[k - 1]
        return self.count

    def _lower_bound(self, k: int, i: int) -> int:
        """``j_min``: position of the right-most gap before ``i``, or k-1."""
        if not self.optimized:
            return k - 1
        position = bisect.bisect_left(self.gaps, i)
        if position == 0:
            return k - 1
        return max(k - 1, self.gaps[position - 1])

    # ------------------------------------------------------------------
    def build_output(self, size: int) -> List[AggregateSegment]:
        """Reconstruct the reduced relation from the split-point matrix."""
        output: List[AggregateSegment] = []
        end = self.count
        k = size
        while k > 0 and end > 0:
            split = self.split_rows[k][end]
            values = self.prefix.merged_values(split, end - 1)
            first = self.segments[split]
            last = self.segments[end - 1]
            covering = Interval(first.interval.start, last.interval.end)
            output.append(AggregateSegment(first.group, values, covering))
            end = split
            k -= 1
        output.reverse()
        return output

    def error_row(self) -> List[float]:
        """Return the most recently computed error-matrix row."""
        return self._current_row


def reduce_to_size(
    segments: Sequence[AggregateSegment],
    size: int,
    weights: Weights | None = None,
    optimized: bool = True,
    backend: str = "python",
) -> DPResult:
    """Optimal size-bounded reduction (algorithm ``PTAc``, Fig. 7).

    Parameters
    ----------
    segments:
        The ITA result in group-then-time order.
    size:
        Maximal number of output tuples ``c``; must satisfy
        ``cmin <= size``.  Values ``>= len(segments)`` return the input
        unchanged.
    weights:
        Per-dimension weights ``w_d`` of the error measure (default 1.0).
    optimized:
        When ``False`` the gap pruning and the early break are disabled
        (the plain DP baseline of the runtime experiments).
    backend:
        ``"python"`` for the loop-based reference evaluation, ``"numpy"``
        for the vectorized split-point search of :mod:`repro.core.kernels`.
        Both produce identical reductions.
    """
    segments = list(segments)
    if size < 1:
        raise ValueError(f"size bound must be at least 1, got {size}")
    if not segments or size >= len(segments):
        return DPResult(segments, 0.0, len(segments), DPStats())
    minimum = cmin(segments)
    if size < minimum:
        raise ValueError(
            f"size bound {size} is below cmin={minimum}; tuples separated by "
            f"gaps or belonging to different groups cannot be merged"
        )
    _check_dimensions(segments)

    matrix = _ErrorMatrix(segments, weights, optimized, backend)
    for _ in range(size):
        row = matrix.fill_next_row()
    error = float(row[len(segments)])
    output = matrix.build_output(size)
    return DPResult(output, error, len(output), matrix.stats)


def reduce_to_error(
    segments: Sequence[AggregateSegment],
    epsilon: float,
    weights: Weights | None = None,
    optimized: bool = True,
    backend: str = "python",
) -> DPResult:
    """Optimal error-bounded reduction (algorithm ``PTAε``, Fig. 8).

    Finds the smallest ``c`` whose optimal reduction keeps the total error at
    or below ``epsilon * SSE_max`` and returns that reduction.

    Parameters
    ----------
    epsilon:
        Relative error threshold in ``[0, 1]``; 1 permits the maximal
        reduction to ``cmin`` tuples, 0 forbids any lossy merge.
    backend:
        ``"python"`` or ``"numpy"`` (see :func:`reduce_to_size`).
    """
    if not 0.0 <= epsilon <= 1.0:
        raise ValueError(f"epsilon must be within [0, 1], got {epsilon}")
    segments = list(segments)
    if not segments:
        return DPResult([], 0.0, 0, DPStats())
    _check_dimensions(segments)

    threshold = epsilon * max_error(segments, weights)
    matrix = _ErrorMatrix(segments, weights, optimized, backend)
    n = len(segments)
    for k in range(1, n + 1):
        row = matrix.fill_next_row()
        if row[n] <= threshold + 1e-9:
            output = matrix.build_output(k)
            return DPResult(output, float(row[n]), len(output), matrix.stats)
    # epsilon == 0 with unavoidable error never happens: k == n gives error 0.
    output = matrix.build_output(n)
    return DPResult(output, 0.0, n, matrix.stats)


def optimal_error_curve(
    segments: Sequence[AggregateSegment],
    sizes: Sequence[int] | None = None,
    weights: Weights | None = None,
    backend: str = "python",
) -> dict:
    """Optimal error for every requested output size in a single DP sweep.

    The DP naturally produces optimal errors for all ``k = 1 .. max(sizes)``
    while filling its rows, so the error-versus-reduction curves of
    Figure 14 are obtained from one evaluation instead of one per size.

    Returns a dict mapping each feasible requested size to the optimal error
    (sizes below ``cmin`` map to ``math.inf``).
    """
    segments = list(segments)
    if not segments:
        return {}
    _check_dimensions(segments)
    n = len(segments)
    if sizes is None:
        sizes = range(1, n + 1)
    sizes = sorted({int(size) for size in sizes if 1 <= int(size) <= n})
    if not sizes:
        return {}
    matrix = _ErrorMatrix(segments, weights, optimized=True, backend=backend)
    curve = {}
    wanted = set(sizes)
    for k in range(1, max(sizes) + 1):
        row = matrix.fill_next_row()
        if k in wanted:
            curve[k] = float(row[n])
    return curve


def _check_dimensions(segments: Sequence[AggregateSegment]) -> None:
    dimensions = segments[0].dimensions
    for segment in segments:
        if segment.dimensions != dimensions:
            raise ValueError(
                "all segments must have the same number of aggregate values"
            )
    resolve_weights(None, dimensions)
