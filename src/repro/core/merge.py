"""Merging machinery for parsimonious temporal aggregation.

This module defines the internal representation the PTA algorithms operate
on — :class:`AggregateSegment`, one per ITA result tuple — together with the
adjacency predicate (Definition 2), the merge operator ``⊕`` (Definition 3),
the non-deterministic reduction function ``ρ`` (Definition 4) and the lower
bound ``cmin`` on the size of any reduction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Iterable, List, Sequence, Tuple

from ..temporal import Interval, TemporalRelation, TemporalSchema


@dataclass(frozen=True)
class AggregateSegment:
    """One tuple of an ITA result (or of a PTA reduction thereof).

    Parameters
    ----------
    group:
        Values of the grouping attributes ``A`` (possibly empty).
    values:
        Aggregate values ``B1 ... Bp``, one float per aggregate function.
    interval:
        Validity interval of the tuple.
    """

    group: Tuple[Any, ...]
    values: Tuple[float, ...]
    interval: Interval

    @property
    def length(self) -> int:
        """Number of chronons the segment covers, ``|T|``."""
        return self.interval.length

    @property
    def dimensions(self) -> int:
        """Number of aggregate values ``p``."""
        return len(self.values)


def adjacent(left: AggregateSegment, right: AggregateSegment) -> bool:
    """Adjacency predicate ``left ≺ right`` (Definition 2).

    Two segments are adjacent when they belong to the same aggregation group
    and ``right`` starts exactly one chronon after ``left`` ends, i.e. they
    are not separated by a temporal gap.
    """
    return left.group == right.group and left.interval.meets(right.interval)


def merge(left: AggregateSegment, right: AggregateSegment) -> AggregateSegment:
    """Merge operator ``left ⊕ right`` (Definition 3).

    The merged aggregate values are the interval-length weighted averages of
    the two inputs; the merged timestamp is the concatenation of the two
    timestamps.  The inputs must be adjacent.
    """
    if not adjacent(left, right):
        raise ValueError(f"cannot merge non-adjacent segments {left} and {right}")
    left_length = left.length
    right_length = right.length
    total = left_length + right_length
    values = tuple(
        (left_length * lv + right_length * rv) / total
        for lv, rv in zip(left.values, right.values)
    )
    return AggregateSegment(
        left.group, values, left.interval.union(right.interval)
    )


def merge_run(segments: Sequence[AggregateSegment]) -> AggregateSegment:
    """Merge a whole run of pairwise-adjacent segments into one segment.

    Equivalent to folding :func:`merge` over the run but computed in a single
    weighted pass, which both avoids rounding drift and is what the DP
    algorithms conceptually do when they collapse ``s_{j+1} ... s_i``.
    """
    if not segments:
        raise ValueError("cannot merge an empty run of segments")
    for left, right in zip(segments, segments[1:]):
        if not adjacent(left, right):
            raise ValueError(
                f"run contains non-adjacent pair {left} !≺ {right}"
            )
    total = sum(segment.length for segment in segments)
    dimensions = segments[0].dimensions
    values = tuple(
        sum(segment.length * segment.values[d] for segment in segments) / total
        for d in range(dimensions)
    )
    interval = Interval(segments[0].interval.start, segments[-1].interval.end)
    return AggregateSegment(segments[0].group, values, interval)


def adjacency_flags(segments: Sequence[AggregateSegment]) -> List[bool]:
    """Return, for each consecutive pair, whether it is adjacent.

    ``flags[i]`` is ``True`` iff ``segments[i] ≺ segments[i + 1]``; the list
    has ``len(segments) - 1`` entries (empty for fewer than two segments).
    """
    return [
        adjacent(left, right) for left, right in zip(segments, segments[1:])
    ]


def maximal_runs(segments: Sequence[AggregateSegment]) -> List[List[int]]:
    """Split ``segments`` into maximal runs of pairwise-adjacent indices.

    The segments must already be in group-then-time order.  The boundaries
    between runs are exactly the positions that the PTA merging process can
    never cross (temporal gaps or changes of aggregation group).
    """
    runs: List[List[int]] = []
    current: List[int] = []
    for index, segment in enumerate(segments):
        if current and not adjacent(segments[index - 1], segment):
            runs.append(current)
            current = []
        current.append(index)
    if current:
        runs.append(current)
    return runs


def cmin(segments: Sequence[AggregateSegment]) -> int:
    """Smallest size any reduction of ``segments`` can reach.

    ``cmin = |s| - #{adjacent pairs}``, which equals the number of maximal
    adjacent runs (Section 4.1).
    """
    if not segments:
        return 0
    return len(maximal_runs(segments))


def gap_positions(segments: Sequence[AggregateSegment]) -> List[int]:
    """Vector ``G`` of non-adjacent pair positions (Section 5.3).

    ``G[m] = l`` (1-based ``l``) means that the ``m``-th non-adjacent pair is
    ``(segments[l - 1], segments[l])``, i.e. the pair *ends* the prefix of
    length ``l``.  This matches the paper's convention where ``G_k`` bounds
    the largest prefix reducible to ``k`` tuples.
    """
    return [
        position + 1
        for position, (left, right) in enumerate(
            zip(segments, segments[1:])
        )
        if not adjacent(left, right)
    ]


def reduce_random(
    segments: Sequence[AggregateSegment],
    size: int,
    rng: random.Random | None = None,
) -> List[AggregateSegment]:
    """Non-deterministic reduction ``ρ(s, c)`` (Definition 4).

    Repeatedly merges a *randomly chosen* adjacent pair until at most
    ``size`` segments remain.  Used by property-based tests as a reference:
    any such reduction must introduce at least as much error as the optimal
    DP reduction.
    """
    if size < cmin(segments):
        raise ValueError(
            f"cannot reduce below cmin={cmin(segments)}, requested {size}"
        )
    rng = rng or random.Random()
    current = list(segments)
    while len(current) > size:
        candidates = [
            index
            for index in range(len(current) - 1)
            if adjacent(current[index], current[index + 1])
        ]
        index = rng.choice(candidates)
        merged = merge(current[index], current[index + 1])
        current[index : index + 2] = [merged]
    return current


# ----------------------------------------------------------------------
# Conversions between TemporalRelation and segment lists
# ----------------------------------------------------------------------
def segments_from_relation(
    relation: TemporalRelation,
    group_columns: Sequence[str],
    value_columns: Sequence[str],
    sort: bool = True,
) -> List[AggregateSegment]:
    """Convert an ITA result relation into a list of segments.

    Parameters
    ----------
    relation:
        A sequential relation, typically the output of :func:`repro.ita`.
    group_columns:
        Names of the grouping attributes within ``relation``.
    value_columns:
        Names of the aggregate value attributes within ``relation``.
    sort:
        When ``True`` (default) the segments are re-sorted into the
        group-then-time order the PTA algorithms require.
    """
    group_indices = relation.schema.indices_of(group_columns)
    value_indices = relation.schema.indices_of(value_columns)
    segments = [
        AggregateSegment(
            tuple(values[i] for i in group_indices),
            tuple(float(values[i]) for i in value_indices),
            interval,
        )
        for values, interval in relation.rows()
    ]
    if sort:
        segments.sort(
            key=lambda segment: (
                tuple((str(type(v)), str(v)) for v in segment.group),
                segment.interval.start,
                segment.interval.end,
            )
        )
    return segments


def segments_to_relation(
    segments: Iterable[AggregateSegment],
    group_columns: Sequence[str],
    value_columns: Sequence[str],
    timestamp_name: str = "T",
) -> TemporalRelation:
    """Convert a list of segments back into a :class:`TemporalRelation`."""
    schema = TemporalSchema(
        tuple(group_columns) + tuple(value_columns), timestamp_name
    )
    relation = TemporalRelation(schema)
    for segment in segments:
        relation.append(segment.group + segment.values, segment.interval)
    return relation
