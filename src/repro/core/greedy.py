"""Greedy PTA evaluation (Section 6).

The greedy merging strategy (GMS) repeatedly merges the currently most
similar pair of adjacent tuples — the pair whose merge introduces the least
additional error (Proposition 2) — until the size or error bound is
satisfied.  Theorem 1 bounds the error ratio against the optimal DP solution
by ``O(log n)``.

Two online algorithms integrate GMS with ITA so that merging starts while
ITA tuples are still being produced.  Their shared per-tuple logic lives in
the resumable state machine :class:`OnlineReducer` (push one tuple, drain
every merge the online policy allows, finalise on end of input), which also
powers the incremental compression session :class:`repro.api.Compressor`:

* :func:`greedy_reduce_to_size` — algorithm ``gPTAc`` (Fig. 11);
* :func:`greedy_reduce_to_error` — algorithm ``gPTAε`` (Fig. 13).

Both keep at most ``c + β`` tuples in a merge heap, where the read-ahead
parameter ``δ`` controls how eagerly tuples are merged before a temporal gap
confirms that the merge is safe (Propositions 3 and 4).  ``δ = 0`` keeps the
heap smallest, ``δ = ∞`` makes the output identical to plain GMS
(Theorems 2 and 3).

The batch helpers :func:`gms_reduce_to_size` and :func:`gms_reduce_to_error`
run GMS over a fully materialised segment list and are the reference the
online algorithms are validated against.

For sessions that snapshot mid-stream (``track_deltas=True``), the reducer
additionally maintains a **merge delta log**: every committed insert and
merge since the last snapshot is recorded in a compact column-oriented
:class:`~repro.core.kernels.DeltaLog`, and :meth:`OnlineReducer.snapshot`
patches a materialised :class:`~repro.core.kernels.SnapshotMirror` of the
live relation with the log — amortised O(changes) per snapshot — before
running the end-of-input phase on the mirror.  The clone-and-finalise path
(:meth:`OnlineReducer.clone` + :meth:`OnlineReducer.finalize`) remains the
oracle the delta path is property-tested against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from itertools import islice
from typing import Any, Iterable, Iterator, List, Optional, Sequence, Tuple

from .errors import Weights, max_error, resolve_weights
from .heap import Heap, make_merge_heap
from .kernels import (
    DeltaLog,
    SnapshotColumns,
    SnapshotMirror,
    finalize_mirror,
)
from .merge import AggregateSegment, adjacent

Delta = float  # non-negative int or math.inf

#: Read-ahead value meaning "never merge ahead of a confirmed gap".
DELTA_INFINITY: Delta = math.inf

#: Tuples staged per batch by the online algorithms on heaps that support
#: chunked insertion (the array-backed heap).  A buffering knob only: the
#: merge policy still observes every insertion individually, so results are
#: identical for every value.
ONLINE_CHUNK_SIZE = 1024


@dataclass
class GreedyResult:
    """Result of a greedy PTA reduction.

    Attributes
    ----------
    segments:
        The reduced relation in group-then-time order.
    error:
        Total SSE introduced, i.e. the sum of the pairwise merge errors of
        all merge steps (equal to ``SSE(s, result)`` by Proposition 2).
    size:
        Number of output segments.
    max_heap_size:
        Largest number of tuples simultaneously held in the merge heap
        (``c + β`` in the paper's notation; reported in Fig. 20).
    merges:
        Number of merge steps performed.
    input_size:
        Number of ITA tuples consumed.
    """

    segments: List[AggregateSegment] = field(default_factory=list)
    error: float = 0.0
    size: int = 0
    max_heap_size: int = 0
    merges: int = 0
    input_size: int = 0

    def __iter__(self) -> Iterator[AggregateSegment]:
        return iter(self.segments)


# ----------------------------------------------------------------------
# Plain greedy merging strategy over a materialised relation
# ----------------------------------------------------------------------
def gms_reduce_to_size(
    segments: Sequence[AggregateSegment],
    size: int,
    weights: Weights | None = None,
    backend: str = "python",
) -> GreedyResult:
    """Reduce to at most ``size`` tuples with the greedy merging strategy."""
    if size < 1:
        raise ValueError(f"size bound must be at least 1, got {size}")
    heap = _build_heap(segments, weights, backend)
    total_error = 0.0
    merges = 0
    while len(heap) > size:
        top = heap.peek_entry()
        if top is None or math.isinf(top[2]):
            break  # reached cmin: only non-adjacent pairs remain
        total_error += top[2]
        heap.merge_top()
        merges += 1
    return _result(heap, total_error, merges, len(segments))


def gms_reduce_to_error(
    segments: Sequence[AggregateSegment],
    epsilon: float,
    weights: Weights | None = None,
    backend: str = "python",
) -> GreedyResult:
    """Merge greedily while the accumulated error stays within ``ε·SSE_max``."""
    if not 0.0 <= epsilon <= 1.0:
        raise ValueError(f"epsilon must be within [0, 1], got {epsilon}")
    threshold = epsilon * max_error(segments, weights)
    heap = _build_heap(segments, weights, backend)
    total_error = 0.0
    merges = 0
    while True:
        top = heap.peek_entry()
        if top is None or math.isinf(top[2]):
            break
        if total_error + top[2] > threshold + 1e-9:
            break
        total_error += top[2]
        heap.merge_top()
        merges += 1
    return _result(heap, total_error, merges, len(segments))


# ----------------------------------------------------------------------
# Online algorithms gPTAc and gPTAε as a resumable state machine
# ----------------------------------------------------------------------
class OnlineReducer:
    """Explicit, resumable state of the online algorithms gPTAc / gPTAε.

    The state machine holds everything the paper's Fig. 11 / Fig. 13 loops
    keep between two input tuples: the merge heap, the gap bookkeeping
    (``last_gap_id`` and the tuple counts before / after the last confirmed
    gap), the accumulated merge error and — for the error-bounded variant —
    the running exact ``SSE_max`` of the consumed prefix.  Feeding one tuple
    is :meth:`push` (insert + drain every merge the online policy allows);
    :meth:`finalize` runs the end-of-input phase and returns the
    :class:`GreedyResult`.

    Exactly one of ``size`` (bound ``c``, gPTAc) and ``max_error`` (bound
    ``ε``, gPTAε) must be given.  The batch drivers
    :func:`greedy_reduce_to_size` / :func:`greedy_reduce_to_error` are thin
    loops over this class, and the push-based compression session
    (:class:`repro.api.Compressor`) holds one instance across calls.

    With ``track_deltas=True`` the reducer supports **delta-based
    snapshots**: :meth:`snapshot` returns the summary of everything pushed
    so far without consuming the reducer, in time amortised proportional to
    the number of committed operations since the previous snapshot.  The
    first snapshot materialises a :class:`~repro.core.kernels.SnapshotMirror`
    of the live relation; from then on every committed insert/merge is also
    appended to a :class:`~repro.core.kernels.DeltaLog` which the next
    snapshot replays into the mirror.  If the log ever outgrows the live
    heap (a long snapshot-free stretch), it is discarded and the mirror is
    rebuilt from the heap, which bounds both memory and patch time.
    :meth:`clone` + :meth:`finalize` remain the reference snapshot path —
    bit-identical to :meth:`snapshot` up to the ordering of exactly equal
    merge keys — and is what the delta path is property-tested against.
    """

    def __init__(
        self,
        size: Optional[int] = None,
        max_error: Optional[float] = None,
        delta: Delta = 1,
        weights: Weights | None = None,
        input_size_estimate: Optional[int] = None,
        max_error_estimate: Optional[float] = None,
        backend: str = "python",
        track_deltas: bool = False,
    ) -> None:
        if (size is None) == (max_error is None):
            raise ValueError("provide exactly one of 'size' and 'max_error'")
        if size is not None and size < 1:
            raise ValueError(f"size bound must be at least 1, got {size}")
        if max_error is not None and not 0.0 <= max_error <= 1.0:
            raise ValueError(
                f"epsilon must be within [0, 1], got {max_error}"
            )
        _check_delta(delta)
        self._size = size
        self._epsilon = max_error
        self._delta = delta
        self._weights = weights
        self._backend = backend
        self.heap: Heap = make_merge_heap(weights, backend)
        self._tracker: Optional[_MaxErrorTracker] = (
            _MaxErrorTracker(weights) if max_error is not None else None
        )
        if (
            max_error is not None
            and input_size_estimate
            and max_error_estimate is not None
        ):
            self._step_threshold = (
                max_error * max_error_estimate / input_size_estimate
            )
        else:
            self._step_threshold = 0.0  # disables early merging
        self._last_gap_id = 0
        self._before_gap = 0
        self._after_gap = 0
        self.total_error = 0.0
        self.merges = 0
        self.consumed = 0
        self._finalized = False
        self._track_deltas = track_deltas
        #: Both are created together by the first :meth:`snapshot` call;
        #: recording into the log only happens while a mirror exists.
        self._log: Optional[DeltaLog] = None
        self._mirror: Optional[SnapshotMirror] = None

    # ------------------------------------------------------------------
    # Feeding the stream
    # ------------------------------------------------------------------
    def push(self, segment: AggregateSegment) -> None:
        """Consume one ITA tuple: insert it and drain eligible merges."""
        self._check_open()
        node = self.heap.insert(segment)
        key = node.key
        if self._log is not None:
            self._log.record_insert(
                node.id,
                segment.interval.start,
                segment.interval.end,
                segment.group,
                segment.values,
                key,
            )
        self._observe(node.id, key, segment)
        if self._log is not None:
            self._trim_log()

    def push_chunk(self, segments: Sequence[AggregateSegment]) -> None:
        """Consume a chunk of tuples through the staged-insert fast path.

        On the array-backed NumPy heap the chunk is bulk-written with its
        raw merge keys precomputed vectorized (``stage_chunk``) and the
        whole activation-plus-drain loop runs fused inside the heap
        (``activate_staged_all``), bulk-activating the spans where the
        merge policy provably cannot fire and interleaving activations
        with merges tuple by tuple everywhere else — bit-identical to
        pushing tuple by tuple, with the per-insert Python overhead
        amortised per chunk (the batched online merge policy).  Heaps that
        only expose the staged protocol activate one tuple at a time;
        plain heaps fall back to per-tuple ``insert``.
        """
        self._check_open()
        heap = self.heap
        activate = getattr(heap, "activate_staged_all", None)
        if activate is not None:
            if not segments:
                return
            heap.stage_chunk(segments)  # type: ignore[attr-defined]
            tracker = self._tracker
            if tracker is not None:
                for segment in segments:
                    tracker.push(segment)
            self.consumed += len(segments)
            (
                self._last_gap_id,
                self._before_gap,
                self._after_gap,
                self.total_error,
                self.merges,
            ) = activate(
                size=self._size,
                step_threshold=self._step_threshold,
                delta=self._delta,
                last_gap_id=self._last_gap_id,
                before_gap=self._before_gap,
                after_gap=self._after_gap,
                total_error=self.total_error,
                merges=self.merges,
                log=self._log,
            )
            if self._log is not None:
                self._trim_log()
        elif hasattr(heap, "stage_chunk"):
            heap.stage_chunk(segments)  # type: ignore[attr-defined]
            log = self._log
            for segment in segments:
                node_id, key = heap.insert_staged()  # type: ignore[attr-defined]
                if log is not None:
                    log.record_insert(
                        node_id,
                        segment.interval.start,
                        segment.interval.end,
                        segment.group,
                        segment.values,
                        key,
                    )
                self._observe(node_id, key, segment)
            if log is not None:
                self._trim_log()
        else:
            for segment in segments:
                self.push(segment)

    def replay(
        self, chunks: Iterable[Sequence[AggregateSegment]]
    ) -> int:
        """Re-consume logged push chunks — the crash-recovery entry point.

        The durability tier (:mod:`repro.service.durability`) records every
        acknowledged push as one WAL frame holding exactly the chunk that
        was pushed.  Recovery feeds those chunks back through this method,
        one :meth:`push_chunk` per frame, which carries the **replay
        invariant**: because pushing a chunk is bit-identical to the
        original live push of the same tuples (the staged-insert contract
        above), a reducer rebuilt by replay is *state-identical* to the
        reducer that crashed — same heap contents, same merge history,
        same running error — and every snapshot it serves is bit-identical
        to what the uncrashed process would have served.  Returns the
        number of chunks replayed.
        """
        count = 0
        for chunk in chunks:
            self.push_chunk(
                chunk if isinstance(chunk, (list, tuple)) else list(chunk)
            )
            count += 1
        return count

    def extend(self, source: Iterable[AggregateSegment]) -> None:
        """Drive an entire iterable through the reducer.

        Pulls :data:`ONLINE_CHUNK_SIZE` tuples at a time when the heap
        supports staged chunks, single tuples otherwise.
        """
        if hasattr(self.heap, "stage_chunk"):
            iterator = iter(source)
            while True:
                batch = list(islice(iterator, ONLINE_CHUNK_SIZE))
                if not batch:
                    return
                self.push_chunk(batch)
        else:
            for segment in source:
                self.push(segment)

    # ------------------------------------------------------------------
    # One step of the online policy
    # ------------------------------------------------------------------
    def _observe(
        self, node_id: int, key: float, segment: AggregateSegment
    ) -> None:
        self.consumed += 1
        if self._tracker is not None:
            self._tracker.push(segment)
        if math.isinf(key):
            self._last_gap_id = node_id
            self._before_gap += self._after_gap
            self._after_gap = 1
        else:
            self._after_gap += 1
        if self._size is not None:
            self._drain_size_bounded()
        else:
            self._drain_error_bounded()

    def _drain_size_bounded(self) -> None:
        """Merge while over the size bound and a merge is safe (Fig. 11).

        This policy loop and the fused chunk loop in
        :meth:`repro.core.kernels.NumpyMergeHeap.activate_staged_all` must
        be kept in lockstep; the parity suites compare the two paths on
        randomized streams.
        """
        heap = self.heap
        size = self._size
        assert size is not None
        while len(heap) > size:
            top = heap.peek_entry()
            if top is None:
                break
            handle, top_id, top_key = top
            if top_id < self._last_gap_id and self._before_gap >= size:
                self._before_gap -= 1
            elif top_id > self._last_gap_id and _has_read_ahead(
                heap, handle, self._delta
            ):
                self._after_gap -= 1
            else:
                break
            self.total_error += top_key
            self._merge_top_logged(top_id)
            self.merges += 1

    def _drain_error_bounded(self) -> None:
        """Merge while under the expected-average-error step (Fig. 13).

        Kept in lockstep with ``activate_staged_all`` exactly like
        :meth:`_drain_size_bounded`.
        """
        heap = self.heap
        while True:
            top = heap.peek_entry()
            if top is None or top[2] > self._step_threshold:
                break
            handle, top_id, top_key = top
            if top_id < self._last_gap_id:
                self._before_gap -= 1
            elif top_id > self._last_gap_id and _has_read_ahead(
                heap, handle, self._delta
            ):
                self._after_gap -= 1
            else:
                break
            self.total_error += top_key
            self._merge_top_logged(top_id)
            self.merges += 1

    def _trim_log(self) -> None:
        """Drop the delta state once the log outgrows the live relation.

        A push-heavy stretch with no snapshots would otherwise grow the
        log linearly in the stream length; once replaying it would cost
        more than rebuilding the mirror from the heap, recording is
        pointless — drop both and stop recording until the next snapshot
        re-materialises them.  This bounds delta-log memory by the live
        heap size at all times, not just at snapshot boundaries.
        """
        log = self._log
        if log is not None and self._log_overflown(log):
            self._log = None
            self._mirror = None

    def _log_overflown(self, log: DeltaLog) -> bool:
        """Whether replaying ``log`` would cost more than a mirror rebuild.

        The single definition of the overflow threshold, shared by the
        mid-push trim and the snapshot-time rebuild decision so the two
        guards cannot drift apart.
        """
        return len(log) > 2 * max(len(self.heap), 256)

    def _merge_top_logged(self, absorbed_id: int) -> None:
        """Perform one ``merge_top``, recording it in the delta log."""
        heap = self.heap
        survivor = heap.merge_top()
        log = self._log
        if log is not None:
            successor = heap.successor_entry(survivor)
            if successor is None:
                successor_id, successor_key = -1, math.inf
            else:
                successor_id, successor_key = successor
            log.record_merge(
                absorbed_id,
                survivor.id,
                heap.values_entry(survivor),
                survivor.key,
                successor_id,
                successor_key,
            )

    # ------------------------------------------------------------------
    # End of input
    # ------------------------------------------------------------------
    def finalize(self) -> GreedyResult:
        """Run the end-of-input phase and return the reduction result.

        For gPTAc: plain greedy merging down to the size bound.  For gPTAε:
        the exact ``SSE_max`` of the consumed input is now known, so plain
        greedy merging continues while the accumulated error stays within
        ``ε · SSE_max``.  The reducer is consumed — further ``push`` calls
        raise :class:`RuntimeError`; take a :meth:`clone` first (or use
        :meth:`snapshot`) to keep the live state.
        """
        self._check_open()
        self._finalized = True
        self._log = None
        self._mirror = None
        heap = self.heap
        if self._size is not None:
            while len(heap) > self._size:
                top = heap.peek_entry()
                if top is None or math.isinf(top[2]):
                    break
                self.total_error += top[2]
                heap.merge_top()
                self.merges += 1
        else:
            assert self._tracker is not None
            assert self._epsilon is not None
            threshold = self._epsilon * self._tracker.total()
            while True:
                top = heap.peek_entry()
                if top is None or math.isinf(top[2]):
                    break
                if self.total_error + top[2] > threshold + 1e-9:
                    break
                self.total_error += top[2]
                heap.merge_top()
                self.merges += 1
        return _result(heap, self.total_error, self.merges, self.consumed)

    def snapshot(
        self, materialize: bool = True
    ) -> Tuple[GreedyResult, SnapshotColumns]:
        """Summary of everything pushed so far, without consuming the state.

        The delta path: the first call materialises a mirror of the live
        intermediate relation (O(heap)); every later call replays the
        delta log into the mirror (amortised O(changes since the last
        snapshot)) and runs the end-of-input phase on the mirror —
        bit-identical to ``clone().finalize()`` (the oracle path) up to
        the ordering of exactly equal merge keys, at a cost proportional
        to the delta plus the summary size instead of the whole heap.

        Returns both the :class:`GreedyResult` and the snapshot in flat
        column form (what the serving layer's query index consumes).
        With ``materialize=False`` the result's ``segments`` list is left
        empty — callers that only consume the columns (the serving layer)
        skip the per-segment object construction entirely.
        """
        self._check_open()
        if not self._track_deltas:
            raise RuntimeError(
                "snapshot() requires an OnlineReducer created with "
                "track_deltas=True; use clone().finalize() otherwise"
            )
        heap = self.heap
        mirror = self._mirror
        log = self._log
        if mirror is None or log is None or self._log_overflown(log):
            # First snapshot, or the log outgrew the live relation (a long
            # snapshot-free stretch): rebuilding is cheaper than patching.
            self._mirror = mirror = SnapshotMirror.from_heap(heap)
            self._log = DeltaLog()
        else:
            mirror.apply(log)
            log.clear()
        threshold: Optional[float] = None
        if self._epsilon is not None:
            assert self._tracker is not None
            threshold = self._epsilon * self._tracker.clone().total()
        tail = finalize_mirror(
            mirror,
            size=self._size,
            error_threshold=threshold,
            total_error=self.total_error,
            backend=self._backend,
            weights=self._weights,
        )
        if tail is None:
            # The tail hit an exact merge-key tie, where the mirror's
            # chronological tie-breaking could diverge from the oracle's
            # historical counters: take the oracle path for this snapshot
            # (the mirror and the emptied log remain valid for the next).
            oracle = self.clone().finalize()
            return oracle, SnapshotColumns.from_segments(oracle.segments)
        columns, error, tail_merges = tail
        result = GreedyResult(
            segments=columns.segments() if materialize else [],
            error=error,
            size=len(columns),
            max_heap_size=self.heap.max_size,
            merges=self.merges + tail_merges,
            input_size=self.consumed,
        )
        return result, columns

    def clone(self) -> "OnlineReducer":
        """Deep-copy the resumable state (heap, gap bookkeeping, tracker).

        The clone behaves bit-identically to the original under any further
        operation sequence, so finalising the clone yields exactly what
        finalising the original would — without consuming it.  The clone
        starts with a fresh (empty) snapshot mirror: its first
        :meth:`snapshot` rebuilds from its own heap, so cloning mid-log
        never aliases delta state with the original.
        """
        self._check_open()
        other = OnlineReducer.__new__(OnlineReducer)
        other._size = self._size
        other._epsilon = self._epsilon
        other._delta = self._delta
        other._weights = self._weights
        other._backend = self._backend
        other.heap = self.heap.clone()
        other._tracker = (
            self._tracker.clone() if self._tracker is not None else None
        )
        other._step_threshold = self._step_threshold
        other._last_gap_id = self._last_gap_id
        other._before_gap = self._before_gap
        other._after_gap = self._after_gap
        other.total_error = self.total_error
        other.merges = self.merges
        other.consumed = self.consumed
        other._finalized = False
        other._track_deltas = self._track_deltas
        other._log = None
        other._mirror = None
        return other

    def _check_open(self) -> None:
        if self._finalized:
            raise RuntimeError(
                "this OnlineReducer has been finalized; clone() before "
                "finalize() to keep a resumable copy"
            )


def greedy_reduce_to_size(
    source: Iterable[AggregateSegment],
    size: int,
    delta: Delta = 1,
    weights: Weights | None = None,
    backend: str = "python",
) -> GreedyResult:
    """Online size-bounded greedy reduction (algorithm ``gPTAc``, Fig. 11).

    A batch driver over :class:`OnlineReducer`: the whole ``source`` is
    pushed through the state machine, then the end-of-input phase finishes
    with plain greedy merging.

    Parameters
    ----------
    source:
        ITA result tuples in group-then-time order; typically an iterator so
        merging starts before the full ITA result exists.
    size:
        Size bound ``c``.
    delta:
        Read-ahead ``δ``: minimum number of adjacent successors a merge
        candidate must have before it may be merged ahead of a confirmed
        gap.  Use :data:`DELTA_INFINITY` to reproduce plain GMS exactly.
    backend:
        ``"python"`` for the linked-node reference heap, ``"numpy"`` for the
        array-backed heap of :mod:`repro.core.kernels`.
    """
    reducer = OnlineReducer(
        size=size, delta=delta, weights=weights, backend=backend
    )
    reducer.extend(source)
    return reducer.finalize()


def greedy_reduce_to_error(
    source: Iterable[AggregateSegment],
    epsilon: float,
    delta: Delta = 1,
    weights: Weights | None = None,
    input_size_estimate: Optional[int] = None,
    max_error_estimate: Optional[float] = None,
    backend: str = "python",
) -> GreedyResult:
    """Online error-bounded greedy reduction (algorithm ``gPTAε``, Fig. 13).

    A batch driver over :class:`OnlineReducer`.  While tuples arrive, a
    merge candidate is only merged when its merge error does not exceed the
    *expected average* error per step, ``ε · Êmax / n̂``, and Proposition
    4's safety condition (gap after the candidate, or ``δ`` adjacent
    successors) holds.  Once the input is exhausted the exact maximal error
    is known and plain greedy merging continues until the threshold
    ``ε · SSE_max`` would be exceeded.

    Parameters
    ----------
    input_size_estimate:
        Estimate ``n̂`` of the ITA result size; the safe default used by the
        operator facade is ``2·|r| − 1``.  ``None`` disables early merging,
        which is always correct but lets the heap grow to the full ITA size.
    max_error_estimate:
        Estimate ``Êmax`` of ``SSE_max``.  Underestimating is safe
        (Theorem 3); overestimating may lead to a result different from GMS.
    """
    reducer = OnlineReducer(
        max_error=epsilon,
        delta=delta,
        weights=weights,
        input_size_estimate=input_size_estimate,
        max_error_estimate=max_error_estimate,
        backend=backend,
    )
    reducer.extend(source)
    return reducer.finalize()


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------


def _build_heap(
    segments: Sequence[AggregateSegment],
    weights: Weights | None,
    backend: str = "python",
) -> Heap:
    heap = make_merge_heap(weights, backend)
    if hasattr(heap, "insert_batch"):
        heap.insert_batch(list(segments))  # type: ignore[attr-defined]
    else:
        for segment in segments:
            heap.insert(segment)
    return heap


def _result(
    heap: Heap, error: float, merges: int, input_size: int
) -> GreedyResult:
    segments = heap.segments()
    return GreedyResult(
        segments=segments,
        error=error,
        size=len(segments),
        max_heap_size=heap.max_size,
        merges=merges,
        input_size=input_size,
    )


def _check_delta(delta: Delta) -> None:
    if delta != DELTA_INFINITY and (delta < 0 or int(delta) != delta):
        raise ValueError(
            f"delta must be a non-negative integer or DELTA_INFINITY, "
            f"got {delta!r}"
        )


def _has_read_ahead(heap: Heap, handle: Any, delta: Delta) -> bool:
    """Check the δ read-ahead heuristic for a merge candidate.

    ``handle`` is whatever the heap's ``peek_entry`` returned as its first
    element (a node for the linked-list heap, a row index for the array
    heap); both are accepted by ``adjacent_successor_count``.
    """
    if delta == DELTA_INFINITY:
        return False
    if delta == 0:
        return True
    return heap.adjacent_successor_count(handle, int(delta)) >= delta


class _MaxErrorTracker:
    """Incrementally accumulate the exact ``SSE_max`` of the streamed input.

    ``SSE_max`` is the error of collapsing every maximal adjacent run into a
    single tuple; it is accumulated run by run as ITA tuples arrive so the
    error-bounded algorithm knows the exact threshold at finalisation time
    without a second pass.
    """

    def __init__(self, weights: Weights | None) -> None:
        self._weights = weights
        self._previous: Optional[AggregateSegment] = None
        self._length = 0.0
        self._sums: List[float] = []
        self._square_sums: List[float] = []
        self._total = 0.0

    def push(self, segment: AggregateSegment) -> None:
        if self._previous is not None and not adjacent(self._previous, segment):
            self._close_run()
        if not self._sums:
            self._sums = [0.0] * segment.dimensions
            self._square_sums = [0.0] * segment.dimensions
        length = float(segment.length)
        self._length += length
        for d, value in enumerate(segment.values):
            self._sums[d] += length * value
            self._square_sums[d] += length * value * value
        self._previous = segment

    def _close_run(self) -> None:
        if self._length > 0:
            weights = resolve_weights(self._weights, len(self._sums))
            for d in range(len(self._sums)):
                deviation = (
                    self._square_sums[d]
                    - self._sums[d] * self._sums[d] / self._length
                )
                self._total += weights[d] ** 2 * max(deviation, 0.0)
        self._length = 0.0
        self._sums = [0.0] * len(self._sums)
        self._square_sums = [0.0] * len(self._square_sums)

    def clone(self) -> "_MaxErrorTracker":
        """Copy the accumulator state (used by :meth:`OnlineReducer.clone`)."""
        other = _MaxErrorTracker(self._weights)
        other._previous = self._previous
        other._length = self._length
        other._sums = list(self._sums)
        other._square_sums = list(self._square_sums)
        other._total = self._total
        return other

    def total(self) -> float:
        """Return ``SSE_max`` over everything pushed so far."""
        self._close_run()
        self._previous = None
        return self._total
