"""Merge heap used by the greedy PTA algorithms (Section 6.2.2).

Every node of the heap represents one tuple of the intermediate relation and
is doubly linked to its chronological predecessor and successor.  A node's
*key* is the error that merging it into its predecessor would introduce
(``∞`` for the first tuple of a run or when the predecessor belongs to a
different group / is separated by a gap).  ``peek`` returns the node with the
smallest key and ``merge_top`` performs the merge, relinking neighbours and
recomputing the affected keys.

The priority queue is a binary heap (:mod:`heapq`) with lazy invalidation:
when a node's key changes a fresh entry is pushed and stale entries are
skipped during ``peek``.  This keeps all operations ``O(log h)`` for heap
size ``h`` without implementing decrease-key.

:func:`make_merge_heap` selects between this reference implementation and
the array-backed :class:`~repro.core.kernels.NumpyMergeHeap`, which stores
the intermediate relation in parallel NumPy arrays and merges in place; the
greedy algorithms expose the choice as their ``backend`` parameter.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Iterator, List, Optional, Protocol, Sequence, Tuple

from .errors import Weights, pairwise_merge_error
from .merge import AggregateSegment, adjacent, merge


class HeapNodeView(Protocol):
    """What the greedy algorithms read off a heap node, backend-agnostic.

    Satisfied structurally by the linked :class:`HeapNode` and by the
    array-slot view :class:`~repro.core.kernels.NumpyHeapNode`.
    """

    @property
    def id(self) -> int: ...

    @property
    def key(self) -> float: ...

    @property
    def segment(self) -> AggregateSegment: ...


class Heap(Protocol):
    """The merge-heap surface shared by the two backends (Section 6.2.2).

    :class:`MergeHeap` (linked nodes, the reference) and
    :class:`~repro.core.kernels.NumpyMergeHeap` (parallel array columns)
    both satisfy this protocol structurally; the greedy state machine
    (:class:`repro.core.greedy.OnlineReducer`) and the serving layer are
    written against it, so a third backend only needs to match this
    surface.  The staged-chunk fast path (``stage_chunk`` /
    ``insert_staged``) is deliberately *not* part of the protocol — it is
    an optional optimisation the callers probe with ``hasattr``.

    ``peek_entry`` returns ``(handle, node_id, key)`` where ``handle`` is
    whatever the backend accepts back in ``adjacent_successor_count`` (a
    node object for the linked heap, a row index for the array heap).
    """

    max_size: int

    def __len__(self) -> int: ...

    def __bool__(self) -> bool: ...

    def insert(self, segment: AggregateSegment) -> HeapNodeView: ...

    def peek(self) -> Optional[HeapNodeView]: ...

    def peek_entry(self) -> Optional[Tuple[Any, int, float]]: ...

    def merge_top(self) -> HeapNodeView: ...

    def adjacent_successor_count(self, node: Any, limit: int) -> int: ...

    def successor_entry(self, node: Any) -> Optional[Tuple[int, float]]: ...

    def values_entry(self, node: Any) -> Sequence[float]: ...

    def segments(self) -> List[AggregateSegment]: ...

    def clone(self) -> "Heap": ...


class HeapNode:
    """One intermediate tuple inside the merge heap."""

    __slots__ = ("id", "segment", "prev", "next", "key", "_version", "alive")

    def __init__(self, node_id: int, segment: AggregateSegment) -> None:
        self.id = node_id
        self.segment = segment
        self.prev: Optional["HeapNode"] = None
        self.next: Optional["HeapNode"] = None
        self.key = math.inf
        self._version = 0
        self.alive = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HeapNode(id={self.id}, key={self.key:.2f}, {self.segment})"


class MergeHeap:
    """Doubly linked list of tuples with a min-heap over pairwise merge errors."""

    def __init__(self, weights: Weights | None = None) -> None:
        self._weights = weights
        self._entries: List[tuple] = []
        self._entry_counter = 0
        self._head: Optional[HeapNode] = None
        self._tail: Optional[HeapNode] = None
        self._size = 0
        self._next_id = 1
        self.max_size = 0

    # ------------------------------------------------------------------
    # Basic state
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    @property
    def tail(self) -> Optional[HeapNode]:
        """The most recently inserted (chronologically last) node."""
        return self._tail

    @property
    def head(self) -> Optional[HeapNode]:
        """The chronologically first node."""
        return self._head

    # ------------------------------------------------------------------
    # Operations of the paper: INSERT, PEEK, MERGE
    # ------------------------------------------------------------------
    def insert(self, segment: AggregateSegment) -> HeapNode:
        """Append a new tuple at the end of the list and index it in the heap.

        The node's key is the error of merging it with its predecessor, or
        ``∞`` when there is no predecessor or the pair is not adjacent.
        """
        node = HeapNode(self._next_id, segment)
        self._next_id += 1
        if self._tail is None:
            self._head = node
        else:
            node.prev = self._tail
            self._tail.next = node
        self._tail = node
        self._size += 1
        self.max_size = max(self.max_size, self._size)
        self._refresh_key(node)
        return node

    def peek(self) -> Optional[HeapNode]:
        """Return the node with the smallest key without removing it.

        Returns ``None`` when the heap is empty.  A returned node with an
        infinite key means no merge is currently possible.
        """
        while self._entries:
            key, _, node, version = self._entries[0]
            if node.alive and node._version == version and node.key == key:
                return node
            heapq.heappop(self._entries)
        return None

    def peek_entry(self) -> Optional[Tuple["HeapNode", int, float]]:
        """Scalar view of the top: ``(handle, node_id, key)`` or ``None``.

        Mirrors :meth:`NumpyMergeHeap.peek_entry
        <repro.core.kernels.NumpyMergeHeap.peek_entry>` so the greedy inner
        loops can treat both heap backends uniformly; ``handle`` is accepted
        by :meth:`adjacent_successor_count`.
        """
        node = self.peek()
        if node is None:
            return None
        return node, node.id, node.key

    def merge_top(self) -> HeapNode:
        """Merge the minimum-key node into its predecessor.

        Returns the surviving predecessor node (which keeps its ``id``, as in
        the paper).  Raises :class:`ValueError` if no merge is possible.
        """
        node = self.peek()
        if node is None or math.isinf(node.key):
            raise ValueError("no adjacent pair available for merging")
        predecessor = node.prev
        assert predecessor is not None
        predecessor.segment = merge(predecessor.segment, node.segment)

        predecessor.next = node.next
        if node.next is not None:
            node.next.prev = predecessor
        else:
            self._tail = predecessor
        node.alive = False
        self._size -= 1

        self._refresh_key(predecessor)
        if predecessor.next is not None:
            self._refresh_key(predecessor.next)
        return predecessor

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _refresh_key(self, node: HeapNode) -> None:
        if node.prev is None or not adjacent(node.prev.segment, node.segment):
            node.key = math.inf
        else:
            node.key = pairwise_merge_error(
                node.prev.segment, node.segment, self._weights
            )
        node._version += 1
        if not math.isinf(node.key):
            self._entry_counter += 1
            heapq.heappush(
                self._entries,
                (node.key, self._entry_counter, node, node._version),
            )

    def clone(self) -> "MergeHeap":
        """Return an independent copy with identical observable behaviour.

        The copy preserves node ids, keys, versions and — crucially — the
        priority-queue entry counters, so a sequence of ``peek`` /
        ``merge_top`` / ``insert`` calls on the clone produces exactly the
        same results (including equal-key tie-breaking) as on the original.
        Stale lazy-deletion entries are dropped during the copy; they can
        never win a ``peek`` so their absence is unobservable.  This is what
        lets an incremental compression session take a non-destructive
        snapshot of its online state (:class:`repro.api.Compressor`).
        """
        other = MergeHeap(self._weights)
        other._entry_counter = self._entry_counter
        other._size = self._size
        other._next_id = self._next_id
        other.max_size = self.max_size
        twins: dict[int, HeapNode] = {}
        previous: Optional[HeapNode] = None
        node = self._head
        while node is not None:
            twin = HeapNode(node.id, node.segment)
            twin.key = node.key
            twin._version = node._version
            twin.prev = previous
            if previous is None:
                other._head = twin
            else:
                previous.next = twin
            twins[id(node)] = twin
            previous = twin
            node = node.next
        other._tail = previous
        entries = [
            (key, counter, twins[id(entry_node)], version)
            for key, counter, entry_node, version in self._entries
            if entry_node.alive
            and entry_node._version == version
            and entry_node.key == key
        ]
        # Filtering a binary heap does not preserve the heap invariant.
        heapq.heapify(entries)
        other._entries = entries
        return other

    def adjacent_successor_count(self, node: HeapNode, limit: int) -> int:
        """Number of successors chained to ``node`` by adjacency, up to ``limit``.

        Walks ``next`` pointers while each consecutive pair is adjacent.  The
        greedy algorithms use this to implement the read-ahead heuristic: a
        merge candidate is only merged once at least ``δ`` adjacent tuples
        follow it (Section 6.2.1).
        """
        count = 0
        current = node
        while count < limit and current.next is not None:
            if not adjacent(current.segment, current.next.segment):
                break
            count += 1
            current = current.next
        return count

    def successor_entry(
        self, node: HeapNode
    ) -> Optional[Tuple[int, float]]:
        """``(id, key)`` of the chronological successor, or ``None``.

        Used by the merge delta log to record the successor's refreshed
        key right after a merge, without materialising a node view.
        """
        successor = node.next
        if successor is None:
            return None
        return successor.id, successor.key

    def values_entry(self, node: HeapNode) -> Tuple[float, ...]:
        """The node's aggregate value row (immutable, by reference)."""
        return node.segment.values

    def __iter__(self) -> Iterator[HeapNode]:
        """Iterate over live nodes in chronological (list) order."""
        node = self._head
        while node is not None:
            yield node
            node = node.next

    def segments(self) -> List[AggregateSegment]:
        """Return the current intermediate relation in list order."""
        return [node.segment for node in self]


def make_merge_heap(
    weights: Weights | None = None, backend: str = "python"
) -> Heap:
    """Construct a merge heap for the requested ``backend``.

    ``"python"`` returns the linked-node reference :class:`MergeHeap`;
    ``"numpy"`` returns the array-backed
    :class:`~repro.core.kernels.NumpyMergeHeap`.  Both satisfy the
    :class:`Heap` protocol.
    """
    if backend == "python":
        return MergeHeap(weights)
    if backend == "numpy":
        from .kernels import NumpyMergeHeap

        return NumpyMergeHeap(weights)
    raise ValueError(f"backend must be 'python' or 'numpy', got {backend!r}")
