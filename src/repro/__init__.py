"""Parsimonious temporal aggregation (PTA).

A from-scratch implementation of the temporal aggregation operators and the
parsimonious temporal aggregation algorithms of Gordevicius, Gamper and
Böhlen (EDBT 2009 / VLDB Journal 2012), together with the baselines and the
data generators needed to reproduce the paper's experimental evaluation.

Typical usage::

    from repro import Interval, TemporalRelation, ita, pta

    proj = TemporalRelation.from_records(
        columns=("empl", "proj", "sal"),
        records=[
            ("John", "A", 800, Interval(1, 4)),
            ("Ann", "A", 400, Interval(3, 6)),
            ("Tom", "A", 300, Interval(4, 7)),
            ("John", "B", 500, Interval(4, 5)),
            ("John", "B", 500, Interval(7, 8)),
        ],
    )
    summary = pta(proj, group_by=["proj"],
                  aggregates={"avg_sal": ("avg", "sal")}, size=4)

The same query as a declarative plan (the canonical typed surface,
:mod:`repro.api`), plus the push-based incremental session::

    from repro import Plan, SizeBudget, Compressor

    result = (Plan(proj).group_by("proj")
              .aggregate(avg_sal=("avg", "sal"))
              .reduce(SizeBudget(4)).run())

    session = Compressor(SizeBudget(100))
    for segment in live_segments:
        session.push(segment)
    snapshot = session.summary()
"""

from .aggregation import (
    AggregateSpec,
    ita,
    iter_ita,
    iter_ita_segments,
    mwta,
    register_aggregate,
    regular_spans,
    sta,
)
from .api import (
    Backend,
    Compressor,
    ErrorBudget,
    ExecutionPolicy,
    Method,
    Plan,
    PlanError,
    Result,
    SizeBudget,
    execute,
)
from .core import (
    DELTA_INFINITY,
    AggregateSegment,
    DPResult,
    GreedyResult,
    estimate_max_error,
    gpta_error_bounded,
    gpta_size_bounded,
    pta,
    pta_error_bounded,
    pta_size_bounded,
    reduce_ita,
)
from .parallel import reduce_segments_parallel
from .pipeline import CompressionResult, compress
from .service import QueryEngine, Service, ServiceError, SessionStore
from .temporal import (
    Interval,
    TemporalRelation,
    TemporalSchema,
    TemporalTuple,
    coalesce,
)

__version__ = "1.0.0"

__all__ = [
    "AggregateSegment",
    "AggregateSpec",
    "Backend",
    "Compressor",
    "DELTA_INFINITY",
    "DPResult",
    "ErrorBudget",
    "ExecutionPolicy",
    "GreedyResult",
    "Interval",
    "Method",
    "Plan",
    "PlanError",
    "QueryEngine",
    "Result",
    "Service",
    "ServiceError",
    "SessionStore",
    "SizeBudget",
    "execute",
    "TemporalRelation",
    "TemporalSchema",
    "TemporalTuple",
    "coalesce",
    "compress",
    "CompressionResult",
    "estimate_max_error",
    "gpta_error_bounded",
    "gpta_size_bounded",
    "ita",
    "iter_ita",
    "iter_ita_segments",
    "mwta",
    "pta",
    "pta_error_bounded",
    "pta_size_bounded",
    "reduce_ita",
    "reduce_segments_parallel",
    "register_aggregate",
    "regular_spans",
    "sta",
    "__version__",
]
