"""Synthetic substitutes for the UCR time series used in the evaluation.

The paper uses three series from the UCR repository: ``chaotic.dat`` (T1,
1 800 points), ``tide.dat`` (T2, 8 746 points) and the 12-dimensional
``wind.dat`` (T3, 6 574 points).  The repository files are not redistributed
here, so seeded generators produce series with the same length,
dimensionality and qualitative character:

* :func:`chaotic_series` — a Mackey–Glass delay differential equation, the
  standard benchmark chaotic signal;
* :func:`tide_series` — a sum of tidal harmonic constituents plus noise,
  smooth and strongly periodic like a tide gauge record;
* :func:`wind_series` — correlated mean-reverting (Ornstein–Uhlenbeck style)
  channels resembling wind measurements at 12 stations.

Each series converts to a sequential relation by attaching unit-length
validity intervals, exactly as the paper does (Section 7.1).
"""

from __future__ import annotations

import math
import random
from typing import List, Sequence

from ..core.merge import AggregateSegment
from ..temporal import Interval, TemporalRelation, TemporalSchema


def chaotic_series(length: int = 1800, seed: int = 7) -> List[float]:
    """Mackey–Glass chaotic series of the given length (T1 substitute)."""
    if length < 1:
        raise ValueError(f"length must be positive, got {length}")
    rng = random.Random(seed)
    tau, beta, gamma, exponent = 17, 0.2, 0.1, 10.0
    history = [1.2 + 0.05 * rng.uniform(-1.0, 1.0) for _ in range(tau + 1)]
    warmup = 200
    values: List[float] = []
    current = history[-1]
    for step in range(length + warmup):
        delayed = history[-(tau + 1)]
        current = current + beta * delayed / (1.0 + delayed**exponent) - gamma * current
        history.append(current)
        if step >= warmup:
            values.append(100.0 * current)
    return values


def tide_series(length: int = 8746, seed: int = 11) -> List[float]:
    """Harmonic tide-gauge style series (T2 substitute)."""
    if length < 1:
        raise ValueError(f"length must be positive, got {length}")
    rng = random.Random(seed)
    # Principal lunar/solar semidiurnal and diurnal constituents (periods in
    # hours) with plausible relative amplitudes.
    constituents = [
        (12.42, 100.0), (12.00, 46.0), (25.82, 19.0), (23.93, 10.0),
        (12.66, 19.0), (26.87, 4.0),
    ]
    phases = [rng.uniform(0.0, 2.0 * math.pi) for _ in constituents]
    values = []
    for step in range(length):
        tide = 250.0
        for (period, amplitude), phase in zip(constituents, phases):
            tide += amplitude * math.sin(2.0 * math.pi * step / period + phase)
        tide += rng.gauss(0.0, 2.0)
        values.append(tide)
    return values


def wind_series(
    length: int = 6574, dimensions: int = 12, seed: int = 13
) -> List[List[float]]:
    """Correlated multi-channel wind-speed style series (T3 substitute).

    Returns ``length`` rows of ``dimensions`` values each.  All channels
    share a slowly varying regional component and add their own
    mean-reverting local fluctuations, giving the moderate cross-correlation
    typical of wind stations in one region.
    """
    if length < 1 or dimensions < 1:
        raise ValueError("length and dimensions must be positive")
    rng = random.Random(seed)
    regional = 0.0
    locals_ = [rng.uniform(4.0, 12.0) for _ in range(dimensions)]
    baselines = [rng.uniform(6.0, 14.0) for _ in range(dimensions)]
    rows: List[List[float]] = []
    for step in range(length):
        seasonal = 2.0 * math.sin(2.0 * math.pi * step / 365.0)
        regional += 0.1 * (0.0 - regional) + rng.gauss(0.0, 0.6)
        row = []
        for d in range(dimensions):
            locals_[d] += 0.2 * (baselines[d] - locals_[d]) + rng.gauss(0.0, 0.8)
            row.append(max(locals_[d] + regional + seasonal, 0.0))
        rows.append(row)
    return rows


def series_to_segments(
    rows: Sequence[Sequence[float]] | Sequence[float],
    group: tuple = (),
) -> List[AggregateSegment]:
    """Attach unit-length intervals to a (possibly multi-channel) series."""
    segments: List[AggregateSegment] = []
    for position, row in enumerate(rows):
        if isinstance(row, (int, float)):
            values = (float(row),)
        else:
            values = tuple(float(value) for value in row)
        segments.append(
            AggregateSegment(group, values, Interval(position + 1, position + 1))
        )
    return segments


def series_to_relation(
    rows: Sequence[Sequence[float]] | Sequence[float],
    value_names: Sequence[str] | None = None,
) -> TemporalRelation:
    """Convert a series into a sequential temporal relation."""
    segments = series_to_segments(rows)
    dimensions = segments[0].dimensions if segments else 1
    if value_names is None:
        value_names = tuple(f"v{d}" for d in range(dimensions))
    schema = TemporalSchema(tuple(value_names))
    relation = TemporalRelation(schema)
    for segment in segments:
        relation.append(segment.values, segment.interval)
    return relation
