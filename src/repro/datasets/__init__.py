"""Data generators standing in for the paper's evaluation data sets."""

from .etds import generate_etds, etds_queries
from .incumbents import generate_incumbents, incumbents_queries
from .queries import QueryCase, SCALES, etds_cases, incumbents_cases, table1_catalogue, timeseries_cases
from .synthetic import (
    synthetic_grouped_segments,
    synthetic_relation,
    synthetic_sequential_segments,
    value_columns,
)
from .timeseries import (
    chaotic_series,
    series_to_relation,
    series_to_segments,
    tide_series,
    wind_series,
)

__all__ = [
    "QueryCase",
    "SCALES",
    "chaotic_series",
    "etds_cases",
    "etds_queries",
    "generate_etds",
    "generate_incumbents",
    "incumbents_cases",
    "incumbents_queries",
    "series_to_relation",
    "series_to_segments",
    "synthetic_grouped_segments",
    "synthetic_relation",
    "synthetic_sequential_segments",
    "table1_catalogue",
    "tide_series",
    "value_columns",
    "timeseries_cases",
    "wind_series",
]
