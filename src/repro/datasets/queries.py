"""The query catalogue of the experimental evaluation (Table 1).

The paper evaluates PTA over 12 ITA relations obtained from four base data
sets: the ETDS employee relation (E1–E4), the Incumbents relation (I1–I3),
three UCR time series (T1–T3) and a large synthetic relation (S1, S2).  This
module builds the equivalent catalogue from the synthetic generators of this
package and returns, for every query, the ITA result as a list of segments
ready for the PTA merging step.

Because the DP algorithms are quadratic and this is a pure-Python
reproduction, the catalogue supports three scales:

* ``"tiny"``  — seconds; used by the test suite;
* ``"small"`` — default for the benchmark harness on a laptop;
* ``"paper"`` — sizes close to the originals (minutes to hours for the DP
  quality experiments, as in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from ..aggregation import ita
from ..core.merge import AggregateSegment, cmin, segments_from_relation
from .etds import etds_queries, generate_etds
from .incumbents import generate_incumbents, incumbents_queries
from .timeseries import chaotic_series, series_to_segments, tide_series, wind_series

SCALES = ("tiny", "small", "paper")


@dataclass
class QueryCase:
    """One evaluation query: its ITA result plus bookkeeping metadata."""

    name: str
    description: str
    segments: List[AggregateSegment]
    group_columns: Tuple[str, ...]
    value_columns: Tuple[str, ...]

    @property
    def ita_size(self) -> int:
        """Number of ITA result tuples ``n``."""
        return len(self.segments)

    @property
    def cmin(self) -> int:
        """Smallest size any reduction can reach."""
        return cmin(self.segments)

    @property
    def dimensions(self) -> int:
        """Number of aggregate values per tuple ``p``."""
        return self.segments[0].dimensions if self.segments else 0


def _check_scale(scale: str) -> None:
    if scale not in SCALES:
        raise ValueError(f"scale must be one of {SCALES}, got {scale!r}")


def etds_cases(scale: str = "small", seed: int = 42) -> List[QueryCase]:
    """Queries E1–E4 over the ETDS-like relation (Table 1(a))."""
    _check_scale(scale)
    employees = {"tiny": 60, "small": 400, "paper": 20000}[scale]
    months = {"tiny": 60, "small": 180, "paper": 480}[scale]
    relation = generate_etds(employees=employees, months=months, seed=seed)
    cases = []
    for query in etds_queries():
        group_by = query["group_by"]
        aggregates = query["aggregates"]
        result = ita(relation, group_by, aggregates)
        value_columns = tuple(aggregates)
        segments = segments_from_relation(result, group_by, value_columns)
        cases.append(
            QueryCase(
                name=query["name"],
                description=f"ETDS, group by {list(group_by) or 'nothing'}, "
                f"{next(iter(aggregates.values()))[0]}(salary)",
                segments=segments,
                group_columns=tuple(group_by),
                value_columns=value_columns,
            )
        )
    return cases


def incumbents_cases(scale: str = "small", seed: int = 7) -> List[QueryCase]:
    """Queries I1–I3 over the Incumbents-like relation (Table 1(b))."""
    _check_scale(scale)
    parameters = {
        "tiny": dict(departments=3, projects_per_department=3,
                     incumbents_per_project=6, months=120),
        "small": dict(departments=8, projects_per_department=5,
                      incumbents_per_project=12, months=240),
        "paper": dict(departments=20, projects_per_department=10,
                      incumbents_per_project=40, months=480),
    }[scale]
    relation = generate_incumbents(seed=seed, **parameters)
    cases = []
    for query in incumbents_queries():
        group_by = query["group_by"]
        aggregates = query["aggregates"]
        result = ita(relation, group_by, aggregates)
        value_columns = tuple(aggregates)
        segments = segments_from_relation(result, group_by, value_columns)
        cases.append(
            QueryCase(
                name=query["name"],
                description="Incumbents, group by dept/proj, "
                f"{next(iter(aggregates.values()))[0]}(salary)",
                segments=segments,
                group_columns=tuple(group_by),
                value_columns=value_columns,
            )
        )
    return cases


def timeseries_cases(scale: str = "small", seed: int = 3) -> List[QueryCase]:
    """Queries T1–T3 over the synthetic UCR-style time series (Table 1(c))."""
    _check_scale(scale)
    lengths = {
        "tiny": (150, 200, 120),
        "small": (450, 700, 400),
        "paper": (1800, 8746, 6574),
    }[scale]
    t1 = series_to_segments(chaotic_series(lengths[0], seed=seed))
    t2 = series_to_segments(tide_series(lengths[1], seed=seed + 1))
    t3 = series_to_segments(wind_series(lengths[2], dimensions=12, seed=seed + 2))
    return [
        QueryCase("T1", "chaotic (Mackey-Glass) series, 1 dimension",
                  t1, (), ("v0",)),
        QueryCase("T2", "tide-gauge style series, 1 dimension",
                  t2, (), ("v0",)),
        QueryCase("T3", "wind-station style series, 12 dimensions",
                  t3, (), tuple(f"v{d}" for d in range(12))),
    ]


def table1_catalogue(
    scale: str = "small",
    families: Sequence[str] = ("etds", "incumbents", "timeseries"),
) -> Dict[str, QueryCase]:
    """Return the full query catalogue indexed by query name.

    ``families`` selects which groups of queries to generate; the synthetic
    S1/S2 workloads of Table 1(d) are produced separately by
    :mod:`repro.datasets.synthetic` because their size is an experiment
    parameter rather than a fixed value.
    """
    builders: Dict[str, Callable[[str], List[QueryCase]]] = {
        "etds": etds_cases,
        "incumbents": incumbents_cases,
        "timeseries": timeseries_cases,
    }
    catalogue: Dict[str, QueryCase] = {}
    for family in families:
        if family not in builders:
            raise ValueError(
                f"unknown query family {family!r}; known: {sorted(builders)}"
            )
        for case in builders[family](scale):
            catalogue[case.name] = case
    return catalogue
