"""Synthetic substitute for the employee temporal data set (ETDS).

The paper's ETDS relation (donated by F. Wang) records the evolution of the
employees of a company — employee number, sex, department, title, monthly
salary and contract validity interval — with roughly 2.9 million records.
This generator produces a relation with the same schema and the same
structural features that matter to the evaluation:

* heavily overlapping contract intervals across employees, so that ungrouped
  ITA (queries E1–E3) produces a result with no gaps and ``cmin = 1``;
* several contract periods per employee with occasional breaks and salary
  raises, so that grouping by employee and department (query E4) yields an
  ITA result *larger* than the argument relation with very many small
  aggregation groups.
"""

from __future__ import annotations

import random
from typing import List

from ..temporal import Interval, TemporalRelation, TemporalSchema

DEPARTMENTS = (
    "development", "marketing", "sales", "finance", "hr",
    "production", "research", "support", "quality", "logistics",
)
TITLES = ("engineer", "senior engineer", "staff", "manager", "assistant")

COLUMNS = ("emp_no", "sex", "dept", "title", "salary")


def generate_etds(
    employees: int = 2000,
    months: int = 240,
    seed: int = 42,
) -> TemporalRelation:
    """Generate an ETDS-like relation.

    Parameters
    ----------
    employees:
        Number of distinct employees; each contributes 1–6 contract records,
        so the relation has roughly ``3.5 × employees`` tuples.
    months:
        Length of the simulated time line in months (chronons).
    seed:
        Seed of the pseudo-random generator; identical seeds reproduce
        identical relations.
    """
    if employees < 1 or months < 12:
        raise ValueError("need at least 1 employee and 12 months")
    rng = random.Random(seed)
    schema = TemporalSchema(COLUMNS)
    relation = TemporalRelation(schema)
    for emp_no in range(1, employees + 1):
        sex = rng.choice(("M", "F"))
        dept = rng.choice(DEPARTMENTS)
        title_index = 0
        salary = float(rng.randrange(20, 60) * 100)
        start = rng.randrange(1, max(months - 24, 2))
        contracts = rng.randrange(1, 7)
        for _ in range(contracts):
            duration = rng.randrange(6, 49)
            end = min(start + duration - 1, months)
            relation.append(
                (emp_no, sex, dept, TITLES[title_index], salary),
                Interval(start, end),
            )
            if end >= months:
                break
            # Occasionally switch department, get promoted, and take a break.
            if rng.random() < 0.15:
                dept = rng.choice(DEPARTMENTS)
            if rng.random() < 0.3 and title_index < len(TITLES) - 1:
                title_index += 1
            salary *= 1.0 + rng.uniform(0.0, 0.15)
            salary = float(round(salary, 2))
            gap = rng.randrange(0, 7) if rng.random() < 0.2 else 0
            start = end + 1 + gap
            if start > months:
                break
    return relation


def etds_queries() -> List[dict]:
    """Query catalogue over the ETDS relation (Table 1(a)).

    Each entry contains the query name, grouping attributes and aggregate
    functions; the caller supplies the relation (so its size can be scaled).
    """
    return [
        {"name": "E1", "group_by": (), "aggregates": {"agg_salary": ("avg", "salary")}},
        {"name": "E2", "group_by": (), "aggregates": {"agg_salary": ("max", "salary")}},
        {"name": "E3", "group_by": (), "aggregates": {"agg_salary": ("sum", "salary")}},
        {
            "name": "E4",
            "group_by": ("emp_no", "dept"),
            "aggregates": {"agg_salary": ("avg", "salary")},
        },
    ]
