"""Synthetic substitute for the University of Arizona *Incumbents* data set.

The paper's Incumbents relation records the change of employee salaries over
time: 83 857 tuples with a project identifier, a department identifier, a
salary and a month validity interval.  Its ITA results (queries I1–I3,
grouped by department and project) contain 16 144 tuples spread over 131
maximal runs, i.e. many aggregation groups and temporal gaps — exactly the
structure that activates the DP pruning and the greedy gap criterion.

The generator reproduces that structure: a configurable number of
(department, project) pairs, each with a population of incumbents whose
salaries change every few months, with project lifetimes that leave gaps on
the time line.
"""

from __future__ import annotations

import random

from ..temporal import Interval, TemporalRelation, TemporalSchema

COLUMNS = ("dept", "proj", "salary")


def generate_incumbents(
    departments: int = 12,
    projects_per_department: int = 6,
    incumbents_per_project: int = 20,
    months: int = 360,
    seed: int = 7,
) -> TemporalRelation:
    """Generate an Incumbents-like relation.

    Every (department, project) pair is active over one or two windows of the
    time line (leaving gaps), and each incumbent working on the project holds
    a salary that is revised every 6–24 months.  Default parameters give
    roughly 10 000 argument tuples; scale the counts up or down as needed.
    """
    if months < 24:
        raise ValueError("need at least 24 months")
    rng = random.Random(seed)
    schema = TemporalSchema(COLUMNS)
    relation = TemporalRelation(schema)
    for dept_index in range(departments):
        dept = f"D{dept_index:03d}"
        for proj_index in range(projects_per_department):
            proj = f"P{dept_index:03d}-{proj_index:02d}"
            for window_start, window_end in _activity_windows(rng, months):
                for _ in range(max(incumbents_per_project // 2, 1)):
                    _add_incumbent(
                        relation, rng, dept, proj, window_start, window_end
                    )
    return relation


def _activity_windows(rng: random.Random, months: int):
    """One or two activity windows of a project, separated by a gap."""
    first_start = rng.randrange(1, months // 3)
    first_end = first_start + rng.randrange(18, months // 2)
    windows = [(first_start, min(first_end, months))]
    if rng.random() < 0.5 and first_end + 12 < months:
        second_start = first_end + rng.randrange(6, 24)
        second_end = second_start + rng.randrange(12, months // 3)
        if second_start < months:
            windows.append((second_start, min(second_end, months)))
    return windows


def _add_incumbent(
    relation: TemporalRelation,
    rng: random.Random,
    dept: str,
    proj: str,
    window_start: int,
    window_end: int,
) -> None:
    salary = float(rng.randrange(25, 90) * 100)
    start = rng.randrange(window_start, window_end)
    while start <= window_end:
        duration = rng.randrange(6, 25)
        end = min(start + duration - 1, window_end)
        relation.append((dept, proj, salary), Interval(start, end))
        salary = float(round(salary * (1.0 + rng.uniform(0.0, 0.08)), 2))
        start = end + 1


def incumbents_queries():
    """Query catalogue over the Incumbents relation (Table 1(b))."""
    return [
        {
            "name": "I1",
            "group_by": ("dept", "proj"),
            "aggregates": {"agg_salary": ("avg", "salary")},
        },
        {
            "name": "I2",
            "group_by": ("dept", "proj"),
            "aggregates": {"agg_salary": ("max", "salary")},
        },
        {
            "name": "I3",
            "group_by": ("dept", "proj"),
            "aggregates": {"agg_salary": ("sum", "salary")},
        },
    ]
