"""Synthetic datasets for the large-scale experiments.

The paper generates a synthetic relation with 10 million tuples, one grouping
attribute and 10 uniformly distributed aggregate attributes, and issues two
queries over it: ``S1`` without grouping (no gaps, ``cmin = 1``) and ``S2``
with 50 000 groups of 200 tuples each (Table 1(d)).  These generators build
arbitrarily sized equivalents directly as *sequential* relations, so they can
be fed straight into the PTA merging step just like the paper feeds the
pre-computed ITA results.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from ..core.merge import AggregateSegment
from ..temporal import Interval, TemporalRelation, TemporalSchema


def synthetic_sequential_segments(
    size: int,
    dimensions: int = 10,
    seed: int = 0,
    value_range: tuple[float, float] = (0.0, 1000.0),
) -> List[AggregateSegment]:
    """Sequential segments without groups or gaps (query ``S1``).

    Every segment covers a unit interval and carries ``dimensions`` uniform
    aggregate values, so ``cmin = 1``.
    """
    if size < 0:
        raise ValueError(f"size must be non-negative, got {size}")
    rng = random.Random(seed)
    low, high = value_range
    return [
        AggregateSegment(
            (),
            tuple(rng.uniform(low, high) for _ in range(dimensions)),
            Interval(position + 1, position + 1),
        )
        for position in range(size)
    ]


def synthetic_grouped_segments(
    groups: int,
    tuples_per_group: int,
    dimensions: int = 10,
    seed: int = 0,
    value_range: tuple[float, float] = (0.0, 1000.0),
) -> List[AggregateSegment]:
    """Sequential segments with aggregation groups (query ``S2``).

    Each group forms one maximal adjacent run, so ``cmin = groups`` and every
    group boundary is a pruning opportunity for the DP algorithms.
    """
    rng = random.Random(seed)
    low, high = value_range
    segments: List[AggregateSegment] = []
    for group_index in range(groups):
        group = (f"g{group_index:06d}",)
        for position in range(tuples_per_group):
            segments.append(
                AggregateSegment(
                    group,
                    tuple(rng.uniform(low, high) for _ in range(dimensions)),
                    Interval(position + 1, position + 1),
                )
            )
    return segments


def synthetic_relation(
    size: int,
    dimensions: int = 10,
    groups: int = 1,
    seed: int = 0,
    max_interval_length: int = 5,
    value_range: tuple[float, float] = (0.0, 1000.0),
) -> TemporalRelation:
    """A raw (non-sequential) synthetic temporal relation.

    Unlike the segment generators above, the produced relation contains
    overlapping validity intervals and therefore needs the full ITA step;
    used by the integration tests and the end-to-end examples.
    """
    if size < 0:
        raise ValueError(f"size must be non-negative, got {size}")
    rng = random.Random(seed)
    low, high = value_range
    columns = ("grp",) + tuple(f"v{d}" for d in range(dimensions))
    schema = TemporalSchema(columns)
    relation = TemporalRelation(schema)
    horizon = max(size // max(groups, 1), 1) * 2
    for _ in range(size):
        group = f"g{rng.randrange(groups):04d}"
        start = rng.randrange(1, horizon + 1)
        length = rng.randrange(1, max_interval_length + 1)
        values = tuple(rng.uniform(low, high) for _ in range(dimensions))
        relation.append((group,) + values, Interval(start, start + length - 1))
    return relation


def value_columns(dimensions: int) -> Sequence[str]:
    """Column names used by :func:`synthetic_relation` for aggregate values."""
    return tuple(f"v{d}" for d in range(dimensions))
