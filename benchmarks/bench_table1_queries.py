"""Table 1: the catalogue of ITA queries used throughout the evaluation.

Prints, for every query of the catalogue, its grouping attributes, aggregate
functions, ITA result size and ``cmin`` — the same columns the paper's
Table 1 reports — and times the ITA evaluation of the Incumbents-style query
I1 as the representative aggregation workload.
"""

from repro import ita
from repro.datasets import generate_incumbents
from repro.evaluation import format_table

from paperbench import workload_scale, catalogue, publish


def bench_table1_queries(benchmark):
    cases = catalogue()
    rows = [
        [
            case.name,
            ", ".join(case.group_columns) or "-",
            ", ".join(case.value_columns),
            case.ita_size,
            case.cmin,
            case.dimensions,
        ]
        for case in cases.values()
    ]
    publish(
        "table1_queries",
        format_table(
            ("Query", "Grouping", "Aggregates", "ITA size", "cmin", "dims"),
            rows,
            title=f"Table 1 — ITA query catalogue (scale={workload_scale()!r})",
        ),
    )

    parameters = {
        "tiny": dict(departments=3, projects_per_department=3,
                     incumbents_per_project=6, months=120),
        "small": dict(departments=8, projects_per_department=5,
                      incumbents_per_project=12, months=240),
        "paper": dict(departments=20, projects_per_department=10,
                      incumbents_per_project=40, months=480),
    }[workload_scale()]
    relation = generate_incumbents(seed=7, **parameters)
    result = benchmark(
        ita, relation, ["dept", "proj"], {"avg_salary": ("avg", "salary")}
    )

    assert len(result) > 0
    assert set(cases) == {"E1", "E2", "E3", "E4", "I1", "I2", "I3", "T1", "T2", "T3"}
