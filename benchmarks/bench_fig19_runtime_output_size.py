"""Figure 19: merging-phase runtime as a function of the output size.

On grouped synthetic data the output size bound ``c`` is swept while the
input size stays fixed, comparing the plain DP scheme with PTAc.

Expected shape (paper): runtime grows roughly linearly with ``c`` for both
algorithms, PTAc stays well below the plain DP, and PTAc is not overly
sensitive to ``c`` because the group boundaries dominate the pruning.
"""

from repro.core.dp import reduce_to_size
from repro.datasets import synthetic_grouped_segments
from repro.evaluation import format_series, timed

from paperbench import workload_scale, publish

PARAMETERS = {
    "tiny": dict(groups=40, per_group=10, dimensions=4),
    "small": dict(groups=200, per_group=10, dimensions=10),
    "paper": dict(groups=200, per_group=10, dimensions=10),
}


def bench_fig19_runtime_output_size(benchmark):
    config = PARAMETERS[workload_scale()]
    segments = synthetic_grouped_segments(
        config["groups"], config["per_group"], config["dimensions"], seed=41
    )
    n = len(segments)
    output_sizes = sorted({
        max(int(n * fraction), config["groups"])
        for fraction in (0.1, 0.25, 0.5, 0.75, 1.0)
    })

    series = {"DP": [], "PTAc": [], "PTAc-np": []}
    for output_size in output_sizes:
        series["DP"].append(
            (output_size, round(timed(reduce_to_size, segments, output_size,
                                      optimized=False).seconds, 4))
        )
        series["PTAc"].append(
            (output_size, round(timed(reduce_to_size, segments, output_size,
                                      optimized=True).seconds, 4))
        )
        series["PTAc-np"].append(
            (output_size, round(timed(reduce_to_size, segments, output_size,
                                      optimized=True,
                                      backend="numpy").seconds, 4))
        )

    publish(
        "fig19_runtime_output_size",
        format_series(series, "output size c (tuples)", "merging time (s)",
                      title="Fig. 19 — runtime vs. output size "
                            "(grouped synthetic data)"),
    )

    benchmark(reduce_to_size, segments, output_sizes[len(output_sizes) // 2])

    # Shape assertion: PTAc never slower than the plain DP on gapped data.
    for (_, dp_time), (_, ptac_time) in zip(series["DP"], series["PTAc"]):
        assert ptac_time <= dp_time * 1.5 + 0.05
