"""Figure 17: impact of the read-ahead parameter δ on the greedy algorithms.

For δ ∈ {0, 1, 2, ∞} the error of gPTAc (and gPTAε) is divided by the error
of the exact DP solution at the same size (respectively the same error
bound), averaged over a grid of bounds per query.

Expected shape (paper): δ = 0 gives the worst ratios, δ = ∞ the best possible
greedy result, and already δ = 1 is practically indistinguishable from δ = ∞.
"""

from repro.core import (
    DELTA_INFINITY,
    greedy_reduce_to_error,
    greedy_reduce_to_size,
    max_error,
    optimal_error_curve,
    reduce_to_error,
)
from repro.evaluation import format_table, summarize_error_ratios

from paperbench import catalogue, publish

DELTAS = (0, 1, 2, DELTA_INFINITY)
QUERIES = ("E1", "E2", "E3", "I1", "I2", "I3", "T1", "T2", "T3")


def _delta_label(delta):
    return "inf" if delta == DELTA_INFINITY else str(delta)


def _size_ratios(case, delta):
    sizes = sorted({max(int(round(case.ita_size * f)), case.cmin)
                    for f in (0.05, 0.1, 0.25, 0.5)})
    optimal = optimal_error_curve(case.segments, sizes)
    ratios = []
    for size in sizes:
        base = optimal.get(size)
        if not base or base == float("inf"):
            continue
        result = greedy_reduce_to_size(iter(case.segments), size, delta=delta)
        ratios.append(result.error / base)
    return ratios


def _error_ratios(case, delta):
    emax = max_error(case.segments)
    ratios = []
    for epsilon in (0.01, 0.05, 0.2):
        optimal = reduce_to_error(case.segments, epsilon)
        greedy = greedy_reduce_to_error(
            iter(case.segments), epsilon, delta=delta,
            input_size_estimate=case.ita_size, max_error_estimate=emax,
        )
        if optimal.error > 0:
            ratios.append(greedy.error / optimal.error)
        # When both reach the bound losslessly compare the achieved sizes.
        elif optimal.size:
            ratios.append(greedy.size / optimal.size)
    return ratios


def bench_fig17_delta_impact(benchmark):
    cases = catalogue()
    names = [name for name in QUERIES if name in cases]

    size_rows, error_rows = [], []
    averaged = {}
    for name in names:
        case = cases[name]
        size_row, error_row = [name], [name]
        for delta in DELTAS:
            size_summary = summarize_error_ratios(_size_ratios(case, delta))
            error_summary = summarize_error_ratios(_error_ratios(case, delta))
            size_row.append(f"{size_summary.mean_ratio:.3f}")
            error_row.append(f"{error_summary.mean_ratio:.3f}")
            averaged.setdefault(delta, []).append(size_summary.mean_ratio)
        size_rows.append(size_row)
        error_rows.append(error_row)

    headers = ("Query",) + tuple(f"delta={_delta_label(d)}" for d in DELTAS)
    publish(
        "fig17a_delta_gptac",
        format_table(headers, size_rows,
                     title="Fig. 17(a) — error ratio of gPTAc vs. PTAc"),
    )
    publish(
        "fig17b_delta_gptaeps",
        format_table(headers, error_rows,
                     title="Fig. 17(b) — error ratio of gPTAeps vs. PTAeps"),
    )

    # Representative timing: gPTAc with delta=1 on T2.
    t2 = cases["T2"]
    benchmark(
        greedy_reduce_to_size, list(t2.segments), max(t2.ita_size // 10, 1), 1
    )

    # Shape assertion: averaging over the queries, delta=infinity is at least
    # as good as delta=0 (the paper's "worst result at delta=0").
    mean = lambda values: sum(values) / len(values)  # noqa: E731
    assert mean(averaged[DELTA_INFINITY]) <= mean(averaged[0]) + 1e-6
