"""Micro-benchmark: pure-Python reference kernels vs. NumPy kernels.

Times the hot paths that ``backend="numpy"`` vectorizes and prints a speedup
table:

* the DP error-matrix inner loop (the split-point scan of Section 5.1) on a
  full row of the plain DP scheme — the quadratic hot spot of ``PTAc`` —
  where the batched run-error evaluation plus ``np.argmin`` replaces the
  per-candidate Python loop (expected well above the 5x target at n = 10k);
* the same recurrence on grouped data, where gap pruning keeps the candidate
  ranges short (vectorization pays much less — kept in the table for
  honesty);
* greedy merging (GMS) over a materialised input, where the NumPy heap's
  batched insert computes all initial merge keys vectorized;
* the online gPTAc loop under the fused batch-activation policy: the array
  heap stages whole chunks of incoming tuples (bulk column writes plus
  vectorized raw merge keys) and runs the whole activation-plus-drain loop
  inside one heap kernel (``activate_staged_all``), bulk-activating the
  spans where the merge policy provably cannot fire and falling back to
  per-tuple interleaving only for the interacting remainder — bit-identical
  to tuple-at-a-time insertion.  This turned the array backend's one-time
  ~1.2x online edge into >=2x at n >= 10k (asserted below).

Scale is controlled by ``REPRO_BENCH_SCALE``: the default ``tiny`` already
uses the paper-sized n = 10 000 input for the DP row (about a minute of
wall clock, almost all of it spent in the pure-Python baseline); ``smoke``
shrinks to n = 2 000 for CI.
"""

from repro.core.dp import _ErrorMatrix
from repro.core.greedy import gms_reduce_to_size, greedy_reduce_to_size
from repro.datasets import (
    synthetic_grouped_segments,
    synthetic_sequential_segments,
)
from repro.evaluation import best_of, format_table, speedup

from paperbench import publish, workload_scale

SIZES = {"smoke": 2_000, "tiny": 10_000, "small": 10_000, "paper": 20_000}
DP_DIMENSIONS = 1
HEAP_DIMENSIONS = 10


def _dp_rows(segments, backend, optimized, rows=2):
    matrix = _ErrorMatrix(segments, None, optimized=optimized, backend=backend)
    for _ in range(rows):
        matrix.fill_next_row()
    return matrix


def bench_kernels(benchmark):
    scale = workload_scale()
    n = SIZES.get(scale, SIZES["tiny"])
    sequential = synthetic_sequential_segments(n, DP_DIMENSIONS, seed=81)
    grouped = synthetic_grouped_segments(n // 20, 20, DP_DIMENSIONS, seed=82)
    heap_input = synthetic_sequential_segments(n, HEAP_DIMENSIONS, seed=83)

    measurements = []

    # The quadratic DP split-point scan: one full row of the plain scheme.
    # The Python baseline is run once (it is the slow side by construction);
    # the NumPy side keeps the best of three.
    python_run = best_of(
        _dp_rows, sequential, "python", False, repeats=1
    )
    numpy_run = best_of(_dp_rows, sequential, "numpy", False, repeats=3)
    dp_speedup = speedup(python_run.seconds, numpy_run.seconds)
    measurements.append(
        ("DP inner loop (plain, no gaps)", n, python_run.seconds,
         numpy_run.seconds, dp_speedup)
    )

    # Gap-pruned recurrence: candidate ranges are short, so there is little
    # left to vectorize.
    python_run = best_of(_dp_rows, grouped, "python", True, repeats=3)
    numpy_run = best_of(_dp_rows, grouped, "numpy", True, repeats=3)
    measurements.append(
        ("DP inner loop (PTAc, grouped)", len(grouped), python_run.seconds,
         numpy_run.seconds, speedup(python_run.seconds, numpy_run.seconds))
    )

    # Batch greedy merging: heap construction is vectorized via insert_batch.
    python_run = best_of(
        gms_reduce_to_size, heap_input, n // 10, repeats=3
    )
    numpy_run = best_of(
        gms_reduce_to_size, heap_input, n // 10, backend="numpy", repeats=3
    )
    measurements.append(
        (f"GMS reduce (p={HEAP_DIMENSIONS})", n, python_run.seconds,
         numpy_run.seconds, speedup(python_run.seconds, numpy_run.seconds))
    )

    # Online gPTAc: the numpy backend consumes the stream through staged
    # chunks (the batched online merge policy) — identical reduction,
    # amortised per-insert overhead.
    python_run = best_of(
        greedy_reduce_to_size, list(heap_input), n // 10, 1, repeats=3
    )
    numpy_run = best_of(
        greedy_reduce_to_size, list(heap_input), n // 10, 1,
        backend="numpy", repeats=3,
    )
    online_speedup = speedup(python_run.seconds, numpy_run.seconds)
    measurements.append(
        (f"gPTAc online (p={HEAP_DIMENSIONS})", n, python_run.seconds,
         numpy_run.seconds, online_speedup)
    )

    headers = ("kernel", "n", "python (s)", "numpy (s)", "speedup")
    rows = [
        (name, size, f"{py:.4f}", f"{np_:.4f}", f"{factor:.1f}x")
        for name, size, py, np_, factor in measurements
    ]
    publish("kernel_speedups", format_table(headers, rows,
                                            title="python vs numpy backends"))

    benchmark(_dp_rows, sequential, "numpy", False)

    # The vectorized split-point scan is the whole point of the NumPy
    # backend: it must clear the 5x bar on the quadratic hot path.
    assert dp_speedup >= 5.0, (
        f"expected >=5x speedup for the vectorized DP inner loop, "
        f"got {dp_speedup:.1f}x"
    )

    # The fused batch-activation path must keep the online numpy loop at
    # least twice as fast as the python heap at paper scale — the PR 5
    # acceptance bar (measured ~2.3x; the old per-tuple activation sat at
    # ~1.2x).  (The smoke scale is too small for a stable ratio and only
    # guards against import rot.)
    if n >= 10_000:
        assert online_speedup >= 2.0, (
            f"numpy online path fell below 2x the python heap at n={n}: "
            f"{online_speedup:.2f}x (python {python_run.seconds:.3f}s, "
            f"numpy {numpy_run.seconds:.3f}s)"
        )


if __name__ == "__main__":
    class _NoBenchmark:
        def __call__(self, function, *args, **kwargs):
            return function(*args, **kwargs)

    bench_kernels(_NoBenchmark())
