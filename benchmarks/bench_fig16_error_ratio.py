"""Figure 16: average error ratio of the approximation techniques per query.

For every query of the catalogue and a range of size bounds, each technique's
error is divided by the optimal (PTAc) error at the same size; the figure
reports the average ratio per query.  Techniques that cannot handle
aggregation groups or temporal gaps (APCA, DWT, PAA, Chebyshev) are marked
not applicable for the grouped queries, exactly as in the paper.

Expected shape (paper): gPTAc consistently has the best (lowest) ratio, ATC
is second but less consistent, the time-series techniques trail far behind
on temporal data.
"""

import numpy as np

from repro.baselines import (
    NotSeriesError,
    apca,
    atc_error_sweep,
    chebyshev_approximate,
    dwt_approximate_to_size,
    exponential_bounds,
    paa,
    series_from_segments,
)
from repro.core import gms_reduce_to_size, max_error, optimal_error_curve
from repro.evaluation import format_table, summarize_error_ratios

from paperbench import catalogue, publish

TECHNIQUES = ("gPTAc", "ATC", "APCA", "DWT", "PAA", "Chebyshev")


def _size_grid(case):
    n = case.ita_size
    fractions = (0.05, 0.1, 0.2, 0.4, 0.6)
    return sorted({max(int(round(n * f)), case.cmin) for f in fractions})


def _ratios_for_case(case):
    segments = case.segments
    sizes = _size_grid(case)
    optimal = optimal_error_curve(segments, sizes)
    try:
        series = np.asarray(series_from_segments(segments))
    except NotSeriesError:
        series = None
    atc_by_size = atc_error_sweep(
        segments, exponential_bounds(max_error(segments), count=40, decay=0.75)
    )

    ratios = {name: [] for name in TECHNIQUES}
    for size in sizes:
        base = optimal.get(size)
        if base is None or base <= 0 or base == float("inf"):
            continue
        ratios["gPTAc"].append(gms_reduce_to_size(segments, size).error / base)
        atc_candidates = [r for s, r in atc_by_size.items() if s <= size]
        if atc_candidates:
            ratios["ATC"].append(
                min(result.error for result in atc_candidates) / base
            )
        if series is not None:
            ratios["APCA"].append(apca(series, size).error / base)
            ratios["DWT"].append(dwt_approximate_to_size(series, size).error / base)
            ratios["PAA"].append(paa(series, size).error / base)
            ratios["Chebyshev"].append(
                chebyshev_approximate(series, size).error / base
            )
    return ratios


def bench_fig16_error_ratio(benchmark):
    cases = catalogue()
    query_names = [
        name for name in ("E1", "E2", "E3", "E4", "I1", "I2", "I3",
                          "T1", "T2", "T3")
        if name in cases
    ]

    rows = []
    collected = {}
    for name in query_names:
        ratios = _ratios_for_case(cases[name])
        collected[name] = ratios
        row = [name]
        for technique in TECHNIQUES:
            summary = summarize_error_ratios(ratios[technique])
            row.append(
                "n/a" if summary.count == 0
                else f"{summary.mean_ratio:.2f}±{summary.standard_error:.2f}"
            )
        rows.append(row)

    publish(
        "fig16_error_ratio",
        format_table(("Query",) + TECHNIQUES, rows,
                     title="Fig. 16 — average error ratio vs. PTAc "
                           "(mean ± standard error; logscale in the paper)"),
    )

    # Representative timing: the greedy reduction of E1 at 10% size.
    e1 = cases["E1"]
    benchmark(gms_reduce_to_size, e1.segments, max(e1.ita_size // 10, e1.cmin))

    # Shape assertion: gPTAc has the lowest average ratio on every
    # single-group query where the series techniques are applicable.
    for name, ratios in collected.items():
        greedy_summary = summarize_error_ratios(ratios["gPTAc"])
        for technique in ("APCA", "DWT", "PAA"):
            other = summarize_error_ratios(ratios[technique])
            if other.count:
                assert greedy_summary.mean_ratio <= other.mean_ratio + 1e-6, (
                    f"{technique} unexpectedly beats gPTAc on {name}"
                )
