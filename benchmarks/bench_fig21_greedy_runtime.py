"""Figure 21: runtime of the greedy algorithms vs. other linear methods.

Sweeps the input size on gap-free synthetic data and measures the merging
time of gPTAc (c = 10 % of the input, δ = 1), gPTAε (ε = 0.65, δ = 1), ATC,
APCA, DWT and PAA.

Expected shape (paper): all methods scale roughly linearly; gPTAε is the
slowest because of its larger heap, gPTAc is comparable to the other
linear-time approximation techniques.
"""

import numpy as np

from repro.baselines import apca, atc, dwt_approximate, paa, series_from_segments
from repro.core import greedy_reduce_to_size, max_error
from repro.datasets import synthetic_sequential_segments
from repro.evaluation import format_series, timed
from repro.pipeline import compress

from paperbench import workload_scale, publish

SIZES = {
    "tiny": (2000, 4000, 8000),
    "small": (20000, 50000, 100000),
    "paper": (100000, 300000, 1000000),
}


def bench_fig21_greedy_runtime(benchmark):
    sizes = SIZES[workload_scale()]
    series = {name: [] for name in
              ("gPTAeps", "PAA", "ATC", "gPTAc", "APCA", "DWT")}

    for n in sizes:
        segments = synthetic_sequential_segments(n, dimensions=1, seed=61)
        point_series = np.asarray(series_from_segments(segments))
        output_size = max(n // 10, 1)
        emax = max_error(segments)
        local_bound = 0.01 * emax / n

        series["gPTAc"].append(
            (n, round(timed(
                compress, iter(segments), size=output_size, delta=1,
            ).seconds, 4))
        )
        series["gPTAeps"].append(
            (n, round(timed(
                compress, iter(segments), max_error=0.65, delta=1,
                input_size_estimate=n, max_error_estimate=emax,
            ).seconds, 4))
        )
        series["ATC"].append(
            (n, round(timed(atc, segments, local_bound).seconds, 4))
        )
        series["PAA"].append(
            (n, round(timed(paa, point_series, output_size).seconds, 4))
        )
        series["APCA"].append(
            (n, round(timed(apca, point_series, output_size).seconds, 4))
        )
        series["DWT"].append(
            (n, round(timed(dwt_approximate, point_series,
                            output_size).seconds, 4))
        )

    publish(
        "fig21_greedy_runtime",
        format_series(series, "input size (tuples)", "time (s)",
                      title="Fig. 21 — greedy algorithms vs. other linear "
                            "approximation methods"),
    )

    segments = synthetic_sequential_segments(sizes[0], dimensions=1, seed=61)
    benchmark(greedy_reduce_to_size, list(segments), max(sizes[0] // 10, 1), 1)

    # Shape assertion: gPTAeps is the slowest of the greedy pair, as reported.
    assert series["gPTAeps"][-1][1] >= series["gPTAc"][-1][1] * 0.8
