"""Figure 1: the running example (proj relation, STA, ITA and PTA results).

Regenerates the four sub-tables of Fig. 1 and times the full PTA evaluation
of the size-4 query over the ``proj`` relation.
"""

from repro import Interval, TemporalRelation, ita, pta, sta
from repro.evaluation import format_table

from paperbench import publish


def _proj_relation() -> TemporalRelation:
    return TemporalRelation.from_records(
        columns=("empl", "proj", "sal"),
        records=[
            ("John", "A", 800, Interval(1, 4)),
            ("Ann", "A", 400, Interval(3, 6)),
            ("Tom", "A", 300, Interval(4, 7)),
            ("John", "B", 500, Interval(4, 5)),
            ("John", "B", 500, Interval(7, 8)),
        ],
    )


def _rows(relation):
    return [
        [*row.values, f"[{row.interval.start}, {row.interval.end}]"]
        for row in relation
    ]


def bench_fig01_running_example(benchmark):
    proj = _proj_relation()
    aggregates = {"avg_sal": ("avg", "sal")}

    sta_result = sta(proj, ["proj"], aggregates, span_length=4)
    ita_result = ita(proj, ["proj"], aggregates)
    pta_result = benchmark(pta, proj, ["proj"], aggregates, size=4)

    blocks = [
        format_table(("Empl", "Proj", "Sal", "T"), _rows(proj),
                     title="(a) proj relation"),
        format_table(("Proj", "AvgSal", "T"), _rows(sta_result),
                     title="(b) STA result (trimesters)"),
        format_table(("Proj", "AvgSal", "T"), _rows(ita_result),
                     title="(c) ITA result"),
        format_table(("Proj", "AvgSal", "T"), _rows(pta_result),
                     title="(d) PTA result of size 4"),
    ]
    publish("fig01_running_example", "\n\n".join(blocks))

    assert len(ita_result) == 7
    assert len(pta_result) == 4
