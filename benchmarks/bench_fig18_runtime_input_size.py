"""Figure 18: merging-phase runtime as a function of the input size.

Compares the plain DP scheme (no gap pruning) with the optimized PTAc
algorithm on synthetic data (a) without gaps (query S1) and (b) with
aggregation groups (query S2).

Expected shape (paper): without gaps the two curves coincide and grow
quadratically; with groups PTAc is far faster and scales almost linearly
because every group boundary prunes the split-point search.  The PTAc-np
series runs the same optimized algorithm on the vectorized NumPy kernels
(``backend="numpy"``), which flattens the quadratic no-gap curve.
"""

from repro.core.dp import reduce_to_size
from repro.datasets import synthetic_grouped_segments, synthetic_sequential_segments
from repro.evaluation import format_series, timed

from paperbench import workload_scale, publish

SIZES = {
    "tiny": (200, 400, 600, 800),
    "small": (500, 1500, 3000, 4500, 6500),
    "paper": (500, 1500, 3000, 4500, 6500),
}
OUTPUT_FRACTION = {"tiny": 0.1, "small": 0.08, "paper": 0.08}
DIMENSIONS = {"tiny": 4, "small": 10, "paper": 10}


def bench_fig18_runtime_input_size(benchmark):
    scale = workload_scale()
    sizes = SIZES[scale]
    dimensions = DIMENSIONS[scale]
    output_size = max(int(sizes[0] * OUTPUT_FRACTION[scale]), 10)
    groups = max(sizes[0] // 20, 10)

    no_gaps = {"DP": [], "PTAc": [], "PTAc-np": []}
    with_gaps = {"DP": [], "PTAc": [], "PTAc-np": []}
    for size in sizes:
        flat = synthetic_sequential_segments(size, dimensions, seed=31)
        grouped = synthetic_grouped_segments(
            groups, size // groups, dimensions, seed=32
        )
        no_gaps["DP"].append(
            (size, round(timed(reduce_to_size, flat, output_size,
                               optimized=False).seconds, 4))
        )
        no_gaps["PTAc"].append(
            (size, round(timed(reduce_to_size, flat, output_size,
                               optimized=True).seconds, 4))
        )
        no_gaps["PTAc-np"].append(
            (size, round(timed(reduce_to_size, flat, output_size,
                               optimized=True, backend="numpy").seconds, 4))
        )
        with_gaps["DP"].append(
            (size, round(timed(reduce_to_size, grouped, max(output_size, groups),
                               optimized=False).seconds, 4))
        )
        with_gaps["PTAc"].append(
            (size, round(timed(reduce_to_size, grouped, max(output_size, groups),
                               optimized=True).seconds, 4))
        )
        with_gaps["PTAc-np"].append(
            (size, round(timed(reduce_to_size, grouped, max(output_size, groups),
                               optimized=True, backend="numpy").seconds, 4))
        )

    publish(
        "fig18a_runtime_no_gaps",
        format_series(no_gaps, "input size (tuples)", "merging time (s)",
                      title="Fig. 18(a) — synthetic data without gaps (S1)"),
    )
    publish(
        "fig18b_runtime_with_gaps",
        format_series(with_gaps, "input size (tuples)", "merging time (s)",
                      title="Fig. 18(b) — synthetic data with groups (S2)"),
    )

    # Representative timing: PTAc on the largest gapped input.
    largest = synthetic_grouped_segments(
        groups, sizes[-1] // groups, dimensions, seed=32
    )
    benchmark(reduce_to_size, largest, max(output_size, groups))

    # Shape assertions: with gaps PTAc beats the plain DP at the largest size;
    # without gaps the two are comparable (within 3x of each other).
    assert with_gaps["PTAc"][-1][1] <= with_gaps["DP"][-1][1]
    dp_time = no_gaps["DP"][-1][1]
    ptac_time = no_gaps["PTAc"][-1][1]
    assert ptac_time <= dp_time * 3 + 0.05
