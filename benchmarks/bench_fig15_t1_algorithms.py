"""Figure 15: reduction error of the different algorithms on query T1.

For a range of size bounds the chaotic series T1 is reduced with the exact
DP algorithm (PTAc), the greedy algorithm (gPTAc with δ=∞, i.e. GMS), ATC,
APCA, DWT and PAA; part (a) reports the absolute error, part (b) the ratio
against the PTAc optimum.

Expected shape (paper): gPTAc hugs the optimal curve (ratio close to 1,
bounded by Theorem 1), ATC and APCA lag behind, DWT and PAA are
significantly worse.
"""

import numpy as np

from repro.baselines import (
    apca,
    atc_error_sweep,
    dwt_approximate_to_size,
    exponential_bounds,
    paa,
    series_from_segments,
)
from repro.core import (
    gms_reduce_to_size,
    max_error,
    optimal_error_curve,
    reduce_to_size,
)
from repro.evaluation import format_series, reduction_ratio

from paperbench import catalogue, publish


def bench_fig15_t1_algorithms(benchmark):
    case = catalogue()["T1"]
    segments = case.segments
    series = np.asarray(series_from_segments(segments))
    n = len(segments)

    sizes = sorted({max(int(round(n * fraction)), 1)
                    for fraction in (0.02, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8)})
    optimal_errors = optimal_error_curve(segments, sizes)
    atc_by_size = atc_error_sweep(
        segments, exponential_bounds(max_error(segments), count=60, decay=0.8)
    )

    error_series = {name: [] for name in
                    ("PTAc", "gPTAc", "ATC", "APCA", "DWT", "PAA")}
    ratio_series = {name: [] for name in ("gPTAc", "ATC", "APCA")}
    maximum = max_error(segments)

    for size in sizes:
        ratio = round(reduction_ratio(n, size), 2)
        optimal = optimal_errors[size]
        greedy = gms_reduce_to_size(segments, size).error
        atc_result = min(
            (result for s, result in atc_by_size.items() if s <= size),
            key=lambda result: result.error,
            default=None,
        )
        measurements = {
            "PTAc": optimal,
            "gPTAc": greedy,
            "ATC": atc_result.error if atc_result else float("nan"),
            "APCA": apca(series, size).error,
            "DWT": dwt_approximate_to_size(series, size).error,
            "PAA": paa(series, size).error,
        }
        for name, error in measurements.items():
            normalized = 0.0 if maximum == 0 else 100.0 * error / maximum
            error_series[name].append((ratio, round(normalized, 3)))
        for name in ratio_series:
            if optimal > 0 and measurements[name] == measurements[name]:
                ratio_series[name].append(
                    (ratio, round(measurements[name] / optimal, 4))
                )

    publish(
        "fig15a_t1_errors",
        format_series(error_series, "reduction ratio (%)",
                      "error (% of SSE_max)",
                      title="Fig. 15(a) — reduction error on T1"),
    )
    publish(
        "fig15b_t1_error_ratio",
        format_series(ratio_series, "reduction ratio (%)",
                      "error ratio vs. PTAc",
                      title="Fig. 15(b) — error ratio on T1"),
    )

    # Representative timing: the exact DP reduction at the median size bound.
    benchmark(reduce_to_size, segments, sizes[len(sizes) // 2])

    # Shape assertions: the greedy algorithm is the closest to the optimum.
    for (_, greedy_ratio) in ratio_series["gPTAc"]:
        assert greedy_ratio >= 1.0 - 1e-9
    mean = lambda pairs: sum(v for _, v in pairs) / len(pairs)  # noqa: E731
    assert mean(ratio_series["gPTAc"]) <= mean(ratio_series["APCA"]) + 1e-9
