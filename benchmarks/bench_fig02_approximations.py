"""Figure 2: approximations of one time series by the different techniques.

The paper plots an ITA result over a small excerpt of the Incumbents data and
its approximation by DWT, DFT, Chebyshev polynomials, PAA, APCA, PTA and
gPTAc, annotating each with its total error.  This bench reproduces the table
of errors for the same budget of 10 coefficients / segments and times the
exact PTA reduction.

Expected shape (paper, Fig. 2): PTA and gPTAc are one to two orders of
magnitude more accurate than the non-adaptive techniques, with gPTAc very
close to PTA.
"""

import numpy as np

from repro.baselines import (
    apca,
    chebyshev_approximate,
    dft_approximate,
    dwt_approximate,
    paa,
    sax_transform,
    series_from_segments,
)
from repro.core import gms_reduce_to_size, reduce_to_size, segments_from_relation
from repro.datasets import generate_incumbents
from repro.evaluation import format_table

BUDGET = 10  # coefficients / segments, as in Fig. 2


def _incumbents_excerpt():
    """A single-group, gap-free ITA excerpt similar to the paper's Fig. 2 data."""
    from repro import ita

    relation = generate_incumbents(
        departments=1, projects_per_department=1,
        incumbents_per_project=30, months=200, seed=2,
    )
    result = ita(relation, [], {"avg_salary": ("avg", "salary")})
    segments = segments_from_relation(result, [], ["avg_salary"])
    # Keep the largest gap-free run so the series baselines are applicable.
    from repro.core import maximal_runs

    longest = max(maximal_runs(segments), key=len)
    return [segments[i] for i in longest]


def bench_fig02_approximations(benchmark):
    segments = _incumbents_excerpt()
    series = np.asarray(series_from_segments(segments))

    optimal = benchmark(reduce_to_size, segments, BUDGET)
    greedy = gms_reduce_to_size(segments, BUDGET)

    rows = [
        ["DWT", dwt_approximate(series, BUDGET).error],
        ["DFT", dft_approximate(series, BUDGET).error],
        ["Chebyshev", chebyshev_approximate(series, BUDGET).error],
        ["PAA", paa(series, BUDGET).error],
        ["APCA", apca(series, BUDGET).error],
        ["SAX (8 symbols)", sax_transform(series, BUDGET, 8).error],
        ["PTA (optimal)", optimal.error],
        ["gPTAc (greedy)", greedy.error],
    ]
    from paperbench import publish

    publish(
        "fig02_approximations",
        format_table(
            ("technique", f"total error ({BUDGET} coefficients/segments)"),
            rows,
            title=f"Fig. 2 — approximations of an Incumbents-style ITA series "
            f"(n={len(segments)})",
        ),
    )

    # Shape assertions from the paper: PTA is optimal, the greedy result is
    # close to it, and both beat the non-adaptive step-function baselines.
    assert optimal.error <= greedy.error + 1e-9
    assert optimal.error <= paa(series, BUDGET).error + 1e-9
    assert optimal.error <= apca(series, BUDGET).error + 1e-9
