"""Serving-layer benchmark: snapshot queries versus batch recompression.

The point of the serving layer is that answering a query from a cached
``summary()`` snapshot is orders of magnitude cheaper than the alternative
a server without it would face — re-running batch ``compress`` over the
key's accumulated history on every read.  This benchmark measures that gap
and keeps it honest across PRs:

* **cold query** — first read after the engine's index cache is dropped:
  the snapshot comes from the session's delta-patched, generation-cached
  column snapshot and only the query index is rebuilt (before PR 5 this
  cloned and finalized the whole live heap — ~28 ms at n=200k against
  ~0.3 ms now);
* **snapshot delta** — a genuinely cold snapshot at a *fresh* push
  generation (k new tuples since the last snapshot): the delta path
  (patch the mirror with the merge log, finalize the mirror, index the
  columns) against the clone+finalize oracle (clone the live heap,
  finalize, materialise segments, index them);
* **warm query** — subsequent reads at the same push generation: pure
  binary search + prefix-sum arithmetic on the cached index;
* **metrics disabled overhead** — the disarmed observability layer
  (``repro.obs``) on that warm path versus the pre-observability path
  reconstructed inline: one global read plus the unconditional cache
  counters must stay within 1.05x;
* **batch recompression** — ``compress`` over the same stream plus the
  same query, i.e. the no-serving-layer baseline;
* **wire codec** — encode/decode throughput of the binary segment
  format, plus the zero-copy column decode (``copy=False`` views over
  the payload, the cluster tier's receive path) against the copying
  decode;
* **durable push** — the same chunked ingest against a ``data_dir=``
  store (WAL append + fsync per push, periodic checkpoint demotion)
  versus the in-memory store: the price of durability per acknowledged
  push (must stay within 1.5x of memory);
* **group commit** — the same durable ingest in many small pushes with
  ``fsync_every=8`` (one fsync sweep per 8 acknowledged pushes,
  store-wide) versus ``fsync_every=1``: what amortising the fsync
  cadence buys on the ingest hot path;
* **quorum ack overhead** — the same chunked ingest replicated to a
  warm standby over a local socket with ``sync_replicas=1`` (every push
  acknowledgement waits for the standby's ack) versus the asynchronous
  stream: the price of the quorum machinery itself (must stay within
  1.5x);
* **recovery** — time to boot a ready-to-serve store from the surviving
  checkpoints + WAL (crash without ``close()``), versus batch
  recompression of the same history.

Ratios are persisted in ``BENCH_service.json`` (same machine-normalized
scheme as ``BENCH_parallel.json``)::

    python benchmarks/bench_service.py record [--scale full]
    python benchmarks/bench_service.py check  [--scale smoke]

``check`` re-measures and fails when the warm-query advantage dropped more
than 50% below the recorded value (micro-latency ratios are noisier than
the kernel throughput ratios, hence the wider gate).  The CI service job
runs it at the smoke scale.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "BENCH_service.json"

#: Warm-query ratios are micro-latencies (microseconds against tens of
#: milliseconds); allow a wider regression band than the kernel gates.
REGRESSION_TOLERANCE = 0.50

SCALES = {
    "smoke": {"stream": 20_000, "summary": 200, "queries": 200, "delta": 50,
              "push_chunk": 1024},
    "full": {"stream": 200_000, "summary": 1_000, "queries": 1_000,
             "delta": 200, "push_chunk": 1024},
}


def measure(scale: str) -> dict:
    """Measure the serving ratios at the given scale."""
    from repro.datasets import synthetic_sequential_segments
    from repro.evaluation import best_of, speedup
    from repro.pipeline import compress
    from repro.service import (
        QueryEngine,
        SessionStore,
        SnapshotIndex,
        decode_segments,
        encode_segments,
    )

    config = SCALES[scale]
    n, summary_size = config["stream"], config["summary"]
    queries = config["queries"]
    stream = synthetic_sequential_segments(n, 2, seed=77)
    lo, hi = 1, n  # unit intervals starting at 1
    spans = [
        (lo + (i * 131) % (n // 2), lo + (i * 131) % (n // 2) + n // 4)
        for i in range(queries)
    ]

    from repro.api import ExecutionPolicy

    store = SessionStore(
        size=summary_size, policy=ExecutionPolicy(backend="numpy")
    )
    engine = QueryEngine(store)
    store.push("k", stream)

    # Cold: every query pays the snapshot finalization + index build.
    def cold_query():
        engine._cache.clear()
        return engine.range_agg("k", lo, hi, "avg")

    cold = best_of(cold_query, repeats=3)

    # Warm: the per-generation cache answers from prefix sums.
    engine.range_agg("k", lo, hi, "avg")  # prime

    def warm_queries():
        for t1, t2 in spans:
            engine.range_agg("k", t1, t2, "avg")

    warm = best_of(warm_queries, repeats=3)
    warm_per_query = warm.seconds / queries

    # Disabled-instrumentation overhead: the PR 9 observability layer
    # promises the disarmed hot path costs one global read plus the
    # unconditional /stats counters.  An uninstrumented build no longer
    # exists, so the pre-observability warm path is reconstructed inline
    # (generation check + cache lookup + index arithmetic, no counters)
    # and raced against the disarmed public path over the same spans.
    from repro.obs import metrics as obs_metrics
    from repro.service import ServiceError
    from repro.service.query import RANGE_FUNCTIONS

    store_ref, cache_ref = engine._store, engine._cache

    def uninstrumented_index(key):
        generation = store_ref.generation(key)
        cached = cache_ref.get(key)
        if cached is not None and cached[0] == generation:
            return cached[1]
        index = SnapshotIndex.from_columns(store_ref.snapshot_columns(key))
        cache_ref[key] = (generation, index)
        return index

    def uninstrumented_range_agg(key, t1, t2, fn="avg", group=None):
        if fn not in RANGE_FUNCTIONS:
            raise ServiceError(f"fn must be one of {RANGE_FUNCTIONS}")
        t1, t2 = int(t1), int(t2)
        if t2 < t1:
            raise ServiceError(f"empty range: t2={t2} precedes t1={t1}")
        return uninstrumented_index(key).resolve(group).range_agg(t1, t2, fn)

    def uninstrumented_queries():
        for t1, t2 in spans:
            uninstrumented_range_agg("k", t1, t2, "avg")

    # The two sides differ by far less than the run-to-run drift of a
    # busy machine, so neither sequential best_of blocks nor min-over-
    # rounds converge.  Instead each round runs the sides back to back
    # in an A-B-B-A palindrome (alternating which side leads across
    # rounds): the min per side within a round rejects intra-round
    # hiccups and cancels ordering effects, the per-round ratio cancels
    # drift common to the round, and the *median of the per-round
    # ratios* rejects the rounds a scheduler preemption still skewed.
    import statistics
    import time as _clock

    round_ratios = []
    round_times = {"uninstrumented": [], "disarmed": []}
    with obs_metrics.disabled():
        for round_index in range(21):
            pair = (
                (uninstrumented_queries, warm_queries)
                if round_index % 2 == 0
                else (warm_queries, uninstrumented_queries)
            )
            best: dict = {}
            for side in pair + tuple(reversed(pair)):
                began = _clock.perf_counter()
                side()
                elapsed = _clock.perf_counter() - began
                key = side is uninstrumented_queries
                best[key] = min(best.get(key, elapsed), elapsed)
            round_ratios.append(best[True] / best[False])
            round_times["uninstrumented"].append(best[True])
            round_times["disarmed"].append(best[False])
    overhead_ratio = statistics.median(round_ratios)
    uninstrumented_s = min(round_times["uninstrumented"])
    disarmed_s = min(round_times["disarmed"])

    # The no-serving-layer baseline: recompress the history, then query.
    def batch_recompress():
        result = compress(stream, size=summary_size, backend="numpy")
        index = SnapshotIndex(result.segments).resolve(None)
        return index.range_agg(lo, hi, "avg")

    batch = best_of(batch_recompress, repeats=3)

    # Snapshot-delta series: a genuinely cold snapshot at a *fresh* push
    # generation — k new tuples since the last snapshot — served by the
    # delta path (mirror patch + tail + column index) versus the
    # clone+finalize oracle (heap clone + finalize + segment objects +
    # index).  Each repeat pushes a fresh chunk so neither side can hit
    # the per-generation cache.
    import time as _time

    from repro.api import Compressor
    from repro.core.merge import AggregateSegment
    from repro.temporal import Interval

    delta_k = config["delta"]
    session = Compressor(
        size=summary_size, policy=ExecutionPolicy(backend="numpy")
    )
    session.push(stream)
    session.summary_columns()  # first snapshot: materialises the mirror

    def shifted_chunk(count, offset, seed):
        raw = synthetic_sequential_segments(count, 2, seed=seed)
        return [
            AggregateSegment(
                s.group,
                s.values,
                Interval(s.interval.start + offset, s.interval.end + offset),
            )
            for s in raw
        ]

    delta_seconds = []
    clone_seconds = []
    offset = n + 10
    for repeat in range(5):
        session.push(shifted_chunk(delta_k, offset, seed=100 + repeat))
        offset += delta_k + 5
        began = _time.perf_counter()
        index = SnapshotIndex.from_columns(session.summary_columns())
        index.resolve(None).range_agg(lo, hi, "avg")
        delta_seconds.append(_time.perf_counter() - began)
        began = _time.perf_counter()
        oracle = session.summary_oracle()
        SnapshotIndex(oracle.segments).resolve(None).range_agg(lo, hi, "avg")
        clone_seconds.append(_time.perf_counter() - began)
    snapshot_delta_s = min(delta_seconds)
    snapshot_clone_s = min(clone_seconds)

    # Wire codec throughput.
    blob = encode_segments(stream)
    encode_run = best_of(encode_segments, stream, repeats=3)
    decode_run = best_of(decode_segments, blob, repeats=3)

    # Zero-copy column decode: the receive path of the cluster tier
    # (`decode_encoded(copy=False)`) aliases the payload buffer instead
    # of copying every column — what a reducer worker pays per shard
    # before the kernels run.
    from repro.service.wire import decode_encoded

    # Single decodes are sub-millisecond at smoke scale; amortise the
    # timer jitter over a batch of decodes per repeat.
    decode_batch = 10

    def decode_copying():
        for _ in range(decode_batch):
            decode_encoded(blob)

    def decode_zero_copy():
        for _ in range(decode_batch):
            decode_encoded(blob, copy=False)

    decode_copy_run = best_of(decode_copying, repeats=5)
    decode_zero_run = best_of(decode_zero_copy, repeats=5)

    # Durable push overhead: the same chunked ingest against a durable
    # store (WAL append + fsync per acknowledged push, checkpoint
    # demotion every quarter of the stream) versus the in-memory store.
    import shutil
    import tempfile

    push_chunk = config["push_chunk"]
    chunks = [stream[i: i + push_chunk] for i in range(0, n, push_chunk)]
    checkpoint_every = max(n // 4, push_chunk)

    def memory_pushes():
        memory_store = SessionStore(
            size=summary_size, policy=ExecutionPolicy(backend="numpy")
        )
        for piece in chunks:
            memory_store.push("k", piece)

    memory_push = best_of(memory_pushes, repeats=5)

    def durable_pushes():
        data_dir = tempfile.mkdtemp(prefix="repro-bench-durable-")
        try:
            durable_store = SessionStore(
                size=summary_size,
                policy=ExecutionPolicy(backend="numpy"),
                data_dir=data_dir,
                checkpoint_every=checkpoint_every,
            )
            for piece in chunks:
                durable_store.push("k", piece)
            durable_store.close()
        finally:
            shutil.rmtree(data_dir)

    durable_push = best_of(durable_pushes, repeats=5)

    # Group commit: the fsync cadence is counted in acknowledged pushes
    # (store-wide), so many small pushes are where it pays.  Same stream,
    # small chunks, fsync_every=8 versus the per-push default.
    group_chunk = max(push_chunk // 4, 1)
    small_chunks = [
        stream[i: i + group_chunk] for i in range(0, n, group_chunk)
    ]

    def cadence_pushes(fsync_every: int) -> None:
        data_dir = tempfile.mkdtemp(prefix="repro-bench-cadence-")
        try:
            cadence_store = SessionStore(
                size=summary_size,
                policy=ExecutionPolicy(backend="numpy"),
                data_dir=data_dir,
                fsync_every=fsync_every,
                checkpoint_every=checkpoint_every,
            )
            for piece in small_chunks:
                cadence_store.push("k", piece)
            cadence_store.close()
        finally:
            shutil.rmtree(data_dir)

    per_push_fsync = best_of(cadence_pushes, 1, repeats=5)
    grouped_fsync = best_of(cadence_pushes, 8, repeats=5)

    # Quorum ack overhead: the same chunked ingest replicated to a warm
    # standby over a real local socket, with the push acknowledgement
    # gated on the standby's ack (`sync_replicas=1`) versus the
    # asynchronous stream.  Frames already ship synchronously per push
    # either way, so the quorum machinery itself — sequencing into the
    # resync journal, counting acks, rollback bookkeeping — is what this
    # ratio isolates.
    from repro.cluster import ReplicationLink, start_standby
    from repro.cluster.replica import standby_store

    def replicated_pushes(sync_replicas: int) -> None:
        standby, _ = start_standby(
            standby_store(
                size=summary_size, policy=ExecutionPolicy(backend="numpy")
            )
        )
        try:
            replicated_store = SessionStore(
                size=summary_size,
                policy=ExecutionPolicy(backend="numpy"),
                sync_replicas=sync_replicas,
            )
            link = ReplicationLink(standby.address, auto_resync=False)
            link.attach(replicated_store)
            for piece in chunks:
                replicated_store.push("k", piece)
            link.detach()
        finally:
            standby.shutdown()
            standby.server_close()

    async_replicated = best_of(replicated_pushes, 0, repeats=3)
    quorum_replicated = best_of(replicated_pushes, 1, repeats=3)

    # Recovery: crash a durable store (no close()) and time how long a
    # fresh store takes to become ready to serve from the surviving
    # checkpoints + WAL — checkpoint mmap + torn-tail scan + replay +
    # first query.  The no-durability alternative after a crash is batch
    # recompression of the (re-sent) history, measured above.
    crash_dir = tempfile.mkdtemp(prefix="repro-bench-recover-")
    try:
        crashed = SessionStore(
            size=summary_size,
            policy=ExecutionPolicy(backend="numpy"),
            data_dir=crash_dir,
            checkpoint_every=checkpoint_every,
        )
        for piece in chunks:
            crashed.push("k", piece)
        del crashed  # crash: the WAL writers are dropped without close()

        recovery_seconds = []
        for _ in range(3):
            began = _time.perf_counter()
            revived = SessionStore(
                size=summary_size,
                policy=ExecutionPolicy(backend="numpy"),
                data_dir=crash_dir,
                checkpoint_every=checkpoint_every,
            )
            QueryEngine(revived).range_agg("k", lo, hi, "avg")
            recovery_seconds.append(_time.perf_counter() - began)
            revived.close()
        recovery_s = min(recovery_seconds)
    finally:
        shutil.rmtree(crash_dir)

    return {
        "durable_push_vs_memory": speedup(
            memory_push.seconds, durable_push.seconds
        ),
        "group_commit_vs_per_push_fsync": speedup(
            per_push_fsync.seconds, grouped_fsync.seconds
        ),
        "quorum_ack_overhead": speedup(
            async_replicated.seconds, quorum_replicated.seconds
        ),
        "recovery_vs_batch_recompress": speedup(
            batch.seconds, recovery_s
        ),
        "warm_query_vs_batch_recompress": speedup(
            batch.seconds, warm_per_query
        ),
        "metrics_disabled_overhead": overhead_ratio,
        "cold_query_vs_batch_recompress": speedup(
            batch.seconds, cold.seconds
        ),
        "snapshot_delta_vs_clone": speedup(
            snapshot_clone_s, snapshot_delta_s
        ),
        "snapshot_delta_vs_batch_recompress": speedup(
            batch.seconds, snapshot_delta_s
        ),
        "wire_decode_vs_encode": speedup(
            encode_run.seconds, decode_run.seconds
        ),
        "wire_decode_zero_copy": speedup(
            decode_copy_run.seconds, decode_zero_run.seconds
        ),
        "raw": {
            "stream": n,
            "summary": summary_size,
            "batch_recompress_s": batch.seconds,
            "cold_query_s": cold.seconds,
            "snapshot_delta_k": delta_k,
            "snapshot_delta_cold_s": snapshot_delta_s,
            "snapshot_clone_cold_s": snapshot_clone_s,
            "warm_query_us": warm_per_query * 1e6,
            "warm_query_uninstrumented_us": (
                uninstrumented_s / queries * 1e6
            ),
            "warm_query_disarmed_us": disarmed_s / queries * 1e6,
            "wire_bytes": len(blob),
            "wire_encode_s": encode_run.seconds,
            "wire_decode_s": decode_run.seconds,
            "wire_decode_copy_s": decode_copy_run.seconds / decode_batch,
            "wire_decode_zero_copy_s": decode_zero_run.seconds / decode_batch,
            "push_chunk": push_chunk,
            "checkpoint_every": checkpoint_every,
            "memory_push_s": memory_push.seconds,
            "durable_push_s": durable_push.seconds,
            "group_chunk": group_chunk,
            "per_push_fsync_s": per_push_fsync.seconds,
            "grouped_fsync_s": grouped_fsync.seconds,
            "async_replicated_push_s": async_replicated.seconds,
            "quorum_replicated_push_s": quorum_replicated.seconds,
            "recovery_s": recovery_s,
        },
    }


def bench_service(benchmark):
    """Pytest-benchmark entry point (smoke table; used by `pytest benchmarks`)."""
    from paperbench import publish

    # Always the smoke workload: the pytest entry point guards the code
    # path and the caching invariant; the record/check CLI below owns the
    # full-scale numbers.
    ratios = measure("smoke")
    raw = ratios["raw"]
    lines = [
        "Serving layer: snapshot queries vs batch recompression",
        f"  stream n={raw['stream']}, summary c={raw['summary']}",
        f"  batch recompress + query : {raw['batch_recompress_s'] * 1e3:9.2f} ms",
        f"  cold snapshot query      : {raw['cold_query_s'] * 1e3:9.2f} ms "
        f"({ratios['cold_query_vs_batch_recompress']:.0f}x cheaper)",
        f"  delta snapshot (k={raw['snapshot_delta_k']})   : "
        f"{raw['snapshot_delta_cold_s'] * 1e3:9.2f} ms "
        f"(clone oracle {raw['snapshot_clone_cold_s'] * 1e3:.2f} ms, "
        f"{ratios['snapshot_delta_vs_clone']:.1f}x)",
        f"  warm snapshot query      : {raw['warm_query_us']:9.2f} us "
        f"({ratios['warm_query_vs_batch_recompress']:.0f}x cheaper)",
        f"  disarmed obs overhead    : "
        f"{raw['warm_query_disarmed_us']:9.2f} us "
        f"(uninstrumented {raw['warm_query_uninstrumented_us']:.2f} us, "
        f"{1.0 / ratios['metrics_disabled_overhead']:.3f}x)",
        f"  wire payload             : {raw['wire_bytes']:,} bytes "
        f"(encode {raw['wire_encode_s'] * 1e3:.1f} ms, "
        f"decode {raw['wire_decode_s'] * 1e3:.1f} ms)",
        f"  zero-copy column decode  : "
        f"{raw['wire_decode_zero_copy_s'] * 1e3:9.2f} ms "
        f"(copying {raw['wire_decode_copy_s'] * 1e3:.2f} ms, "
        f"{ratios['wire_decode_zero_copy']:.1f}x)",
        f"  durable chunked ingest   : {raw['durable_push_s'] * 1e3:9.2f} ms "
        f"(memory {raw['memory_push_s'] * 1e3:.2f} ms, "
        f"{raw['durable_push_s'] / raw['memory_push_s']:.2f}x)",
        f"  group commit (every 8)   : {raw['grouped_fsync_s'] * 1e3:9.2f} ms "
        f"(per-push fsync {raw['per_push_fsync_s'] * 1e3:.2f} ms, "
        f"{ratios['group_commit_vs_per_push_fsync']:.2f}x, "
        f"chunk={raw['group_chunk']})",
        f"  quorum-acked ingest      : "
        f"{raw['quorum_replicated_push_s'] * 1e3:9.2f} ms "
        f"(async replication {raw['async_replicated_push_s'] * 1e3:.2f} ms, "
        f"{raw['quorum_replicated_push_s'] / raw['async_replicated_push_s']:.2f}x)",
        f"  crash recovery to serve  : {raw['recovery_s'] * 1e3:9.2f} ms "
        f"({ratios['recovery_vs_batch_recompress']:.1f}x vs recompress)",
    ]
    publish("service", "\n".join(lines))
    # The serving layer must beat recompression by a wide margin even at
    # smoke scale; anything less means snapshot caching is broken.
    assert ratios["warm_query_vs_batch_recompress"] >= 50.0
    # Disarmed observability must stay within 1.05x of the reconstructed
    # uninstrumented warm path (the zero-cost-when-disabled promise).
    assert ratios["metrics_disabled_overhead"] >= 1.0 / 1.05
    # A genuinely cold snapshot at a fresh generation (the delta path)
    # must also stay far cheaper than recompressing the history.
    assert ratios["snapshot_delta_vs_batch_recompress"] >= 50.0
    # Durability is a WAL append + fsync per acknowledged push; it must
    # not cost more than 1.5x the in-memory ingest at smoke scale.
    assert ratios["durable_push_vs_memory"] >= 1.0 / 1.5
    # Group commit amortises the fsync; it must never make ingest slower
    # than per-push fsync (wide band: fsync cost varies across CI disks).
    assert ratios["group_commit_vs_per_push_fsync"] >= 0.8
    # Frames ship synchronously either way; waiting for the quorum ack
    # (sync_replicas=1) adds only sequencing + ack bookkeeping and must
    # stay within 1.5x of the asynchronous stream over local sockets.
    assert ratios["quorum_ack_overhead"] >= 1.0 / 1.5
    # Zero-copy decode aliases the payload instead of copying every
    # column; if it stops being cheaper, copy=False has silently started
    # copying (measured ~2.8x at smoke scale; wide band for CI noise).
    assert ratios["wire_decode_zero_copy"] >= 1.2

    from repro.service import QueryEngine, SessionStore
    from repro.datasets import synthetic_sequential_segments
    from repro.api import ExecutionPolicy

    store = SessionStore(size=64, policy=ExecutionPolicy(backend="numpy"))
    store.push("k", synthetic_sequential_segments(2_000, 1, seed=3))
    engine = QueryEngine(store)
    engine.range_agg("k", 1, 2_000)
    benchmark(lambda: engine.range_agg("k", 1, 2_000))


# ----------------------------------------------------------------------
# Baseline record / check CLI (mirrors perf_baseline.py)
# ----------------------------------------------------------------------
def _load() -> dict:
    if BASELINE_PATH.exists():
        return json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
    return {"schema": 1, "scales": {}}


def _ratio_items(ratios: dict) -> dict:
    return {k: v for k, v in ratios.items() if k != "raw"}


def _print_ratios(title: str, ratios: dict, recorded: dict | None = None):
    print(f"\n{title}")
    for name, value in sorted(_ratio_items(ratios).items()):
        line = f"  {name:36s} {value:10.2f}x"
        if recorded and name in recorded:
            line += f"   (recorded {recorded[name]:.2f}x)"
        print(line)


def record(scale: str) -> None:
    ratios = measure(scale)
    data = _load()
    data.setdefault("scales", {})[scale] = _ratio_items(ratios)
    data["meta"] = {
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "recorded_at": datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        ),
        # Fresh measurement wins over any previously recorded raw numbers.
        "raw": {**data.get("meta", {}).get("raw", {}), scale: ratios["raw"]},
    }
    BASELINE_PATH.write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    _print_ratios(f"recorded baseline ({scale}) -> {BASELINE_PATH.name}",
                  ratios)


def check(scale: str) -> int:
    data = _load()
    recorded = data.get("scales", {}).get(scale)
    if not recorded:
        print(f"no recorded baseline for scale {scale!r} in "
              f"{BASELINE_PATH.name}; run 'record' first", file=sys.stderr)
        return 2
    ratios = measure(scale)
    _print_ratios(f"measured ratios ({scale})", ratios, recorded)
    regressions = []
    for name, reference in sorted(recorded.items()):
        measured = _ratio_items(ratios).get(name)
        if measured is None:
            regressions.append(f"{name}: not measured anymore")
        elif measured < reference * (1.0 - REGRESSION_TOLERANCE):
            regressions.append(
                f"{name}: {measured:.2f}x is more than "
                f"{REGRESSION_TOLERANCE:.0%} below the recorded "
                f"{reference:.2f}x"
            )
    if regressions:
        print("\nserving performance regression detected:", file=sys.stderr)
        for line in regressions:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("\nno regression: all ratios within "
          f"{REGRESSION_TOLERANCE:.0%} of the recorded baseline")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("mode", choices=("record", "check"))
    parser.add_argument(
        "--scale", choices=sorted(SCALES), default="smoke",
        help="workload scale (default: smoke)",
    )
    arguments = parser.parse_args()
    if arguments.mode == "record":
        record(arguments.scale)
        return 0
    return check(arguments.scale)


if __name__ == "__main__":
    raise SystemExit(main())
