"""Figure 20: maximal heap size of gPTAc and gPTAε as a function of c / ε.

On gap-free synthetic data the read-ahead parameter δ controls how large the
merge heap may grow: δ = 0 pins it to the output size, δ = ∞ lets it grow to
the full ITA result, intermediate values give ``c + β`` with a small β.
gPTAε behaves similarly but needs a noticeably larger heap.

Expected shape (paper, Fig. 20): for gPTAc the curves for δ = 0, 1, 2
converge to the output size while δ = ∞ stays at the input size; gPTAε's
heap is larger for every δ.

A companion series compares the online runtime of the two heap backends:
since the batched online merge policy (staged chunk insertion in the array
heap) the numpy backend is no slower than the python heap on
tuple-at-a-time streams, closing the gap reported after PR 1.
"""

from repro.core import DELTA_INFINITY, greedy_reduce_to_size, max_error
from repro.datasets import synthetic_sequential_segments
from repro.evaluation import best_of, format_series
from repro.pipeline import compress

from paperbench import workload_scale, publish

INPUT_SIZE = {"smoke": 1000, "tiny": 2000, "small": 20000, "paper": 200000}
DELTAS = (0, 1, 2, DELTA_INFINITY)


def _label(delta):
    return "delta=inf" if delta == DELTA_INFINITY else f"delta={delta}"


def bench_fig20_heap_size(benchmark):
    n = INPUT_SIZE[workload_scale()]
    segments = synthetic_sequential_segments(n, dimensions=2, seed=51)
    emax = max_error(segments)
    output_sizes = sorted({max(int(n * f), 1) for f in (0.01, 0.05, 0.1, 0.3, 0.6)})

    size_series = {_label(delta): [] for delta in DELTAS}
    for delta in DELTAS:
        for output_size in output_sizes:
            result = compress(iter(segments), size=output_size, delta=delta)
            size_series[_label(delta)].append((output_size, result.max_heap_size))

    error_series = {_label(delta): [] for delta in DELTAS}
    for delta in DELTAS:
        for epsilon in (0.05, 0.2, 0.5, 0.8):
            result = compress(
                iter(segments), max_error=epsilon, delta=delta,
                input_size_estimate=n, max_error_estimate=emax,
            )
            error_series[_label(delta)].append((result.size, result.max_heap_size))

    publish(
        "fig20a_heap_gptac",
        format_series(size_series, "PTA result size c", "max heap size",
                      title=f"Fig. 20(a) — gPTAc heap size (n={n})"),
    )
    publish(
        "fig20b_heap_gptaeps",
        format_series(error_series, "PTA result size", "max heap size",
                      title=f"Fig. 20(b) — gPTAeps heap size (n={n})"),
    )

    # Online runtime per heap backend: the staged-chunk insert path must
    # keep the array heap competitive with the python heap on streams.
    backend_series = {"python": [], "numpy": []}
    for backend in backend_series:
        for output_size in output_sizes:
            # A materialised list: best_of re-runs the callable, so a lazy
            # iterator would be exhausted after the first repeat.
            run = best_of(
                compress, segments, size=output_size,
                backend=backend, repeats=3,
            )
            backend_series[backend].append((output_size, run.seconds))
    publish(
        "fig20c_online_backend_runtime",
        format_series(backend_series, "PTA result size c", "seconds",
                      title=f"gPTAc online runtime per backend (n={n})"),
    )

    benchmark(greedy_reduce_to_size, list(segments), output_sizes[1], 1)

    # Shape assertions: delta=0 pins the heap near c; delta=inf uses the whole
    # input; gPTAeps needs at least as much heap as gPTAc for small bounds.
    for (c, heap_size) in size_series["delta=0"]:
        assert heap_size <= c + 1
    assert all(h == n for _, h in size_series["delta=inf"])
    assert max(h for _, h in error_series["delta=1"]) >= max(
        h for c, h in size_series["delta=1"] if c <= n // 10
    )
