"""Benchmark harness reproducing the paper's evaluation section.

This package marker namespaces the benchmark modules (``benchmarks.bench_*``)
so their collection never clashes with the ``tests/`` suite — both
directories carry a ``conftest.py``, and without packages pytest would import
whichever it sees first under the bare module name ``conftest``.

Run the benchmarks explicitly with ``python -m pytest benchmarks/`` (add
``--benchmark-disable`` for a quick smoke pass); plain ``pytest`` collects
only ``tests/`` (see ``[tool.pytest.ini_options]`` in ``pyproject.toml``).
"""
