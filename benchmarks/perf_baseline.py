"""Persistent performance baseline for the kernel and pipeline hot paths.

Measures a small set of *machine-normalized speedup ratios* — each one the
quotient of two measurements taken back to back on the same machine, so the
numbers survive hardware changes far better than raw seconds — and persists
them in ``BENCH_parallel.json`` at the repository root:

* ``dp_inner_numpy_vs_python`` — the vectorized DP split-point scan against
  the loop-based reference (one full row of the plain scheme);
* ``gms_numpy_vs_python`` / ``online_numpy_vs_python`` — the array heap
  against the linked-node heap for batch and online greedy reduction (the
  online row exercises the batched online merge policy);
* ``sharded_w{1,4}_vs_pr1_online_p{1,10}`` — the sharded engine of
  :mod:`repro.parallel` (``compress(workers=N)``) against the PR 1
  single-core NumPy online path (per-tuple ``insert()``, reproduced by
  hiding the staged-chunk protocol from the greedy loop).

Usage::

    python benchmarks/perf_baseline.py record [--scale full]
    python benchmarks/perf_baseline.py check  [--scale smoke]

``record`` writes the measured ratios for the chosen scale into the baseline
file (merging with other scales); ``check`` re-measures and exits non-zero
when any ratio dropped more than 30% below its recorded value — the CI
smoke job runs it at the ``smoke`` scale on every push.  Note that the
sharded ratios are recorded together with ``cpu_count``: on a single core
they measure the engine's algorithmic advantage only, and grow further with
real cores.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from contextlib import contextmanager
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "BENCH_parallel.json"

#: A freshly measured ratio may drop at most this fraction below its
#: recorded value before the check fails.
REGRESSION_TOLERANCE = 0.30

#: Workload sizes per scale.  ``smoke`` finishes in well under a minute for
#: CI; ``full`` is the recorded headline configuration (n = 100k for the
#: sharded engine).
SCALES = {
    "smoke": {
        "dp_n": 1_500,
        "heap_n": 4_000,
        "parallel_groups": 100,
        "parallel_per_group": 200,
    },
    "full": {
        "dp_n": 4_000,
        "heap_n": 10_000,
        "parallel_groups": 500,
        "parallel_per_group": 200,
    },
}


@contextmanager
def _pr1_heap_factory():
    """Reproduce the PR 1 online NumPy path (per-tuple inserts).

    Wraps the heap factory so the array heap no longer advertises the
    staged-chunk protocol; the greedy loop then falls back to calling
    ``insert`` once per tuple, which is exactly the code path PR 1 shipped.
    """
    import repro.core.greedy as greedy_module

    original = greedy_module.make_merge_heap

    class _PerTupleView:
        def __init__(self, heap):
            self._heap = heap

        def __getattr__(self, name):
            if name in (
                "stage_chunk", "insert_staged", "activate_staged_all"
            ):
                raise AttributeError(name)
            return getattr(self._heap, name)

        def __len__(self):
            return len(self._heap)

    def factory(weights=None, backend="python"):
        heap = original(weights, backend)
        return _PerTupleView(heap) if backend == "numpy" else heap

    greedy_module.make_merge_heap = factory
    try:
        yield
    finally:
        greedy_module.make_merge_heap = original


def measure(scale: str) -> dict:
    """Measure every baseline ratio at the given scale."""
    from repro.core.dp import _ErrorMatrix
    from repro.core.greedy import gms_reduce_to_size, greedy_reduce_to_size
    from repro.datasets import (
        synthetic_grouped_segments,
        synthetic_sequential_segments,
    )
    from repro.evaluation import best_of, speedup
    from repro.pipeline import compress

    config = SCALES[scale]
    ratios: dict = {}

    # DP split-point scan: one full row of the plain scheme (the quadratic
    # hot spot).  The python side is the slow one by construction and is
    # only run once.
    sequential = synthetic_sequential_segments(config["dp_n"], 1, seed=81)

    def dp_rows(backend):
        matrix = _ErrorMatrix(sequential, None, optimized=False,
                              backend=backend)
        matrix.fill_next_row()
        matrix.fill_next_row()

    python_run = best_of(dp_rows, "python", repeats=2)
    numpy_run = best_of(dp_rows, "numpy", repeats=3)
    ratios["dp_inner_numpy_vs_python"] = speedup(
        python_run.seconds, numpy_run.seconds
    )

    # Batch and online greedy reduction, p = 10 (the paper's synthetic
    # dimensionality).
    heap_input = synthetic_sequential_segments(config["heap_n"], 10, seed=83)
    target = config["heap_n"] // 10
    python_run = best_of(gms_reduce_to_size, heap_input, target, repeats=3)
    numpy_run = best_of(
        gms_reduce_to_size, heap_input, target, backend="numpy", repeats=3
    )
    ratios["gms_numpy_vs_python"] = speedup(
        python_run.seconds, numpy_run.seconds
    )

    python_run = best_of(
        greedy_reduce_to_size, heap_input, target, 1, repeats=3
    )
    numpy_run = best_of(
        greedy_reduce_to_size, heap_input, target, 1, backend="numpy",
        repeats=3,
    )
    ratios["online_numpy_vs_python"] = speedup(
        python_run.seconds, numpy_run.seconds
    )

    # The sharded engine against the PR 1 online numpy path.  The
    # multiprocess configuration is only measured at the full scale: at
    # smoke size the process-pool start-up jitter dwarfs the work itself
    # and the ratio is too noisy for a regression gate.
    def pr1_online(segments, size):
        with _pr1_heap_factory():
            return greedy_reduce_to_size(
                iter(segments), size, 1, backend="numpy"
            )

    worker_counts = (1, 4) if scale == "full" else (1,)
    for dimensions in (1, 10):
        segments = synthetic_grouped_segments(
            config["parallel_groups"], config["parallel_per_group"],
            dimensions=dimensions, seed=42,
        )
        target = len(segments) // 10
        baseline = best_of(pr1_online, segments, target, repeats=3)
        for workers in worker_counts:
            run = best_of(
                compress, segments, size=target, workers=workers, repeats=3
            )
            ratios[f"sharded_w{workers}_vs_pr1_online_p{dimensions}"] = (
                speedup(baseline.seconds, run.seconds)
            )
    return ratios


def _load() -> dict:
    if BASELINE_PATH.exists():
        return json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
    return {"schema": 1, "scales": {}}


def _print_ratios(title: str, ratios: dict, recorded: dict | None = None):
    print(f"\n{title}")
    for name, value in sorted(ratios.items()):
        line = f"  {name:40s} {value:7.2f}x"
        if recorded and name in recorded:
            line += f"   (recorded {recorded[name]:.2f}x)"
        print(line)


def record(scale: str) -> None:
    ratios = measure(scale)
    data = _load()
    data.setdefault("scales", {})[scale] = ratios
    data["meta"] = {
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "recorded_at": datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        ),
    }
    BASELINE_PATH.write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    _print_ratios(f"recorded baseline ({scale}) -> {BASELINE_PATH.name}",
                  ratios)


def check(scale: str) -> int:
    data = _load()
    recorded = data.get("scales", {}).get(scale)
    if not recorded:
        print(f"no recorded baseline for scale {scale!r} in "
              f"{BASELINE_PATH.name}; run 'record' first", file=sys.stderr)
        return 2
    meta = data.get("meta", {})
    if meta:
        print(
            f"recorded on: {meta.get('platform', '?')} "
            f"(cpu_count={meta.get('cpu_count', '?')}, "
            f"python={meta.get('python', '?')}, "
            f"at {meta.get('recorded_at', '?')})"
        )
        print("ratios are machine-normalized but not machine-independent: "
              "re-record on this machine class if the gate misfires")
    ratios = measure(scale)
    _print_ratios(f"measured ratios ({scale})", ratios, recorded)
    regressions = []
    for name, reference in sorted(recorded.items()):
        measured = ratios.get(name)
        if measured is None:
            regressions.append(f"{name}: not measured anymore")
        elif measured < reference * (1.0 - REGRESSION_TOLERANCE):
            regressions.append(
                f"{name}: {measured:.2f}x is more than "
                f"{REGRESSION_TOLERANCE:.0%} below the recorded "
                f"{reference:.2f}x"
            )
    if regressions:
        print("\nperformance regression detected:", file=sys.stderr)
        for line in regressions:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("\nno regression: all ratios within "
          f"{REGRESSION_TOLERANCE:.0%} of the recorded baseline")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("mode", choices=("record", "check"))
    parser.add_argument(
        "--scale", choices=sorted(SCALES), default="smoke",
        help="workload scale (default: smoke)",
    )
    arguments = parser.parse_args()
    if arguments.mode == "record":
        record(arguments.scale)
        return 0
    return check(arguments.scale)


if __name__ == "__main__":
    raise SystemExit(main())
