"""Make the shared benchmark helpers importable when running from any cwd."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
