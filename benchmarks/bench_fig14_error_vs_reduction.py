"""Figure 14: PTA error as a function of the reduction ratio.

Part (a) sweeps the reduction ratio from 90 % to 100 % for the catalogue
queries and reports the normalised error of the optimal (DP) reduction; part
(b) repeats the sweep on synthetic data with 1–10 aggregate dimensions.

Expected shape (paper): most queries stay below ~10 % error even at 95 %
reduction; the error grows with the dimensionality of the data.
"""

from repro.core import max_error, optimal_error_curve
from repro.datasets import synthetic_sequential_segments
from repro.evaluation import format_series, size_for_reduction_ratio

from paperbench import workload_scale, catalogue, publish

RATIOS = (90.0, 92.0, 94.0, 96.0, 98.0, 99.0, 100.0)
DIMENSIONS = (1, 2, 4, 6, 8, 10)
DIMENSION_RATIOS = (20.0, 40.0, 60.0, 80.0, 90.0, 95.0, 99.0)


def _curve(segments, ratios):
    """Normalised error (percent of SSE_max) at the requested reduction ratios."""
    n = len(segments)
    maximum = max_error(segments)
    sizes = {
        ratio: max(size_for_reduction_ratio(n, ratio), 1) for ratio in ratios
    }
    errors = optimal_error_curve(segments, sorted(set(sizes.values())))
    points = []
    for ratio, size in sizes.items():
        error = errors.get(size)
        if error is None or error == float("inf"):
            continue
        normalized = 0.0 if maximum == 0 else 100.0 * error / maximum
        points.append((ratio, round(normalized, 3)))
    return points


def bench_fig14_error_vs_reduction(benchmark):
    cases = catalogue()
    quality_queries = [
        name for name in ("E1", "E2", "E3", "I1", "I2", "I3", "T1", "T2", "T3")
        if name in cases
    ]

    series_a = {}
    for name in quality_queries:
        case = cases[name]
        series_a[name] = _curve(case.segments, RATIOS)

    # Part (b): dimensionality sweep over a synthetic sequential relation.
    size_by_scale = {"tiny": 300, "small": 2000, "paper": 2000}
    base_size = size_by_scale[workload_scale()]
    series_b = {}
    for dimensions in DIMENSIONS:
        segments = synthetic_sequential_segments(base_size, dimensions, seed=17)
        series_b[f"{dimensions}D"] = _curve(segments, DIMENSION_RATIOS)

    publish(
        "fig14a_error_vs_reduction",
        format_series(series_a, "reduction ratio (%)", "error (% of SSE_max)",
                      title="Fig. 14(a) — PTA error vs. reduction ratio"),
    )
    publish(
        "fig14b_dimensionality",
        format_series(series_b, "reduction ratio (%)", "error (% of SSE_max)",
                      title="Fig. 14(b) — impact of dimensionality"),
    )

    # Representative timing: the full DP error curve of T1.
    t1 = cases["T1"]
    sizes = sorted({size_for_reduction_ratio(t1.ita_size, r) for r in RATIOS})
    benchmark(optimal_error_curve, t1.segments, sizes)

    # Shape assertions: error grows with the reduction ratio and with the
    # number of dimensions.
    for points in series_a.values():
        errors = [error for _, error in points]
        assert errors == sorted(errors)
    low_dim = dict(series_b["1D"])
    high_dim = dict(series_b["10D"])
    shared = set(low_dim) & set(high_dim)
    assert sum(high_dim[r] for r in shared) >= sum(low_dim[r] for r in shared)
