"""Shared infrastructure for the benchmark harness.

Every ``bench_*.py`` file reproduces one table or figure of the paper's
evaluation section: it computes the rows/series, prints them, writes them to
``benchmarks/results/`` and registers one representative timing with
pytest-benchmark.  The experiment scale is controlled by the environment
variable ``REPRO_BENCH_SCALE`` (``tiny`` by default so the whole harness
finishes in minutes; ``small`` and ``paper`` trade runtime for fidelity, see
``repro.datasets.queries``; ``smoke`` is an extra-reduced scale used by the
CI smoke job and currently honoured by ``bench_kernels.py``).
"""

from __future__ import annotations

import os
from functools import lru_cache
from pathlib import Path
from typing import Dict

from repro.datasets import QueryCase, table1_catalogue

RESULTS_DIR = Path(__file__).parent / "results"


def workload_scale() -> str:
    """Scale of the benchmark workloads (``tiny`` / ``small`` / ``paper``)."""
    return os.environ.get("REPRO_BENCH_SCALE", "tiny")


@lru_cache(maxsize=None)
def catalogue(scale: str | None = None) -> Dict[str, QueryCase]:
    """Cached Table 1 query catalogue at the requested scale."""
    return table1_catalogue(scale or workload_scale())


def publish(name: str, text: str) -> None:
    """Print a result block and persist it under ``benchmarks/results/``."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    print(f"\n===== {name} =====")
    print(text)
