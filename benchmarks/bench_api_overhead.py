"""Micro-benchmark: the declarative API layer must cost (almost) nothing.

The Plan/Engine refactor routes ``compress`` and ``pta`` through plan
construction plus the :func:`repro.api.execute` dispatcher.  This benchmark
measures three things at the smoke-friendly scales:

* **dispatch overhead** — ``Plan(...).reduce(...).run()`` versus the direct
  engine call (:func:`repro.core.greedy.greedy_reduce_to_size`) on the same
  input; the plan door must stay within a small constant factor (asserted
  ≤ 1.25× at n ≥ 10k, where per-tuple work dominates);
* **session push throughput** — the push-based
  :class:`repro.api.Compressor` feeding one tuple at a time versus batch
  ``compress`` over the same stream (the session path adds one method call
  per tuple);
* **snapshot cost** — ``Compressor.summary()`` as a function of the live
  heap size: cloning is O(heap), so snapshots must not scale with how many
  tuples were ever streamed.
"""

from repro.api import Compressor, ExecutionPolicy, Plan, SizeBudget
from repro.core.greedy import greedy_reduce_to_size
from repro.datasets import synthetic_sequential_segments
from repro.evaluation import best_of, format_table, speedup
from repro.pipeline import compress

from paperbench import publish, workload_scale

SIZES = {"smoke": 5_000, "tiny": 20_000, "small": 50_000, "paper": 100_000}
BOUND_FRACTION = 0.01
DIMENSIONS = 2


def bench_api_overhead(benchmark):
    scale = workload_scale()
    n = SIZES.get(scale, SIZES["tiny"])
    segments = synthetic_sequential_segments(n, DIMENSIONS, seed=91)
    bound = max(int(n * BOUND_FRACTION), 4)
    policy = ExecutionPolicy(backend="numpy")

    headers = ["comparison", "n", "baseline_s", "candidate_s", "overhead"]
    rows = []

    # 1. Plan door vs. direct engine call (identical work underneath).
    direct = best_of(
        lambda: greedy_reduce_to_size(
            iter(segments), bound, 1, backend="numpy"
        )
    )
    plan = Plan(segments).reduce(SizeBudget(bound))
    planned = best_of(lambda: plan.run(policy))
    assert planned.value.segments == direct.value.segments
    rows.append([
        "Plan.run vs direct engine",
        n,
        f"{direct.seconds:.4f}",
        f"{planned.seconds:.4f}",
        f"{planned.seconds / direct.seconds:.2f}x" if direct.seconds else "n/a",
    ])

    # 2. Push-based session vs. batch compress over the same stream.
    batch = best_of(
        lambda: compress(segments, size=bound, backend="numpy")
    )

    def run_session():
        session = Compressor(SizeBudget(bound), policy=policy)
        for segment in segments:
            session.push(segment)
        return session.finalize()

    pushed = best_of(run_session)
    assert pushed.value.segments == batch.value.segments
    rows.append([
        "Compressor.push loop vs batch compress",
        n,
        f"{batch.seconds:.4f}",
        f"{pushed.seconds:.4f}",
        f"{pushed.seconds / batch.seconds:.2f}x" if batch.seconds else "n/a",
    ])

    # 3. Snapshot cost is O(live heap), not O(stream length).
    session = Compressor(SizeBudget(bound), policy=policy)
    session.push(segments)
    snapshot = best_of(session.summary, repeats=5)
    rows.append([
        f"summary() snapshot (heap={session.heap_size})",
        n,
        f"{batch.seconds:.4f}",
        f"{snapshot.seconds:.4f}",
        f"{speedup(batch.seconds, snapshot.seconds):.0f}x cheaper than batch",
    ])

    publish(
        "api_overhead",
        format_table(headers, rows, title="Declarative API overhead"),
    )

    if n >= 10_000 and direct.seconds > 0:
        overhead = planned.seconds / direct.seconds
        assert overhead <= 1.25, (
            f"Plan dispatch overhead {overhead:.2f}x exceeds the 1.25x budget"
        )

    benchmark(lambda: plan.run(policy))
