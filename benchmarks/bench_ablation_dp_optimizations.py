"""Ablation: how much work the DP optimizations of Sections 5.2-5.3 save.

Not a figure of the paper, but DESIGN.md calls out the two DP refinements
(constant-time SSE via prefix sums; gap pruning with i_max / j_min and the
early break) as separate design choices.  This bench quantifies both:

* split-point candidates evaluated with and without the gap pruning, on data
  with and without aggregation groups;
* runtime of the prefix-sum SSE against a naive recomputation.
"""

import time

from repro.core import PrefixSums, sse_of_run
from repro.core.dp import reduce_to_size
from repro.datasets import synthetic_grouped_segments, synthetic_sequential_segments
from repro.evaluation import format_table

from paperbench import workload_scale, publish

PARAMETERS = {
    "tiny": dict(flat=400, groups=40, per_group=10, output=40),
    "small": dict(flat=2000, groups=200, per_group=10, output=200),
    "paper": dict(flat=2000, groups=200, per_group=10, output=200),
}


def bench_ablation_dp_optimizations(benchmark):
    config = PARAMETERS[workload_scale()]
    flat = synthetic_sequential_segments(config["flat"], dimensions=4, seed=71)
    grouped = synthetic_grouped_segments(
        config["groups"], config["per_group"], dimensions=4, seed=72
    )

    rows = []
    for label, segments in (("no gaps", flat), ("with groups", grouped)):
        pruned = reduce_to_size(segments, config["output"], optimized=True)
        plain = reduce_to_size(segments, config["output"], optimized=False)
        saving = 1.0 - pruned.stats.split_candidates / max(
            plain.stats.split_candidates, 1
        )
        rows.append([
            label,
            plain.stats.split_candidates,
            pruned.stats.split_candidates,
            f"{100.0 * saving:.1f}%",
        ])
    table_pruning = format_table(
        ("data", "split candidates (plain DP)", "split candidates (PTAc)",
         "work saved"),
        rows,
        title="Ablation — gap pruning and early break (Section 5.3)",
    )

    # Prefix-sum SSE vs. naive recomputation over many runs of the flat data.
    prefix = PrefixSums(flat)
    probes = [(i, min(i + 50, len(flat) - 1)) for i in range(0, len(flat) - 1, 25)]
    start = time.perf_counter()
    for first, last in probes:
        prefix.sse(first, last)
    prefix_seconds = time.perf_counter() - start
    start = time.perf_counter()
    for first, last in probes:
        sse_of_run(flat[first:last + 1])
    naive_seconds = time.perf_counter() - start
    table_sse = format_table(
        ("method", "time for %d run errors (s)" % len(probes)),
        [["prefix sums (Prop. 1)", round(prefix_seconds, 6)],
         ["naive recomputation", round(naive_seconds, 6)]],
        title="Ablation — constant-time SSE (Section 5.2)",
    )

    publish("ablation_dp_optimizations", table_pruning + "\n\n" + table_sse)

    benchmark(reduce_to_size, grouped, config["output"])

    assert rows[1][2] < rows[1][1]  # pruning saves work when groups exist
    assert prefix_seconds <= naive_seconds
