#!/usr/bin/env python
"""Fail CI when docs cite file paths (or test anchors) that don't resolve.

The docs promise to stay greppable against the tree: every path cited in
``docs/*.md`` and ``README.md`` must exist, and every
``path::Class::method`` anchor must name a symbol that actually appears
in that file.  This script is deliberately grep-grade — no markdown
parser, no imports of the package — so it can never rot ahead of the
docs it checks.

Usage::

    python tools/check_doc_links.py            # check, exit 1 on failures
    python tools/check_doc_links.py --list     # also print every citation
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterable, List, Tuple

ROOT = Path(__file__).resolve().parent.parent

#: Files whose path citations are checked.
DOC_FILES = sorted(ROOT.glob("docs/*.md")) + [ROOT / "README.md"]

#: A citation is a path rooted at one of these prefixes, or a root-level
#: artifact we know by name.
PATH_PATTERN = re.compile(
    r"(?:(?:src|tests|benchmarks|examples|docs|tools|\.github)"
    r"/[A-Za-z0-9_.*/-]*[A-Za-z0-9_*/-]"
    r"|BENCH_[A-Za-z0-9_]+\.json"
    r"|ROADMAP\.md|CHANGES\.md|PAPER\.md|pyproject\.toml)"
    r"(?:::[A-Za-z0-9_:]+)?"
)

#: Paths the docs legitimately cite but that only exist at runtime
#: (gitignored benchmark output, etc.).
GENERATED = {"benchmarks/results/"}


def citations(text: str) -> Iterable[str]:
    for match in PATH_PATTERN.finditer(text):
        yield match.group(0)


def check_one(citation: str) -> Tuple[bool, str]:
    """(ok, message) for one ``path[::Symbol[::symbol]]`` citation."""
    path_part, _, anchor = citation.partition("::")
    if path_part in GENERATED:
        return True, citation
    if "*" in path_part:
        if anchor:
            return False, f"{citation}: glob citations cannot carry anchors"
        if not any(ROOT.glob(path_part)):
            return False, f"{citation}: glob matches nothing"
        return True, citation
    target = ROOT / path_part
    if not target.exists():
        return False, f"{citation}: path {path_part!r} does not exist"
    if anchor:
        if not target.is_file():
            return False, f"{citation}: anchors need a file, not a directory"
        source = target.read_text(encoding="utf-8")
        for symbol in anchor.split("::"):
            if not re.search(
                rf"(?:^|\s)(?:def|class)\s+{re.escape(symbol)}\b", source
            ):
                return False, (
                    f"{citation}: no `def`/`class` named {symbol!r} "
                    f"in {path_part}"
                )
    return True, citation


def main(argv: List[str]) -> int:
    list_all = "--list" in argv
    failures: List[str] = []
    seen = set()
    for doc in DOC_FILES:
        rel = doc.relative_to(ROOT)
        for citation in citations(doc.read_text(encoding="utf-8")):
            key = (rel, citation)
            if key in seen:
                continue
            seen.add(key)
            ok, message = check_one(citation)
            if not ok:
                failures.append(f"{rel}: {message}")
            elif list_all:
                print(f"ok  {rel}: {citation}")
    if failures:
        print(f"{len(failures)} broken doc citation(s):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(
        f"checked {len(seen)} citations across "
        f"{len(DOC_FILES)} files — all resolve"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
