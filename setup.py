"""Legacy shim — all metadata lives in ``pyproject.toml`` (PEP 621)."""

from setuptools import setup

setup()
