"""Tests for the sharded multiprocess reduction engine (:mod:`repro.parallel`).

The engine must (a) produce byte-identical output for every worker count —
the shard plan and the reconciliation depend only on the input — (b) agree
with the sequential greedy merging strategy structurally on both the size-
and error-bounded modes, and (c) plug into the :func:`repro.pipeline.compress`
facade with sane validation.
"""

from __future__ import annotations

import pytest

from repro.core.greedy import (
    DELTA_INFINITY,
    gms_reduce_to_error,
    gms_reduce_to_size,
    greedy_reduce_to_size,
)
from repro.datasets import (
    synthetic_grouped_segments,
    synthetic_sequential_segments,
)
from repro.parallel import (
    DEFAULT_SHARD_SIZE,
    encode_segments,
    plan_shards,
    reduce_segments_parallel,
)
from repro.pipeline import compress


def assert_same_segments(left, right):
    assert len(left) == len(right)
    for a, b in zip(left, right):
        assert a.group == b.group
        assert a.interval == b.interval
        assert a.values == pytest.approx(b.values, rel=1e-9, abs=1e-9)


def assert_identical(left, right):
    """Byte-identity: same segments (exact floats) and same error float."""
    assert left.segments == right.segments
    assert left.error == right.error
    assert left.size == right.size
    assert left.merges == right.merges


# ----------------------------------------------------------------------
# Encoding and shard planning
# ----------------------------------------------------------------------
class TestEncodingAndPlanning:
    def test_encode_round_trip_metadata(self):
        segments = synthetic_grouped_segments(4, 9, dimensions=2, seed=1)
        encoded = encode_segments(segments)
        assert len(encoded) == len(segments)
        assert encoded.dimensions == 2
        assert len(encoded.group_keys) == 4
        for index, segment in enumerate(segments):
            assert encoded.group_keys[encoded.groups[index]] == segment.group
            assert encoded.starts[index] == segment.interval.start
            assert encoded.ends[index] == segment.interval.end

    def test_encode_rejects_mixed_dimensions(self):
        a = synthetic_sequential_segments(3, dimensions=1, seed=2)
        b = synthetic_sequential_segments(3, dimensions=2, seed=2)
        with pytest.raises(ValueError, match="same number"):
            encode_segments(a + b)

    def test_shards_cover_input_and_cut_at_run_boundaries(self):
        segments = synthetic_grouped_segments(10, 13, dimensions=1, seed=3)
        encoded = encode_segments(segments)
        shards = plan_shards(encoded, shard_size=20)
        assert shards[0][0] == 0
        assert shards[-1][1] == len(segments)
        for (_, hi), (lo, _) in zip(shards, shards[1:]):
            assert hi == lo
            # Every cut is a run boundary: a group change in this dataset.
            assert segments[hi - 1].group != segments[hi].group

    def test_indivisible_run_stays_whole(self):
        segments = synthetic_sequential_segments(100, dimensions=1, seed=4)
        encoded = encode_segments(segments)
        assert plan_shards(encoded, shard_size=10) == [(0, 100)]

    def test_shard_plan_is_independent_of_workers(self):
        # The plan is a function of the input and shard_size only; this is
        # what makes the reduction bit-identical across worker counts.
        segments = synthetic_grouped_segments(6, 50, dimensions=1, seed=5)
        encoded = encode_segments(segments)
        assert plan_shards(encoded, 70) == plan_shards(encoded, 70)

    def test_invalid_shard_size(self):
        encoded = encode_segments(
            synthetic_sequential_segments(5, dimensions=1, seed=6)
        )
        with pytest.raises(ValueError, match="shard_size"):
            plan_shards(encoded, 0)


# ----------------------------------------------------------------------
# Worker-count determinism (the core guarantee)
# ----------------------------------------------------------------------
class TestWorkerDeterminism:
    @pytest.mark.parametrize("seed", [11, 12, 13])
    @pytest.mark.parametrize("shard_size", [17, 64, 100_000])
    def test_size_bounded_identical_across_workers(self, seed, shard_size):
        segments = synthetic_grouped_segments(8, 25, dimensions=2, seed=seed)
        baseline = reduce_segments_parallel(
            segments, size=40, workers=1, shard_size=shard_size
        )
        for workers in (2, 4):
            candidate = reduce_segments_parallel(
                segments, size=40, workers=workers, shard_size=shard_size
            )
            assert_identical(baseline, candidate)

    @pytest.mark.parametrize("seed", [21, 22])
    @pytest.mark.parametrize("epsilon", [0.05, 0.4, 0.9])
    def test_error_bounded_identical_across_workers(self, seed, epsilon):
        segments = synthetic_grouped_segments(6, 30, dimensions=2, seed=seed)
        baseline = reduce_segments_parallel(
            segments, max_error=epsilon, workers=1, shard_size=37
        )
        candidate = reduce_segments_parallel(
            segments, max_error=epsilon, workers=3, shard_size=37
        )
        assert_identical(baseline, candidate)

    def test_pipeline_workers_identical(self):
        segments = synthetic_grouped_segments(7, 40, dimensions=1, seed=31)
        baseline = compress(list(segments), size=50, workers=1, shard_size=55)
        for workers in (2, 4):
            candidate = compress(
                list(segments), size=50, workers=workers, shard_size=55
            )
            assert candidate.segments == baseline.segments
            assert candidate.error == baseline.error
        streamed = compress(iter(segments), size=50, workers=2, shard_size=55)
        assert streamed.segments == baseline.segments

    def test_workers_zero_uses_all_cores(self):
        segments = synthetic_grouped_segments(5, 20, dimensions=1, seed=32)
        baseline = reduce_segments_parallel(segments, size=30, workers=1)
        candidate = reduce_segments_parallel(segments, size=30, workers=0)
        assert_identical(baseline, candidate)


# ----------------------------------------------------------------------
# Equivalence with the sequential greedy merging strategy
# ----------------------------------------------------------------------
class TestGMSEquivalence:
    @pytest.mark.parametrize("seed", [41, 42, 43])
    def test_size_bounded_matches_gms(self, seed):
        segments = synthetic_grouped_segments(9, 21, dimensions=3, seed=seed)
        for size in (15, 60, 150):
            reference = gms_reduce_to_size(segments, size)
            candidate = reduce_segments_parallel(
                segments, size=size, shard_size=43
            )
            assert_same_segments(reference.segments, candidate.segments)
            assert candidate.error == pytest.approx(reference.error)
            assert candidate.merges == reference.merges

    @pytest.mark.parametrize("seed", [51, 52])
    def test_error_bounded_matches_gms(self, seed):
        segments = synthetic_grouped_segments(5, 24, dimensions=2, seed=seed)
        for epsilon in (0.0, 0.1, 0.5):
            reference = gms_reduce_to_error(segments, epsilon)
            candidate = reduce_segments_parallel(
                segments, max_error=epsilon, shard_size=29
            )
            assert_same_segments(reference.segments, candidate.segments)
            assert candidate.error == pytest.approx(reference.error, abs=1e-6)

    @pytest.mark.parametrize("seed", [51, 52])
    def test_epsilon_one_reaches_cmin(self, seed):
        # At ε = 1 the consumed keys telescope to exactly SSE_max, so the
        # engine must reach cmin; the sequential reference can stop one
        # merge short here when its pairwise key sum lands a few ulps above
        # its prefix-sum threshold, so structural equality is only asserted
        # away from the budget boundary (see test_error_bounded_matches_gms).
        from repro.core import cmin, max_error

        segments = synthetic_grouped_segments(5, 24, dimensions=2, seed=seed)
        candidate = reduce_segments_parallel(
            segments, max_error=1.0, shard_size=29
        )
        assert candidate.size == cmin(segments)
        assert candidate.error <= max_error(segments) * (1 + 1e-9) + 1e-9

    def test_matches_online_with_infinite_delta(self):
        segments = synthetic_grouped_segments(6, 35, dimensions=2, seed=61)
        online = greedy_reduce_to_size(
            iter(segments), 30, delta=DELTA_INFINITY
        )
        sharded = reduce_segments_parallel(segments, size=30, shard_size=70)
        assert_same_segments(online.segments, sharded.segments)

    def test_single_run_input_matches_gms(self):
        segments = synthetic_sequential_segments(300, dimensions=1, seed=62)
        reference = gms_reduce_to_size(segments, 25)
        candidate = reduce_segments_parallel(segments, size=25)
        assert_same_segments(reference.segments, candidate.segments)

    def test_stops_at_global_cmin(self):
        # 4 groups -> cmin = 4; a bound below that silently stops at cmin,
        # matching gms_reduce_to_size.
        segments = synthetic_grouped_segments(4, 10, dimensions=1, seed=63)
        result = reduce_segments_parallel(segments, size=1, shard_size=15)
        assert result.size == 4

    def test_weighted_reduction(self):
        segments = synthetic_sequential_segments(80, dimensions=2, seed=64)
        weights = (1.0, 5.0)
        reference = gms_reduce_to_size(segments, 20, weights)
        candidate = reduce_segments_parallel(
            segments, size=20, weights=weights
        )
        assert_same_segments(reference.segments, candidate.segments)


# ----------------------------------------------------------------------
# Validation and edge cases
# ----------------------------------------------------------------------
class TestValidationAndEdges:
    def test_requires_exactly_one_bound(self):
        segments = synthetic_sequential_segments(10, dimensions=1, seed=71)
        with pytest.raises(ValueError, match="exactly one"):
            reduce_segments_parallel(segments)
        with pytest.raises(ValueError, match="exactly one"):
            reduce_segments_parallel(segments, size=3, max_error=0.5)

    def test_rejects_invalid_bounds(self):
        segments = synthetic_sequential_segments(10, dimensions=1, seed=72)
        with pytest.raises(ValueError, match="size"):
            reduce_segments_parallel(segments, size=0)
        with pytest.raises(ValueError, match="epsilon"):
            reduce_segments_parallel(segments, max_error=1.5)
        with pytest.raises(ValueError, match="workers"):
            reduce_segments_parallel(segments, size=3, workers=-1)
        # Must not be swallowed by the default-coalescing (`0 or default`).
        with pytest.raises(ValueError, match="shard_size"):
            reduce_segments_parallel(segments, size=3, shard_size=0)
        with pytest.raises(ValueError, match="shard_size"):
            compress(segments, size=3, workers=1, shard_size=0)

    def test_pipeline_rejects_workers_with_dp(self):
        segments = synthetic_sequential_segments(10, dimensions=1, seed=73)
        with pytest.raises(ValueError, match="workers"):
            compress(segments, size=3, method="dp", workers=2)

    def test_empty_input(self):
        result = reduce_segments_parallel([], size=5)
        assert result.size == 0
        assert result.segments == []
        result = compress(iter([]), size=5, workers=2)
        assert result.size == 0

    def test_single_segment(self):
        segments = synthetic_sequential_segments(1, dimensions=1, seed=74)
        result = reduce_segments_parallel(segments, size=5)
        assert result.segments == segments
        assert result.error == 0.0

    def test_size_larger_than_input_is_identity(self):
        segments = synthetic_sequential_segments(12, dimensions=2, seed=75)
        result = reduce_segments_parallel(segments, size=100, shard_size=5)
        assert result.segments == segments
        assert result.error == 0.0
        assert result.merges == 0

    def test_epsilon_zero_forbids_lossy_merges(self):
        segments = synthetic_sequential_segments(30, dimensions=1, seed=76)
        result = reduce_segments_parallel(segments, max_error=0.0)
        assert result.segments == segments

    def test_compression_result_metadata(self):
        segments = synthetic_grouped_segments(3, 15, dimensions=1, seed=77)
        result = compress(list(segments), size=10, workers=2, shard_size=20)
        assert result.method == "greedy"
        assert result.backend == "numpy"
        assert result.input_size == len(segments)
        assert result.max_heap_size == 0
        assert result.merges == len(segments) - result.size

    def test_default_shard_size_is_input_only(self):
        # Guards the invariant documented in repro.parallel: shard planning
        # must never consult the worker count.
        assert DEFAULT_SHARD_SIZE > 0

    def test_pta_facade_workers(self):
        from repro import pta
        from repro.datasets import synthetic_relation

        relation = synthetic_relation(60, dimensions=1, groups=3, seed=78)
        sequential = pta(
            relation, ["grp"], {"avg": ("avg", "v0")},
            size=10, method="greedy", delta=DELTA_INFINITY,
        )
        sharded = pta(
            relation, ["grp"], {"avg": ("avg", "v0")},
            size=10, method="greedy", workers=2,
        )
        assert len(sharded) == len(sequential)
        for (seq_values, seq_interval), (par_values, par_interval) in zip(
            sequential.rows(), sharded.rows()
        ):
            assert par_interval == seq_interval
            assert par_values[:1] == seq_values[:1]  # the group column
            assert par_values[1:] == pytest.approx(seq_values[1:])
        with pytest.raises(ValueError, match="workers"):
            pta(relation, ["grp"], {"avg": ("avg", "v0")}, size=10,
                method="dp", workers=2)
