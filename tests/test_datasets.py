"""Unit tests for the dataset generators and the Table 1 query catalogue."""

import pytest

from repro.core import cmin
from repro.datasets import (
    chaotic_series,
    etds_cases,
    generate_etds,
    generate_incumbents,
    incumbents_cases,
    series_to_relation,
    series_to_segments,
    synthetic_grouped_segments,
    synthetic_relation,
    synthetic_sequential_segments,
    table1_catalogue,
    tide_series,
    timeseries_cases,
    wind_series,
)


class TestSyntheticGenerators:
    def test_sequential_segments_have_no_gaps(self):
        segments = synthetic_sequential_segments(100, dimensions=3, seed=1)
        assert len(segments) == 100
        assert cmin(segments) == 1
        assert segments[0].dimensions == 3

    def test_grouped_segments_have_one_run_per_group(self):
        segments = synthetic_grouped_segments(10, 20, dimensions=2, seed=1)
        assert len(segments) == 200
        assert cmin(segments) == 10

    def test_seed_reproducibility(self):
        assert synthetic_sequential_segments(50, seed=3) == synthetic_sequential_segments(50, seed=3)
        assert synthetic_sequential_segments(50, seed=3) != synthetic_sequential_segments(50, seed=4)

    def test_synthetic_relation_shape(self):
        relation = synthetic_relation(200, dimensions=2, groups=5, seed=2)
        assert len(relation) == 200
        assert relation.schema.columns == ("grp", "v0", "v1")

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            synthetic_sequential_segments(-1)
        with pytest.raises(ValueError):
            synthetic_relation(-5)


class TestEmployeeGenerators:
    def test_etds_schema_and_reproducibility(self):
        relation = generate_etds(employees=50, months=60, seed=9)
        assert relation.schema.columns == (
            "emp_no", "sex", "dept", "title", "salary"
        )
        assert relation == generate_etds(employees=50, months=60, seed=9)

    def test_etds_has_overlapping_intervals(self):
        relation = generate_etds(employees=100, months=80, seed=1)
        assert not relation.is_sequential([])  # heavy overlap without grouping

    def test_etds_parameter_validation(self):
        with pytest.raises(ValueError):
            generate_etds(employees=0)
        with pytest.raises(ValueError):
            generate_etds(months=5)

    def test_incumbents_schema_and_gaps(self):
        relation = generate_incumbents(
            departments=3, projects_per_department=2,
            incumbents_per_project=4, months=120, seed=5,
        )
        assert relation.schema.columns == ("dept", "proj", "salary")
        assert len(relation) > 0

    def test_incumbents_parameter_validation(self):
        with pytest.raises(ValueError):
            generate_incumbents(months=10)


class TestTimeSeriesGenerators:
    def test_lengths(self):
        assert len(chaotic_series(500, seed=1)) == 500
        assert len(tide_series(300, seed=1)) == 300
        assert len(wind_series(100, dimensions=5, seed=1)) == 100

    def test_wind_dimensionality(self):
        rows = wind_series(50, dimensions=12, seed=2)
        assert all(len(row) == 12 for row in rows)

    def test_chaotic_series_is_not_constant_or_divergent(self):
        values = chaotic_series(1000, seed=3)
        assert max(values) != min(values)
        assert all(abs(value) < 1e4 for value in values)

    def test_tide_series_is_periodicish(self):
        values = tide_series(1000, seed=4)
        mean = sum(values) / len(values)
        assert 150 < mean < 350  # oscillates around the configured base level

    def test_series_to_segments_unit_intervals(self):
        segments = series_to_segments([1.0, 2.0, 3.0])
        assert all(segment.length == 1 for segment in segments)
        assert cmin(segments) == 1

    def test_series_to_relation_multichannel(self):
        relation = series_to_relation(wind_series(20, dimensions=3, seed=5))
        assert relation.schema.columns == ("v0", "v1", "v2")
        assert len(relation) == 20

    def test_invalid_lengths_rejected(self):
        with pytest.raises(ValueError):
            chaotic_series(0)
        with pytest.raises(ValueError):
            tide_series(0)
        with pytest.raises(ValueError):
            wind_series(0)


class TestQueryCatalogue:
    def test_tiny_catalogue_contains_all_queries(self):
        catalogue = table1_catalogue("tiny")
        assert set(catalogue) == {
            "E1", "E2", "E3", "E4", "I1", "I2", "I3", "T1", "T2", "T3"
        }

    def test_case_metadata_is_consistent(self):
        for case in table1_catalogue("tiny").values():
            assert case.ita_size == len(case.segments)
            assert 1 <= case.cmin <= max(case.ita_size, 1)
            assert case.dimensions == len(case.value_columns)

    def test_grouped_queries_have_many_runs(self):
        catalogue = table1_catalogue("tiny", families=("incumbents",))
        for case in catalogue.values():
            assert case.cmin > 1

    def test_ungrouped_etds_queries_have_single_run(self):
        cases = {case.name: case for case in etds_cases("tiny")}
        for name in ("E1", "E2", "E3"):
            assert cases[name].cmin == 1
        assert cases["E4"].cmin > 1

    def test_timeseries_cases_dimensions(self):
        cases = {case.name: case for case in timeseries_cases("tiny")}
        assert cases["T1"].dimensions == 1
        assert cases["T3"].dimensions == 12

    def test_unknown_scale_and_family_rejected(self):
        with pytest.raises(ValueError):
            etds_cases("enormous")
        with pytest.raises(ValueError):
            incumbents_cases("enormous")
        with pytest.raises(ValueError):
            table1_catalogue("tiny", families=("nonexistent",))
