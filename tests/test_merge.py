"""Unit tests for the merge machinery (Definitions 2-4)."""

import random

import pytest

from repro import Interval
from repro.core import (
    AggregateSegment,
    adjacency_flags,
    adjacent,
    cmin,
    gap_positions,
    maximal_runs,
    merge,
    merge_run,
    reduce_random,
    segments_from_relation,
    segments_to_relation,
)
from conftest import make_segment


class TestAdjacency:
    def test_adjacent_same_group_meeting_intervals(self):
        assert adjacent(make_segment(1, 2, 5.0), make_segment(3, 4, 7.0))

    def test_not_adjacent_with_gap(self):
        assert not adjacent(make_segment(1, 2, 5.0), make_segment(4, 5, 7.0))

    def test_not_adjacent_different_groups(self):
        left = make_segment(1, 2, 5.0, group=("A",))
        right = make_segment(3, 4, 5.0, group=("B",))
        assert not adjacent(left, right)

    def test_not_adjacent_in_reverse_order(self):
        assert not adjacent(make_segment(3, 4, 5.0), make_segment(1, 2, 5.0))

    def test_paper_example_adjacencies(self, proj_segments):
        flags = adjacency_flags(proj_segments)
        # s1 ≺ s2 ≺ s3 ≺ s4 ≺ s5, s5 !≺ s6 (group change), s6 !≺ s7 (gap).
        assert flags == [True, True, True, True, False, False]


class TestMergeOperator:
    def test_example_3(self):
        s1 = make_segment(1, 2, 800.0, group=("A",))
        s2 = make_segment(3, 3, 600.0, group=("A",))
        merged = merge(s1, s2)
        assert merged.group == ("A",)
        assert merged.interval == Interval(1, 3)
        assert merged.values[0] == pytest.approx(733.3333, abs=1e-3)

    def test_merge_is_length_weighted(self):
        merged = merge(make_segment(1, 3, 10.0), make_segment(4, 4, 2.0))
        assert merged.values[0] == pytest.approx((3 * 10 + 1 * 2) / 4)

    def test_merge_multidimensional(self):
        left = AggregateSegment((), (1.0, 10.0), Interval(1, 1))
        right = AggregateSegment((), (3.0, 20.0), Interval(2, 2))
        merged = merge(left, right)
        assert merged.values == (2.0, 15.0)

    def test_merge_rejects_non_adjacent(self):
        with pytest.raises(ValueError):
            merge(make_segment(1, 2, 1.0), make_segment(5, 6, 1.0))

    def test_merge_run_equals_pairwise_folding(self):
        run = [make_segment(i, i, float(i * i)) for i in range(1, 6)]
        folded = run[0]
        for segment in run[1:]:
            folded = merge(folded, segment)
        collapsed = merge_run(run)
        assert collapsed.interval == folded.interval
        assert collapsed.values[0] == pytest.approx(folded.values[0])

    def test_merge_run_rejects_gaps(self):
        with pytest.raises(ValueError):
            merge_run([make_segment(1, 2, 1.0), make_segment(4, 5, 1.0)])

    def test_merge_run_empty_rejected(self):
        with pytest.raises(ValueError):
            merge_run([])


class TestRunsAndBounds:
    def test_cmin_running_example(self, proj_segments):
        assert cmin(proj_segments) == 3

    def test_cmin_empty(self):
        assert cmin([]) == 0

    def test_maximal_runs_running_example(self, proj_segments):
        runs = maximal_runs(proj_segments)
        assert [len(run) for run in runs] == [5, 1, 1]

    def test_gap_positions_running_example(self, proj_segments):
        # Example 13: G = <5, 6>.
        assert gap_positions(proj_segments) == [5, 6]

    def test_gap_positions_no_gaps(self):
        segments = [make_segment(i, i, 1.0) for i in range(1, 6)]
        assert gap_positions(segments) == []


class TestReduction:
    def test_reduce_random_reaches_requested_size(self, proj_segments):
        reduced = reduce_random(proj_segments, 4, random.Random(1))
        assert len(reduced) == 4

    def test_reduce_random_never_crosses_boundaries(self, proj_segments):
        reduced = reduce_random(proj_segments, 3, random.Random(2))
        groups = [segment.group for segment in reduced]
        assert groups == [("A",), ("B",), ("B",)]

    def test_reduce_random_below_cmin_rejected(self, proj_segments):
        with pytest.raises(ValueError):
            reduce_random(proj_segments, 2)

    def test_reduce_random_preserves_total_duration(self, proj_segments):
        reduced = reduce_random(proj_segments, 3, random.Random(3))
        assert sum(s.length for s in reduced) == sum(
            s.length for s in proj_segments
        )


class TestConversions:
    def test_round_trip(self, proj_ita, proj_segments):
        relation = segments_to_relation(proj_segments, ["proj"], ["avg_sal"])
        assert segments_from_relation(relation, ["proj"], ["avg_sal"]) == proj_segments

    def test_segments_are_sorted_group_then_time(self):
        relation = segments_to_relation(
            [
                make_segment(5, 6, 1.0, group=("B",)),
                make_segment(1, 2, 2.0, group=("A",)),
            ],
            ["g"],
            ["v"],
        )
        segments = segments_from_relation(relation, ["g"], ["v"])
        assert [segment.group for segment in segments] == [("A",), ("B",)]

    def test_sort_can_be_disabled(self):
        relation = segments_to_relation(
            [
                make_segment(5, 6, 1.0, group=("B",)),
                make_segment(1, 2, 2.0, group=("A",)),
            ],
            ["g"],
            ["v"],
        )
        unsorted_segments = segments_from_relation(
            relation, ["g"], ["v"], sort=False
        )
        assert [segment.group for segment in unsorted_segments] == [("B",), ("A",)]
