"""Wire-format roundtrips and rejection paths (repro.service.wire).

The acceptance criterion: ``decode(encode(x)) == x`` exactly — same float
bits, same groups, same intervals — for every payload shape the serving
layer produces, and every malformed buffer (non-finite values, foreign
magic, future versions, truncation) is rejected with a clear error instead
of deserialising garbage.
"""

from __future__ import annotations

import math
import random
import struct

import numpy as np
import pytest

from repro import Interval, compress
from repro.core import AggregateSegment
from repro.parallel import EncodedSegments, encode_segments as to_columns
from repro.service import (
    WIRE_VERSION,
    WireError,
    decode_encoded,
    decode_result,
    decode_segments,
    encode_result,
    encode_segments,
    segments_from_jsonl,
    segments_to_jsonl,
)
from repro.storage import ColumnCodecError, pack_columns, unpack_columns


def random_segments(
    count: int, seed: int, groups: int = 1, dimensions: int = 1
) -> list[AggregateSegment]:
    rng = random.Random(seed)
    stream: list[AggregateSegment] = []
    for g in range(groups):
        group = (f"g{g}", g) if groups > 1 else ()
        time = rng.randrange(0, 5)
        for _ in range(count // groups):
            length = rng.randrange(1, 4)
            stream.append(
                AggregateSegment(
                    group,
                    tuple(
                        rng.uniform(-100.0, 100.0) for _ in range(dimensions)
                    ),
                    Interval(time, time + length - 1),
                )
            )
            time += length + (rng.randrange(1, 4) if rng.random() < 0.2 else 0)
    return stream


# ----------------------------------------------------------------------
# Exact roundtrips
# ----------------------------------------------------------------------
class TestSegmentRoundtrip:
    def test_empty_stream(self):
        blob = encode_segments([])
        assert decode_segments(blob) == []
        encoded = decode_encoded(blob)
        assert len(encoded) == 0
        assert encoded.group_keys == []

    def test_empty_group_tuples(self):
        stream = random_segments(40, seed=1)
        assert all(segment.group == () for segment in stream)
        assert decode_segments(encode_segments(stream)) == stream

    def test_single_segment_runs(self):
        # Every segment is its own maximal run (gaps everywhere).
        stream = [
            AggregateSegment((), (float(i),), Interval(3 * i, 3 * i + 1))
            for i in range(10)
        ]
        assert decode_segments(encode_segments(stream)) == stream
        single = [AggregateSegment(("only",), (1.25,), Interval(0, 9))]
        assert decode_segments(encode_segments(single)) == single

    @pytest.mark.parametrize("dimensions", [1, 3, 10])
    def test_p_dimensional_values(self, dimensions):
        stream = random_segments(60, seed=2, dimensions=dimensions)
        back = decode_segments(encode_segments(stream))
        assert back == stream  # dataclass equality = exact float equality

    def test_grouped_mixed_key_types(self):
        stream = random_segments(60, seed=3, groups=4, dimensions=2)
        back = decode_segments(encode_segments(stream))
        assert back == stream
        assert back[0].group == stream[0].group
        assert isinstance(back[0].group[1], int)

    def test_float_bit_patterns_survive(self):
        # Exact-roundtrip stress: denormals, negative zero, ulp neighbours.
        values = (5e-324, -0.0, math.nextafter(1.0, 2.0), 1e308)
        stream = [AggregateSegment((), values, Interval(0, 3))]
        back = decode_segments(encode_segments(stream))
        assert struct.pack("<4d", *back[0].values) == struct.pack(
            "<4d", *values
        )

    def test_accepts_preencoded_columns(self):
        stream = random_segments(50, seed=4, groups=2)
        encoded = to_columns(stream)
        assert decode_segments(encode_segments(encoded)) == stream

    def test_decoded_columns_feed_the_sharded_engine(self):
        stream = random_segments(80, seed=5, groups=2)
        decoded = decode_encoded(encode_segments(stream))
        assert isinstance(decoded, EncodedSegments)
        via_wire = compress(decoded, size=10, workers=1)
        direct = compress(stream, size=10, workers=1)
        assert via_wire.segments == direct.segments


class TestResultRoundtrip:
    def test_result_payload_exact(self):
        stream = random_segments(70, seed=6, groups=2, dimensions=2)
        result = compress(stream, size=9)
        back = decode_result(encode_result(result))
        assert back.segments == result.segments
        assert back.error == result.error  # exact float equality
        assert (back.size, back.input_size) == (result.size, result.input_size)
        assert (back.merges, back.max_heap_size) == (
            result.merges, result.max_heap_size,
        )
        assert (back.method, back.backend) == (result.method, result.backend)
        assert back.group_columns == result.group_columns
        assert back.value_columns == result.value_columns
        assert back.timestamp_name == result.timestamp_name

    def test_empty_result(self):
        result = compress([], size=5)
        back = decode_result(encode_result(result))
        assert back.segments == [] and back.size == 0


class TestJsonlRoundtrip:
    def test_roundtrip_exact(self):
        stream = random_segments(50, seed=7, groups=3, dimensions=2)
        assert segments_from_jsonl(segments_to_jsonl(stream)) == stream

    def test_empty(self):
        assert segments_to_jsonl([]) == ""
        assert segments_from_jsonl("") == []

    def test_rejects_non_finite(self):
        bad = [AggregateSegment((), (math.nan,), Interval(0, 1))]
        with pytest.raises(WireError, match="non-finite"):
            segments_to_jsonl(bad)

    def test_rejects_malformed_lines(self):
        with pytest.raises(WireError, match="line 1"):
            segments_from_jsonl("not json\n")
        with pytest.raises(WireError, match="JSON object"):
            segments_from_jsonl("[1, 2]\n")
        with pytest.raises(WireError, match="malformed segment"):
            segments_from_jsonl('{"values": [1.0]}\n')


# ----------------------------------------------------------------------
# Rejection paths
# ----------------------------------------------------------------------
class TestRejection:
    @pytest.mark.parametrize("bad", [math.nan, math.inf, -math.inf])
    def test_non_finite_values_rejected_with_clear_error(self, bad):
        stream = [
            AggregateSegment((), (1.0,), Interval(0, 0)),
            AggregateSegment((), (bad,), Interval(1, 1)),
        ]
        with pytest.raises(WireError, match="non-finite"):
            encode_segments(stream)
        result = compress([AggregateSegment((), (1.0,), Interval(0, 0))],
                          size=1)
        result.segments[0] = AggregateSegment((), (bad,), Interval(0, 0))
        with pytest.raises(WireError, match="non-finite"):
            encode_result(result)

    def test_cross_version_header_rejected(self):
        blob = bytearray(encode_segments(random_segments(10, seed=8)))
        # The uint16 version field sits right after the 4-byte magic.
        struct.pack_into("<H", blob, 4, WIRE_VERSION + 1)
        with pytest.raises(WireError, match="version"):
            decode_segments(bytes(blob))

    def test_wrong_magic_rejected(self):
        blob = b"XXXX" + encode_segments([])[4:]
        with pytest.raises(WireError, match="magic"):
            decode_segments(blob)

    def test_result_magic_is_not_a_segment_payload(self):
        result = compress(random_segments(10, seed=9), size=3)
        with pytest.raises(WireError, match="magic"):
            decode_segments(encode_result(result))

    def test_truncated_buffer_rejected(self):
        blob = encode_segments(random_segments(20, seed=10))
        with pytest.raises(WireError, match="truncated|too short"):
            decode_segments(blob[: len(blob) // 2])
        with pytest.raises(WireError, match="too short"):
            decode_segments(b"PT")

    def test_trailing_garbage_rejected(self):
        blob = encode_segments(random_segments(5, seed=11))
        with pytest.raises(WireError, match="trailing"):
            decode_segments(blob + b"\x00\x01")

    def test_malformed_column_shapes_rejected(self):
        # A structurally valid container whose columns have the wrong
        # dtype/ndim must fail as WireError, not as a downstream TypeError.
        from repro.service import SEGMENTS_MAGIC, WIRE_VERSION

        good = {
            "starts": np.zeros(1, np.int64),
            "ends": np.zeros(1, np.int64),
            "values": np.zeros((1, 1)),
            "groups": np.zeros(1, np.int64),
            "group_keys": np.frombuffer(b"[[]]", np.uint8),
        }
        for name, bad in (
            ("starts", np.zeros((1, 1))),        # float, 2-D
            ("ends", np.zeros(1)),               # float
            ("groups", np.zeros((1, 1), np.int64)),  # 2-D
            ("values", np.zeros(1)),             # 1-D
        ):
            columns = dict(good)
            columns[name] = bad
            blob = pack_columns(columns, SEGMENTS_MAGIC, WIRE_VERSION)
            with pytest.raises(WireError, match=f"{name} column"):
                decode_segments(blob)

    def test_unencodable_group_values_rejected(self):
        stream = [
            AggregateSegment((object(),), (1.0,), Interval(0, 0)),
        ]
        with pytest.raises(WireError, match="JSON-encodable"):
            encode_segments(stream)


# ----------------------------------------------------------------------
# The underlying column container
# ----------------------------------------------------------------------
class TestColumnContainer:
    def test_dtype_and_shape_preserved(self):
        columns = {
            "a": np.arange(6, dtype=np.int32).reshape(2, 3),
            "b": np.array([1.5, 2.5], dtype=np.float32),
            "c": np.zeros((0, 4), dtype=np.float64),
        }
        back = unpack_columns(
            pack_columns(columns, b"TEST", 7), b"TEST", 7
        )
        for name, array in columns.items():
            assert back[name].dtype == array.dtype
            assert back[name].shape == array.shape
            assert np.array_equal(back[name], array)

    def test_version_gate(self):
        blob = pack_columns({"a": np.zeros(1)}, b"TEST", 1)
        with pytest.raises(ColumnCodecError, match="version 1"):
            unpack_columns(blob, b"TEST", 2)

    def test_payload_size_mismatch(self):
        blob = bytearray(pack_columns({"a": np.zeros(4)}, b"TEST", 1))
        # Corrupt the payload-size field of the only column: it sits 8
        # bytes before the payload, which occupies the last 32 bytes.
        struct.pack_into("<Q", blob, len(blob) - 32 - 8, 24)
        with pytest.raises(ColumnCodecError):
            unpack_columns(bytes(blob), b"TEST", 1)

    def test_decoded_arrays_are_writable(self):
        back = unpack_columns(
            pack_columns({"a": np.arange(3.0)}, b"TEST", 1), b"TEST", 1
        )
        back["a"][0] = 42.0  # frombuffer views are read-only; copies not
