"""Unit tests for schemas, temporal relations and coalescing."""

import pytest

from repro import Interval, TemporalRelation, TemporalSchema, coalesce
from repro.temporal import SchemaError, split_into_maximal_segments


class TestSchema:
    def test_basic(self):
        schema = TemporalSchema(("a", "b"))
        assert len(schema) == 2
        assert "a" in schema
        assert schema.index_of("b") == 1

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            TemporalSchema(("a", "a"))

    def test_timestamp_clash_rejected(self):
        with pytest.raises(SchemaError):
            TemporalSchema(("a", "T"))

    def test_unknown_attribute(self):
        with pytest.raises(SchemaError):
            TemporalSchema(("a",)).index_of("zzz")

    def test_project_and_extend(self):
        schema = TemporalSchema(("a", "b", "c"))
        assert schema.project(["c", "a"]).columns == ("c", "a")
        assert schema.extend(["d"]).columns == ("a", "b", "c", "d")


class TestRelationConstruction:
    def test_from_records_with_interval_objects(self, proj_relation):
        assert len(proj_relation) == 5
        assert proj_relation[0]["empl"] == "John"
        assert proj_relation[0].interval == Interval(1, 4)

    def test_from_records_with_tuple_intervals(self):
        relation = TemporalRelation.from_records(
            columns=("x",), records=[(1, (2, 5)), (2, (6, 8))]
        )
        assert relation.intervals() == [Interval(2, 5), Interval(6, 8)]

    def test_arity_mismatch_rejected(self):
        relation = TemporalRelation(TemporalSchema(("a", "b")))
        with pytest.raises(SchemaError):
            relation.append((1,), Interval(1, 2))

    def test_bad_interval_type_rejected(self):
        relation = TemporalRelation(TemporalSchema(("a",)))
        with pytest.raises(TypeError):
            relation.append((1,), (1, 2))

    def test_copy_is_independent(self, proj_relation):
        clone = proj_relation.copy()
        clone.append(("X", "C", 1), Interval(1, 1))
        assert len(proj_relation) == 5
        assert len(clone) == 6


class TestRelationInspection:
    def test_column_access(self, proj_relation):
        assert proj_relation.column("sal") == [800, 400, 300, 500, 500]

    def test_timespan(self, proj_relation):
        assert proj_relation.timespan() == Interval(1, 8)

    def test_timespan_empty_raises(self):
        with pytest.raises(ValueError):
            TemporalRelation(TemporalSchema(("a",))).timespan()

    def test_total_duration(self, proj_relation):
        assert proj_relation.total_duration() == 4 + 4 + 4 + 2 + 2

    def test_groups(self, proj_relation):
        groups = proj_relation.groups(["proj"])
        assert set(groups) == {("A",), ("B",)}
        assert len(groups[("A",)]) == 3

    def test_tuple_projection_and_dict(self, proj_relation):
        row = proj_relation[0]
        assert row.project(["sal", "proj"]) == (800, "A")
        assert row.value_dict() == {"empl": "John", "proj": "A", "sal": 800}


class TestRelationOperations:
    def test_filter(self, proj_relation):
        only_b = proj_relation.filter(lambda row: row["proj"] == "B")
        assert len(only_b) == 2

    def test_project(self, proj_relation):
        projected = proj_relation.project(["proj", "sal"])
        assert projected.schema.columns == ("proj", "sal")
        assert projected[0].values == ("A", 800)

    def test_sorted_sequential_orders_by_group_then_time(self):
        relation = TemporalRelation.from_records(
            columns=("g", "v"),
            records=[
                ("b", 1, (5, 6)),
                ("a", 2, (3, 4)),
                ("a", 3, (1, 2)),
            ],
        )
        ordered = relation.sorted_sequential(["g"])
        assert [row["v"] for row in ordered] == [3, 2, 1]

    def test_is_sequential_true_for_ita_result(self, proj_ita):
        assert proj_ita.is_sequential(["proj"])

    def test_is_sequential_false_for_overlaps(self, proj_relation):
        assert not proj_relation.is_sequential(["proj"])

    def test_equality(self, proj_relation):
        assert proj_relation == proj_relation.copy()
        assert proj_relation != proj_relation.project(["proj"])


class TestCoalesce:
    def test_merges_value_equivalent_adjacent_tuples(self):
        relation = TemporalRelation.from_records(
            columns=("k", "v"),
            records=[
                ("a", 1.0, (1, 3)),
                ("a", 1.0, (4, 6)),
                ("a", 2.0, (7, 9)),
            ],
        )
        result = coalesce(relation)
        assert len(result) == 2
        assert result[0].interval == Interval(1, 6)

    def test_keeps_tuples_across_gaps(self):
        relation = TemporalRelation.from_records(
            columns=("v",), records=[(1.0, (1, 2)), (1.0, (5, 6))]
        )
        assert len(coalesce(relation)) == 2

    def test_merges_overlapping_value_equivalent_tuples(self):
        relation = TemporalRelation.from_records(
            columns=("v",), records=[(1.0, (1, 5)), (1.0, (3, 9))]
        )
        result = coalesce(relation)
        assert len(result) == 1
        assert result[0].interval == Interval(1, 9)

    def test_idempotent(self, proj_ita):
        once = coalesce(proj_ita)
        twice = coalesce(once)
        assert once == twice

    def test_respects_value_columns_argument(self):
        relation = TemporalRelation.from_records(
            columns=("k", "v"),
            records=[("a", 1.0, (1, 2)), ("b", 1.0, (3, 4))],
        )
        by_value_only = coalesce(relation, value_columns=["v"])
        assert len(by_value_only) == 1

    def test_split_into_maximal_segments(self, proj_ita):
        ordered = proj_ita.sorted_sequential(["proj"])
        segments = split_into_maximal_segments(ordered, ["proj"])
        assert [len(run) for run in segments] == [5, 1, 1]
