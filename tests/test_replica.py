"""Warm-standby replication: streaming, catch-up, failover bit-identity.

The contract under test is the failover guarantee of
:mod:`repro.cluster.replica`: a standby promoted after the primary dies
answers ``value_at`` / ``range_agg`` / ``window`` **bit-identically** to
an uncrashed oracle at every acknowledged push generation — on both
compute backends, across randomized streams, freeze schedules and crash
points.  Around it: the replication-lag surface of ``stats()`` and the
HTTP front end, WAL compaction (checkpoint-then-truncate), and the
standby's refusal to accept direct pushes.
"""

from __future__ import annotations

import json
import random
import socket
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.api import ExecutionPolicy
from repro.cluster import (
    Connection,
    RemoteError,
    ReplicationLink,
    standby_store,
    start_standby,
)
from repro.cluster.replica import (
    LINK_CONNECTED,
    LINK_DETACHED,
)
from repro.cluster.transport import (
    KIND_ACK,
    KIND_CATCHUP,
    KIND_HELLO,
    KIND_OK,
    KIND_PUSH,
    pack_envelope,
    recv_frame,
    send_frame,
)
from repro.datasets import synthetic_sequential_segments
from repro.obs import metrics as _metrics
from repro.service import (
    QueryEngine,
    ReplicationError,
    Service,
    ServiceError,
    SessionStore,
    WIRE_CONTENT_TYPE,
    encode_segments,
    start_in_background,
)
from repro.service.store import WAL_COMPACT_FLOOR_BYTES
from repro.util import failpoints
from repro.util.deadline import Deadline, DeadlineExceeded, deadline_scope
from repro.util.health import PeerHealth


def _wait_until(predicate, timeout=8.0, interval=0.01):
    """Poll ``predicate`` until it holds or ``timeout`` elapses."""
    limit = time.monotonic() + timeout
    while time.monotonic() < limit:
        if predicate():
            return True
        time.sleep(interval)
    return bool(predicate())


def _chunks(n=600, dims=2, seed=3, chunk=40):
    stream = synthetic_sequential_segments(n, dims, seed=seed)
    return [stream[i: i + chunk] for i in range(0, n, chunk)]


@pytest.fixture
def standbys():
    """Start standby servers on demand; shut every one down afterwards."""
    servers = []

    def _start(size=80, policy=None):
        server, _ = start_standby(standby_store(size=size, policy=policy))
        servers.append(server)
        return server

    yield _start
    for server in servers:
        server.shutdown()
        server.server_close()


def _assert_same_answers(promoted, oracle, hi):
    """Drive both stores through their own engines over the same probes."""
    left, right = QueryEngine(promoted), QueryEngine(oracle)
    for t in (0, 1, hi // 3, hi // 2, hi - 1, hi):
        assert left.value_at("k", t) == right.value_at("k", t)
    assert left.range_agg("k", 0, hi, "avg") == right.range_agg(
        "k", 0, hi, "avg"
    )
    assert left.range_agg("k", hi // 4, 3 * hi // 4, "sum") == (
        right.range_agg("k", hi // 4, 3 * hi // 4, "sum")
    )
    assert left.window("k", 0, hi, max(hi // 7, 1)) == right.window(
        "k", 0, hi, max(hi // 7, 1)
    )


# ----------------------------------------------------------------------
# Streaming replication and the lag surface
# ----------------------------------------------------------------------
class TestReplicationStream:
    def test_streamed_pushes_reach_the_standby(self, standbys):
        standby = standbys()
        primary = SessionStore(size=80)
        link = ReplicationLink(standby.address)
        link.attach(primary)
        for chunk in _chunks():
            primary.push("k", chunk)
        assert link.connected
        assert standby.applied_seq == link.acked_seq >= 0
        assert standby.store.pushed("k") == primary.pushed("k")

    def test_stats_report_role_replicas_and_lag(self, standbys):
        standby = standbys()
        primary = SessionStore(size=80)
        link = ReplicationLink(standby.address)
        link.attach(primary)
        for chunk in _chunks(n=200, chunk=50):
            primary.push("k", chunk)
        stats = primary.stats()
        assert stats.role == "primary"
        assert stats.replicas == 1
        # Every ship waits for its ack, so a healthy link never lags.
        assert stats.replication_lag == 0
        assert stats.last_acked_generation == link.acked_seq
        assert standby.store.stats().role == "standby"
        assert stats.as_dict()["replication_lag"] == 0

    def test_freeze_events_replicate(self, standbys):
        standby = standbys()
        primary = SessionStore(size=80)
        oracle = SessionStore(size=80)
        link = ReplicationLink(standby.address)
        link.attach(primary)
        for index, chunk in enumerate(_chunks()):
            primary.push("k", chunk)
            oracle.push("k", chunk)
            if index in (4, 9):
                primary.freeze("k")
                oracle.freeze("k")
        # The standby's epoch boundaries must mirror the primary's —
        # they come exclusively from replicated freeze events.
        assert len(standby.store.frozen_epochs("k")) == 2
        _assert_same_answers(standby.promote(), oracle, hi=599)

    def test_detach_stops_streaming_without_failing_pushes(self, standbys):
        standby = standbys()
        primary = SessionStore(size=80)
        link = ReplicationLink(standby.address)
        link.attach(primary)
        chunks = _chunks(n=200, chunk=50)
        primary.push("k", chunks[0])
        applied = standby.store.pushed("k")
        link.detach()
        for chunk in chunks[1:]:
            primary.push("k", chunk)
        assert standby.store.pushed("k") == applied
        stats = primary.stats()
        assert stats.replicas == 0 and stats.replication_lag == 0

    def test_transport_fault_disconnects_link_not_primary(self, standbys):
        standby = standbys()
        primary = SessionStore(size=80)
        # auto_resync off: this test pins the *disconnect* behaviour —
        # with it on, the link would quietly rejoin the live standby.
        link = ReplicationLink(standby.address, auto_resync=False)
        link.attach(primary)
        chunks = _chunks(n=200, chunk=50)
        primary.push("k", chunks[0])
        applied = standby.store.pushed("k")
        with failpoints.activated(
            {"transport.send": failpoints.Raise(
                OSError(32, "Broken pipe"), times=1)}
        ):
            primary.push("k", chunks[1])  # ship fails; push must not
        for chunk in chunks[2:]:  # the link is down, pushes still land
            primary.push("k", chunk)
        assert not link.connected
        assert primary.stats().replicas == 0
        assert primary.pushed("k") == 200
        assert standby.store.pushed("k") == applied

    def test_attach_refused_when_standby_is_unreachable(self):
        primary = SessionStore(size=80)
        link = ReplicationLink("127.0.0.1:1", connect_timeout=0.2)
        from repro.cluster import TransportError

        with pytest.raises(TransportError):
            link.attach(primary)
        assert primary.stats().replicas == 0


# ----------------------------------------------------------------------
# Catch-up: attaching mid-history
# ----------------------------------------------------------------------
class TestCatchUp:
    def test_attach_after_history_replays_the_wal(self, standbys, tmp_path):
        primary = SessionStore(size=80, data_dir=tmp_path / "p")
        oracle = SessionStore(size=80)
        chunks = _chunks()
        for index, chunk in enumerate(chunks):
            if index == 8:  # attach mid-history: catch-up + live stream
                standby = standbys()
                link = ReplicationLink(standby.address)
                link.attach(primary)
            primary.push("k", chunk)
            oracle.push("k", chunk)
            if index == 3:
                primary.freeze("k")
                oracle.freeze("k")
        _assert_same_answers(standby.promote(), oracle, hi=599)
        primary.close()

    def test_memory_primary_with_live_pushes_is_refused(self, standbys):
        primary = SessionStore(size=80)
        primary.push("k", _chunks(n=80, chunk=80)[0])
        standby = standbys()
        link = ReplicationLink(standby.address)
        with pytest.raises(ServiceError, match="write-ahead log"):
            link.attach(primary)
        assert not link.connected
        assert primary.stats().replicas == 0

    def test_frozen_only_memory_primary_can_catch_up(self, standbys):
        # No WAL needed when every epoch is already frozen: the summaries
        # ship as FROZEN frames and the live stream continues from there.
        primary = SessionStore(size=80)
        oracle = SessionStore(size=80)
        chunks = _chunks()
        for chunk in chunks[:8]:
            primary.push("k", chunk)
            oracle.push("k", chunk)
        primary.freeze("k")
        oracle.freeze("k")
        standby = standbys()
        link = ReplicationLink(standby.address)
        link.attach(primary)
        for chunk in chunks[8:]:
            primary.push("k", chunk)
            oracle.push("k", chunk)
        _assert_same_answers(standby.promote(), oracle, hi=599)


# ----------------------------------------------------------------------
# Failover: the randomized bit-identity suite
# ----------------------------------------------------------------------
class TestPromotion:
    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_promoted_standby_matches_uncrashed_oracle(
        self, standbys, backend
    ):
        policy = ExecutionPolicy(backend=backend)
        standby = standbys(policy=policy)
        primary = SessionStore(size=80, policy=policy)
        oracle = SessionStore(size=80, policy=policy)
        link = ReplicationLink(standby.address)
        link.attach(primary)
        rng = random.Random(4 if backend == "python" else 5)
        chunks = _chunks(seed=13)
        crash_at = rng.randrange(3, len(chunks))
        pushed = 0
        for index, chunk in enumerate(chunks):
            if index == crash_at:
                break  # the primary "crashes": no further frames ship
            primary.push("k", chunk)
            oracle.push("k", chunk)
            pushed += len(chunk)
            if rng.random() < 0.2:
                primary.freeze("k")
                oracle.freeze("k")
        promoted = standby.promote()
        # Every push the primary acknowledged is on the standby.
        assert promoted.pushed("k") == pushed
        _assert_same_answers(promoted, oracle, hi=pushed - 1)

    @pytest.mark.slow
    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_randomized_crash_sweep(self, standbys, backend):
        policy = ExecutionPolicy(backend=backend)
        for seed in range(6):
            rng = random.Random(1000 + seed)
            standby = standbys(size=60, policy=policy)
            primary = SessionStore(size=60, policy=policy)
            oracle = SessionStore(size=60, policy=policy)
            link = ReplicationLink(standby.address)
            link.attach(primary)
            chunks = _chunks(n=400, seed=seed, chunk=25)
            crash_at = rng.randrange(1, len(chunks) + 1)
            pushed = 0
            for index, chunk in enumerate(chunks):
                if index == crash_at:
                    break
                primary.push("k", chunk)
                oracle.push("k", chunk)
                pushed += len(chunk)
                if rng.random() < 0.25:
                    primary.freeze("k")
                    oracle.freeze("k")
            promoted = standby.promote()
            assert promoted.pushed("k") == pushed
            _assert_same_answers(promoted, oracle, hi=pushed - 1)

    def test_late_frames_after_promotion_are_refused(self, standbys):
        standby = standbys()
        primary = SessionStore(size=80)
        link = ReplicationLink(standby.address)
        link.attach(primary)
        chunk = _chunks(n=40, chunk=40)[0]
        primary.push("k", chunk)
        standby.promote()
        # A split-brain primary shipping a frame after failover must get
        # a structured refusal, not a silent double apply.
        payload = pack_envelope(
            {"key": "k", "seq": 99}, encode_segments(chunk)
        )
        with Connection(standby.address) as connection:
            with pytest.raises(RemoteError) as excinfo:
                connection.request(KIND_PUSH, payload)
        assert excinfo.value.code == "not_standby"
        assert standby.store.pushed("k") == len(chunk)


# ----------------------------------------------------------------------
# HTTP surface: /role, /healthz lag threshold, standby push refusal
# ----------------------------------------------------------------------
def _get(server, path):
    with urllib.request.urlopen(
        f"http://127.0.0.1:{server.port}{path}"
    ) as response:
        return json.load(response)


class _StuckSink:
    """A registered replica that never acknowledges (lag generator).

    Starts in sync (``acked_seq = 0``, what :meth:`replicate_to` leaves
    behind on an empty store) and then ignores every frame.
    """

    connected = True
    acked_seq = 0

    def on_push(self, key, payload, seq):
        pass

    def on_freeze(self, key, seq):
        pass

    def on_frozen(self, key, payload, seq):
        pass

    def on_catch_up(self, seq):
        pass


class TestReplicationHTTP:
    def test_role_endpoint_reports_replication_state(self):
        store = SessionStore(size=12)
        service = Service(store=store)
        server, _ = start_in_background(service)
        try:
            body = _get(server, "/role")
            assert body == {
                "role": "primary",
                "replicas": 0,
                "replication_lag": 0,
                "last_acked_generation": -1,
            }
        finally:
            server.shutdown()
            server.server_close()

    def test_standby_store_rejects_http_pushes(self):
        service = Service(store=standby_store(size=12))
        server, _ = start_in_background(service)
        try:
            request = urllib.request.Request(
                f"http://127.0.0.1:{server.port}/push/k",
                data=b"[]",
                method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request)
            assert excinfo.value.code == 503
            assert json.load(excinfo.value)["code"] == "not_primary"
        finally:
            server.shutdown()
            server.server_close()

    def test_healthz_degrades_when_lag_exceeds_threshold(self):
        store = SessionStore(size=12)
        store.add_replication_sink(_StuckSink())
        service = Service(store=store, max_replication_lag=0)
        server, _ = start_in_background(service)
        try:
            assert _get(server, "/healthz")["status"] == "ok"
            store.push("k", _chunks(n=40, chunk=40)[0])
            assert store.stats().replication_lag > 0
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(
                    f"http://127.0.0.1:{server.port}/healthz"
                )
            assert excinfo.value.code == 503
            body = json.load(excinfo.value)
            assert body["status"] == "degraded"
            assert "replication lag" in body["error"]
        finally:
            server.shutdown()
            server.server_close()

    def test_healthz_ignores_lag_without_a_threshold(self):
        store = SessionStore(size=12)
        store.add_replication_sink(_StuckSink())
        service = Service(store=store)
        server, _ = start_in_background(service)
        try:
            store.push("k", _chunks(n=40, chunk=40)[0])
            assert store.stats().replication_lag > 0
            assert _get(server, "/healthz")["status"] == "ok"
        finally:
            server.shutdown()
            server.server_close()


# ----------------------------------------------------------------------
# WAL compaction: checkpoint-then-truncate
# ----------------------------------------------------------------------
class TestWalCompaction:
    def test_wal_stays_bounded_by_the_compact_factor(self, tmp_path):
        store = SessionStore(
            size=40, data_dir=tmp_path, wal_compact_factor=1.0
        )
        for chunk in _chunks(n=2000, chunk=100, seed=8):
            store.push("k", chunk)
        # The trigger froze epochs long before 2000 pushes of WAL could
        # pile up, and the live WAL never exceeds factor * reference.
        epochs = store.frozen_epochs("k")
        assert len(epochs) >= 1
        assert store._durability is not None
        live_wal = store._durability.wal_size("k", len(epochs))
        reference = max(
            store._durability.latest_checkpoint_size("k"),
            WAL_COMPACT_FLOOR_BYTES,
        )
        assert live_wal <= reference
        store.close()

    def test_recovery_after_compaction_is_bit_identical(self, tmp_path):
        store = SessionStore(
            size=40, data_dir=tmp_path, wal_compact_factor=1.0
        )
        for chunk in _chunks(n=1000, chunk=100, seed=9):
            store.push("k", chunk)
        assert len(store.frozen_epochs("k")) >= 1  # compaction fired
        before_crash = QueryEngine(store).range_agg("k", 0, 999, "avg")
        del store  # crash without close()
        revived = SessionStore(
            size=40, data_dir=tmp_path, wal_compact_factor=1.0
        )
        after = QueryEngine(revived).range_agg("k", 0, 999, "avg")
        assert after == before_crash
        revived.close()

    def test_compaction_freezes_are_replicated(self, standbys, tmp_path):
        standby = standbys(size=40)
        store = SessionStore(
            size=40, data_dir=tmp_path, wal_compact_factor=1.0
        )
        link = ReplicationLink(standby.address)
        link.attach(store)
        for chunk in _chunks(n=1000, chunk=100, seed=10):
            store.push("k", chunk)
        assert len(store.frozen_epochs("k")) >= 1
        # The standby saw the same compaction freezes, so its epoch
        # structure — and hence every answer — mirrors the primary's.
        assert len(standby.store.frozen_epochs("k")) == len(
            store.frozen_epochs("k")
        )
        _assert_same_answers(standby.promote(), store, hi=999)
        store.close()

    def test_wal_compact_factor_requires_durable_mode(self):
        with pytest.raises(ServiceError, match="data_dir"):
            SessionStore(size=10, wal_compact_factor=2.0)

    def test_wal_compact_factor_must_be_positive(self, tmp_path):
        with pytest.raises(ServiceError, match="positive"):
            SessionStore(
                size=10, data_dir=tmp_path, wal_compact_factor=0.0
            )


# ----------------------------------------------------------------------
# Quorum replication: sync_replicas=k gates the push acknowledgement
# ----------------------------------------------------------------------
class _RecordingSink:
    """An in-process sink that applies and acks every frame it is shipped."""

    def __init__(self):
        self.connected = True
        self.acked_seq = -1
        self.events = []

    def on_push(self, key, payload, seq):
        self.events.append(("push", key, seq))
        self.acked_seq = seq

    def on_freeze(self, key, seq):
        self.events.append(("freeze", key, seq))
        self.acked_seq = seq

    def on_frozen(self, key, payload, seq):
        self.events.append(("frozen", key, seq))
        self.acked_seq = seq

    def on_catch_up(self, seq):
        self.events.append(("catch_up", None, seq))
        self.acked_seq = seq


class _BrokenSink(_RecordingSink):
    """A sink whose apply path blows up (exercises the disconnect arm)."""

    def on_push(self, key, payload, seq):
        raise RuntimeError("standby apply failed")


class TestQuorum:
    def test_sync_replica_acks_gate_every_push(self, standbys):
        standby = standbys()
        primary = SessionStore(size=80, sync_replicas=1)
        link = ReplicationLink(standby.address, auto_resync=False)
        link.attach(primary)
        total = 0
        for chunk in _chunks(n=200, chunk=50):
            primary.push("k", chunk)
            total += len(chunk)
            # The ack the caller got covers the standby: the push is
            # already applied there, not merely queued.
            assert standby.store.pushed("k") == total
        assert primary.stats().replication_lag == 0
        assert "repro_quorum_wait_seconds" in _metrics.render()

    @pytest.mark.slow
    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_randomized_crash_sweep_with_quorum(self, standbys, backend):
        # With sync_replicas=1, every push acked to the client is
        # servable bit-identically from a promoted standby even when
        # the primary dies immediately after the ack — the ack itself
        # certifies the standby applied it.
        policy = ExecutionPolicy(backend=backend)
        for seed in range(4):
            rng = random.Random(3000 + seed)
            standby = standbys(size=60, policy=policy)
            primary = SessionStore(size=60, policy=policy, sync_replicas=1)
            oracle = SessionStore(size=60, policy=policy)
            link = ReplicationLink(standby.address)
            link.attach(primary)
            chunks = _chunks(n=400, seed=seed, chunk=25)
            crash_at = rng.randrange(1, len(chunks) + 1)
            pushed = 0
            for index, chunk in enumerate(chunks):
                if index == crash_at:
                    break  # dies right after the last acked push
                primary.push("k", chunk)
                oracle.push("k", chunk)
                pushed += len(chunk)
                if rng.random() < 0.25:
                    primary.freeze("k")
                    oracle.freeze("k")
            promoted = standby.promote()
            assert promoted.pushed("k") == pushed
            _assert_same_answers(promoted, oracle, hi=pushed - 1)

    def test_sync_replicas_without_sinks_stays_async(self):
        # Bootstrapping: quorum counting starts once replicas attach;
        # a freshly-started primary accepts writes alone.
        primary = SessionStore(size=80, sync_replicas=1)
        chunk = _chunks(n=40, chunk=40)[0]
        primary.push("k", chunk)
        assert primary.pushed("k") == 40

    def test_quorum_failure_rolls_back_without_divergence(self, standbys):
        standby = standbys()
        primary = SessionStore(size=80, sync_replicas=1)
        link = ReplicationLink(standby.address, auto_resync=False)
        link.attach(primary)
        chunks = _chunks(n=120, chunk=40)
        primary.push("k", chunks[0])
        with failpoints.activated(
            {"transport.send": failpoints.Raise(
                OSError(32, "Broken pipe"), times=1)}
        ):
            with pytest.raises(ReplicationError, match="rolled back"):
                primary.push("k", chunks[1])
        # Neither side moved: the primary's memory did not diverge from
        # what its replicas acknowledged.
        assert primary.pushed("k") == 40
        assert standby.store.pushed("k") == 40
        # The store is not wedged — the next push fails the same way
        # (the link is down) without corrupting anything.
        with pytest.raises(ReplicationError):
            primary.push("k", chunks[2])
        assert primary.pushed("k") == 40

    def test_quorum_abort_rolls_back_the_wal(self, standbys, tmp_path):
        standby = standbys()
        primary = SessionStore(
            size=80, sync_replicas=1, data_dir=tmp_path
        )
        link = ReplicationLink(standby.address, auto_resync=False)
        link.attach(primary)
        chunks = _chunks(n=120, chunk=40)
        primary.push("k", chunks[0])
        with failpoints.activated(
            {"transport.send": failpoints.Raise(
                OSError(32, "Broken pipe"), times=1)}
        ):
            with pytest.raises(ReplicationError):
                primary.push("k", chunks[1])
        primary.close()
        # Crash-recover: the aborted push must not resurrect.
        revived = SessionStore(size=80, data_dir=tmp_path)
        assert revived.pushed("k") == 40
        revived.close()

    def test_quorum_larger_than_fleet_is_refused(self, standbys):
        standby = standbys()
        primary = SessionStore(size=80, sync_replicas=2)
        link = ReplicationLink(standby.address, auto_resync=False)
        link.attach(primary)
        with pytest.raises(ReplicationError, match="sync_replicas"):
            primary.push("k", _chunks(n=40, chunk=40)[0])
        # The rollback was complete: the key never existed.
        assert primary.stats().live_sessions == 0
        assert standby.store.stats().live_sessions == 0

    def test_partial_quorum_disconnects_the_diverged_sink(self):
        # One of two sinks applies the push, the other blows up: the
        # quorum of 2 fails, and the sink that *did* apply now holds a
        # sequence number the primary rolled back — it must be cut off
        # and refused at resync (it has diverged).
        store = SessionStore(size=80, sync_replicas=2)
        good, broken = _RecordingSink(), _BrokenSink()
        store.add_replication_sink(good)
        store.add_replication_sink(broken)
        with pytest.raises(ReplicationError, match="1 of the 2"):
            store.push("k", _chunks(n=40, chunk=40)[0])
        assert store.stats().live_sessions == 0  # fully rolled back
        assert not good.connected
        good.connected = True
        with pytest.raises(ServiceError, match="diverged"):
            store.resync(good, applied_seq=good.acked_seq)

    def test_http_push_answers_503_replication_quorum(self, standbys):
        standby = standbys()
        store = SessionStore(size=80, sync_replicas=1)
        link = ReplicationLink(standby.address, auto_resync=False)
        link.attach(store)
        service = Service(store=store)
        server, _ = start_in_background(service)
        try:
            link.connected = False  # the standby "died" mid-stream
            request = urllib.request.Request(
                f"http://127.0.0.1:{server.port}/push/k",
                data=encode_segments(_chunks(n=40, chunk=40)[0]),
                headers={"Content-Type": WIRE_CONTENT_TYPE},
                method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request)
            assert excinfo.value.code == 503
            assert json.load(excinfo.value)["code"] == "replication_quorum"
            assert store.stats().live_sessions == 0  # fully rolled back
        finally:
            server.shutdown()
            server.server_close()

    def test_healthz_and_stats_report_per_sink_lag(self, standbys):
        standby = standbys()
        store = SessionStore(size=80, sync_replicas=1)
        link = ReplicationLink(standby.address, auto_resync=False)
        link.attach(store)
        store.push("k", _chunks(n=40, chunk=40)[0])
        service = Service(store=store)
        server, _ = start_in_background(service)
        try:
            body = _get(server, "/healthz")
            assert body["status"] == "ok"
            (entry,) = body["sinks"]
            assert entry["address"] == standby.address
            assert entry["connected"] == 1
            assert entry["lag"] == 0
            (stat,) = _get(server, "/stats")["sinks"]
            assert stat == entry
        finally:
            server.shutdown()
            server.server_close()


# ----------------------------------------------------------------------
# Resync journal semantics (store level)
# ----------------------------------------------------------------------
class TestResyncJournal:
    def test_resync_replays_exactly_the_gap(self):
        store = SessionStore(size=80)
        sink = _RecordingSink()
        store.add_replication_sink(sink)
        chunks = _chunks(n=240, chunk=40)
        for chunk in chunks[:2]:
            store.push("k", chunk)
        store.freeze("k")
        sink.connected = False  # the standby "crashes"
        frontier = sink.acked_seq
        before = len(sink.events)
        for chunk in chunks[2:]:
            store.push("k", chunk)
        assert len(sink.events) == before  # nothing shipped while down
        sink.connected = True
        store.resync(sink, applied_seq=frontier)
        replayed = [event[-1] for event in sink.events[before:]]
        assert replayed == list(
            range(frontier + 1, store.stats().last_acked_generation + 1)
        )
        # Live streaming resumes after the gap is closed.
        store.push("k", chunks[0])
        assert sink.events[-1][-1] == store.stats().last_acked_generation

    def test_resync_refuses_a_sink_from_the_future(self):
        store = SessionStore(size=80)
        with pytest.raises(ServiceError, match="different primary"):
            store.resync(_RecordingSink(), applied_seq=7)

    def test_resync_window_exhausts_permanently(self):
        store = SessionStore(size=80)
        sink = _RecordingSink()
        store.add_replication_sink(sink)
        for chunk in _chunks(n=240, chunk=40):
            store.push("k", chunk)
        # The journal trimmed everything the (only, fully-acked) sink
        # acknowledged, so a standby claiming an ancient frontier is
        # past the window and must be re-seeded.
        with pytest.raises(ServiceError, match="window exhausted"):
            store.resync(_RecordingSink(), applied_seq=1)

    def test_journal_stays_within_its_byte_budget(self):
        store = SessionStore(size=80, resync_journal_bytes=4096)
        lagger = _RecordingSink()
        lagger.connected = False  # never acks: only the cap trims
        store.add_replication_sink(lagger)
        for chunk in _chunks(n=400, chunk=40):
            store.push("k", chunk)
        assert (
            store._journal_bytes <= 4096 or len(store._journal) == 1
        )
        assert store._journal_floor >= 0

    def test_empty_sink_resyncs_via_full_catch_up(self, tmp_path):
        # applied_seq == -1 (a restarted, empty standby) takes the
        # catch-up path — frozen epochs first, then the live WAL —
        # rather than a journal replay.
        store = SessionStore(size=80, data_dir=tmp_path)
        chunks = _chunks(n=240, chunk=40)
        for chunk in chunks[:3]:
            store.push("k", chunk)
        store.freeze("k")
        for chunk in chunks[3:]:
            store.push("k", chunk)
        sink = _RecordingSink()
        store.resync(sink, applied_seq=-1)
        kinds = [event[0] for event in sink.events]
        assert kinds[0] == "frozen"
        assert kinds.count("frozen") == 1
        assert kinds.count("push") == 3  # the live epoch's WAL frames
        # The sink is registered and streaming resumes live.
        assert store.stats().replicas == 1
        store.push("k", chunks[0])
        assert sink.events[-1][0] == "push"
        store.close()


# ----------------------------------------------------------------------
# Replica auto-resync: the reconnect loop
# ----------------------------------------------------------------------
class TestAutoResync:
    def test_severed_link_reconnects_and_replays_the_gap(self, standbys):
        standby = standbys()
        primary = SessionStore(size=80)
        oracle = SessionStore(size=80)
        link = ReplicationLink(standby.address, reconnect_backoff=0.01)
        link.attach(primary)
        chunks = _chunks()
        for index, chunk in enumerate(chunks):
            if index == 5:  # sever the stream mid-flight
                with failpoints.activated(
                    {"transport.send": failpoints.Raise(
                        OSError(32, "Broken pipe"), times=1)}
                ):
                    primary.push("k", chunk)
            else:
                primary.push("k", chunk)
            oracle.push("k", chunk)
            if index == 8:
                primary.freeze("k")
                oracle.freeze("k")
        # No manual replicate_to: the link heals itself and closes the
        # gap from the resync journal.
        assert _wait_until(
            lambda: link.connected
            and standby.store.pushed("k") == primary.pushed("k")
        )
        assert primary.stats().replicas == 1
        _assert_same_answers(standby.promote(), oracle, hi=599)

    def test_quorum_pushes_resume_after_auto_resync(self, standbys):
        standby = standbys()
        primary = SessionStore(size=80, sync_replicas=1)
        link = ReplicationLink(standby.address, reconnect_backoff=0.01)
        link.attach(primary)
        chunks = _chunks(n=200, chunk=40)
        primary.push("k", chunks[0])
        with failpoints.activated(
            {"transport.send": failpoints.Raise(
                OSError(32, "Broken pipe"), times=1)}
        ):
            with pytest.raises(ReplicationError):
                primary.push("k", chunks[1])
        assert _wait_until(lambda: link.connected)
        for chunk in chunks[1:]:
            primary.push("k", chunk)
        assert primary.pushed("k") == 200
        assert standby.store.pushed("k") == 200

    def test_reconnect_failpoint_stalls_the_loop(self, standbys):
        standby = standbys()
        primary = SessionStore(size=80)
        link = ReplicationLink(standby.address, reconnect_backoff=0.01)
        link.attach(primary)
        chunks = _chunks(n=120, chunk=40)
        primary.push("k", chunks[0])  # the standby applies a frontier
        with failpoints.activated(
            {
                "transport.send": failpoints.Raise(
                    OSError(32, "Broken pipe"), times=1
                ),
                "replica.reconnect": failpoints.Return(True, times=3),
            }
        ):
            primary.push("k", chunks[1])  # severs the link
            assert not link.connected
        # Once the failpoint budget is spent the loop proceeds normally.
        assert _wait_until(lambda: link.connected)
        primary.push("k", chunks[2])
        assert _wait_until(
            lambda: standby.store.pushed("k") == primary.pushed("k")
        )

    def test_link_state_gauge_tracks_the_lifecycle(self, standbys):
        standby = standbys()
        primary = SessionStore(size=80)
        link = ReplicationLink(standby.address, reconnect_backoff=0.01)
        link.attach(primary)
        assert _metrics.value(
            "repro_replica_link_state", peer=standby.address
        ) == LINK_CONNECTED
        link.detach()
        assert _metrics.value(
            "repro_replica_link_state", peer=standby.address
        ) == LINK_DETACHED

    def test_restarted_empty_standby_rejoins_via_catch_up(
        self, standbys, tmp_path
    ):
        primary = SessionStore(size=80, data_dir=tmp_path)
        oracle = SessionStore(size=80)
        standby = standbys()
        port = standby.port
        # A private breaker with a short cooldown: the dials that fail
        # while the replacement standby boots must not gate the test on
        # the shared tracker's 5 s default.
        link = ReplicationLink(
            standby.address,
            reconnect_backoff=0.01,
            health=PeerHealth(cooldown=0.05),
        )
        link.attach(primary)
        chunks = _chunks()
        for chunk in chunks[:6]:
            primary.push("k", chunk)
            oracle.push("k", chunk)
        # "Restart" the standby: kill the server, bring up an *empty*
        # one at the same address.  Its HELLO answers applied_seq=-1,
        # so the reconnect loop re-seeds it with the full history from
        # the primary's WAL.
        standby.shutdown()
        standby.server_close()
        with failpoints.activated(
            {"transport.send": failpoints.Raise(
                OSError(32, "Broken pipe"), times=1)}
        ):
            primary.push("k", chunks[6])  # discovers the dead standby
        oracle.push("k", chunks[6])
        replacement, _ = start_standby(
            standby_store(size=80), port=port
        )
        try:
            for chunk in chunks[7:]:
                primary.push("k", chunk)
                oracle.push("k", chunk)
            assert _wait_until(
                lambda: link.connected
                and replacement.store.pushed("k") == primary.pushed("k")
            )
            _assert_same_answers(replacement.promote(), oracle, hi=599)
        finally:
            replacement.shutdown()
            replacement.server_close()
        primary.close()

    def test_detach_stops_the_reconnect_loop(self, standbys):
        standby = standbys()
        primary = SessionStore(size=80)
        link = ReplicationLink(standby.address, reconnect_backoff=0.01)
        link.attach(primary)
        with failpoints.activated(
            {
                "transport.send": failpoints.Raise(
                    OSError(32, "Broken pipe"), times=1
                ),
                "replica.reconnect": failpoints.Return(True, times=200),
            }
        ):
            primary.push("k", _chunks(n=40, chunk=40)[0])
            link.detach()
        assert _wait_until(lambda: link._reconnector is None)
        assert not link.connected
        assert primary.stats().replicas == 0

    def test_link_heals_repeatedly_across_consecutive_faults(
        self, standbys
    ):
        # Regression: after the reconnect loop healed, its slot must be
        # free *before* the loop thread exits — a ship fault firing the
        # instant streaming resumed used to see the dying thread still
        # registered, skip scheduling, and leave the link down forever.
        standby = standbys()
        primary = SessionStore(size=80)
        link = ReplicationLink(
            standby.address,
            reconnect_backoff=0.01,
            health=PeerHealth(cooldown=0.01),
        )
        link.attach(primary)
        chunks = _chunks(n=240, chunk=40)
        for index, chunk in enumerate(chunks):
            if index in (1, 3):
                with failpoints.activated(
                    {"transport.send": failpoints.Raise(
                        OSError(32, "Broken pipe"), times=1)}
                ):
                    primary.push("k", chunk)
                assert _wait_until(lambda: link.connected)
            else:
                primary.push("k", chunk)
        assert _wait_until(
            lambda: standby.store.pushed("k") == primary.pushed("k")
        )
        assert _wait_until(lambda: link._reconnector is None)


# ----------------------------------------------------------------------
# Catch-up cursor discipline: a severed catch-up must never look done
# ----------------------------------------------------------------------
class _DroppingSink(_RecordingSink):
    """Disconnects itself after applying ``survive`` catch-up pushes."""

    def __init__(self, survive):
        super().__init__()
        self._survive = survive

    def on_push(self, key, payload, seq):
        super().on_push(key, payload, seq)
        self._survive -= 1
        if self._survive <= 0:
            self.connected = False


class TestCatchUpCursor:
    def test_catch_up_streams_sentinels_then_commits_the_frontier(
        self, tmp_path
    ):
        store = SessionStore(size=80, data_dir=tmp_path)
        chunks = _chunks(n=240, chunk=40)
        for chunk in chunks[:3]:
            store.push("k", chunk)
        store.freeze("k")
        for chunk in chunks[3:5]:
            store.push("k", chunk)
        sink = _RecordingSink()
        store.replicate_to(sink)
        *history, end = sink.events
        # Every history frame carries the sentinel — none of them may
        # advance the standby's resume cursor …
        assert history and all(event[-1] == -1 for event in history)
        # … and only the explicit end marker commits the frontier.
        assert end[0] == "catch_up"
        assert end[-1] == sink.acked_seq >= 0
        store.close()

    def test_severed_catch_up_commits_nothing(self, tmp_path):
        store = SessionStore(size=80, data_dir=tmp_path)
        chunks = _chunks(n=240, chunk=40)
        for chunk in chunks[:4]:
            store.push("k", chunk)
        sink = _DroppingSink(survive=2)  # dies mid-stream
        with pytest.raises(ServiceError):
            store.replicate_to(sink)
        assert all(event[0] != "catch_up" for event in sink.events)
        assert store.stats().replicas == 0  # never registered
        store.close()

    def test_half_seeded_standby_reports_taint_and_refuses_attach(
        self, standbys
    ):
        # A catch-up frame (sentinel seq) arrives, then the primary dies
        # before the end marker: the standby must answer HELLO with no
        # frontier plus the seeding taint — not claim the history it
        # only partially holds — and a fresh attach must refuse it.
        standby = standbys()
        payload = encode_segments(_chunks(n=40, chunk=40)[0])
        with Connection(standby.address) as conn:
            kind, _ = conn.request(
                KIND_PUSH, pack_envelope({"key": "k", "seq": -1}, payload)
            )
            assert kind == KIND_ACK
        assert standby.applied_seq == -1  # no false frontier
        assert standby.seeding
        link = ReplicationLink(standby.address, auto_resync=False)
        with pytest.raises(ServiceError, match="half-seeded"):
            link.attach(SessionStore(size=80))

    def test_end_of_catch_up_marker_clears_the_taint(self, standbys):
        standby = standbys()
        payload = encode_segments(_chunks(n=40, chunk=40)[0])
        with Connection(standby.address) as conn:
            conn.request(
                KIND_PUSH, pack_envelope({"key": "k", "seq": -1}, payload)
            )
            kind, _ = conn.request(KIND_CATCHUP, b'{"seq": 5}')
            assert kind == KIND_ACK
        assert standby.applied_seq == 5
        assert not standby.seeding

    def test_reconnect_loop_refuses_a_half_seeded_standby(self, standbys):
        standby = standbys()
        primary = SessionStore(size=80)
        link = ReplicationLink(
            standby.address,
            reconnect_backoff=0.01,
            health=PeerHealth(cooldown=0.01),
        )
        link.attach(primary)
        chunks = _chunks(n=120, chunk=40)
        primary.push("k", chunks[0])
        # Taint the standby as an interrupted catch-up would.
        with standby.apply_lock:
            standby.seeding = True
        with failpoints.activated(
            {"transport.send": failpoints.Raise(
                OSError(32, "Broken pipe"), times=1)}
        ):
            primary.push("k", chunks[1])  # severs the link
        # The loop dials, sees the taint, and gives up permanently
        # (replaying anything onto an unknown prefix would diverge).
        assert _wait_until(lambda: link._reconnector is None)
        assert not link.connected
        assert primary.stats().replicas == 0
        assert _metrics.value(
            "repro_replica_link_state", peer=standby.address
        ) == LINK_DETACHED


# ----------------------------------------------------------------------
# Quorum waits bounded by the end-to-end deadline
# ----------------------------------------------------------------------
class TestQuorumDeadline:
    def test_fan_out_stops_at_the_deadline_between_sinks(self):
        # The first sink's ack wait eats the whole budget: the second
        # sink must never see the sequence number, and the push rolls
        # back as deadline_exceeded instead of waiting on every sink.
        clock = [0.0]

        class _SlowSink(_RecordingSink):
            def on_push(self, key, payload, seq):
                clock[0] += 10.0
                super().on_push(key, payload, seq)

        store = SessionStore(size=80, sync_replicas=2)
        slow, starved = _SlowSink(), _RecordingSink()
        store.add_replication_sink(slow)
        store.add_replication_sink(starved)
        with deadline_scope(
            Deadline(expires_at=1.0, clock=lambda: clock[0])
        ):
            with pytest.raises(DeadlineExceeded):
                store.push("k", _chunks(n=40, chunk=40)[0])
        assert starved.events == []  # never shipped past the deadline
        assert store.stats().live_sessions == 0  # fully rolled back

    def test_ack_wait_is_clamped_to_the_request_deadline(self):
        # A standby that accepts the push frame but never acks must hold
        # the store for at most the deadline's remaining budget — not
        # the full 30 s transport read timeout.
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]
        stall = threading.Event()

        def serve():
            conn, _ = listener.accept()
            try:
                while True:
                    kind, payload = recv_frame(conn)
                    if kind == KIND_HELLO:
                        send_frame(
                            conn,
                            KIND_OK,
                            b'{"applied_seq": -1, "seeding": false}',
                        )
                    elif kind == KIND_CATCHUP:
                        seq = json.loads(payload)["seq"]
                        send_frame(conn, KIND_ACK, b'{"seq": %d}' % seq)
                    else:
                        stall.wait(30.0)  # swallow the push, never ack
                        return
            except OSError:
                pass
            finally:
                conn.close()

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        store = SessionStore(size=80, sync_replicas=1)
        link = ReplicationLink(f"127.0.0.1:{port}", auto_resync=False)
        try:
            link.attach(store)
            t0 = time.monotonic()
            with deadline_scope(0.3):
                with pytest.raises(ReplicationError):
                    store.push("k", _chunks(n=40, chunk=40)[0])
            elapsed = time.monotonic() - t0
            assert elapsed < 5.0  # nowhere near the read timeout
            assert not link.connected  # the stalled standby was cut off
            assert store.stats().live_sessions == 0  # fully rolled back
        finally:
            stall.set()
            link.detach()
            listener.close()
