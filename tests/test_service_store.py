"""SessionStore: keyed sessions, LRU+TTL eviction, freezing semantics.

The acceptance criterion exercised here: eviction never loses pushed
tuples — an evicted session is finalized into a frozen summary that stays
queryable, and the key keeps accepting pushes in a fresh epoch whose
combined snapshot covers everything ever pushed.
"""

from __future__ import annotations

import random

import pytest

from repro import Interval, compress
from repro.api import Compressor, ExecutionPolicy, SizeBudget
from repro.core import AggregateSegment
from repro.service import (
    LRUTTLEviction,
    ServiceError,
    SessionStore,
    StoreStats,
)

BACKENDS = ["python", "numpy"]


def stream_for(key: str, count: int, start: int = 0) -> list[AggregateSegment]:
    rng = random.Random(hash(key) % 2**32)
    time = start
    out = []
    for _ in range(count):
        length = rng.randrange(1, 4)
        out.append(
            AggregateSegment(
                (), (rng.uniform(0.0, 50.0),), Interval(time, time + length - 1)
            )
        )
        time += length
        if rng.random() < 0.15:
            time += rng.randrange(1, 3)
    return out


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ----------------------------------------------------------------------
# Basic store mechanics
# ----------------------------------------------------------------------
class TestStoreBasics:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_push_and_snapshot_match_batch(self, backend):
        store = SessionStore(
            size=8, policy=ExecutionPolicy(backend=backend)
        )
        stream = stream_for("a", 60)
        for segment in stream:
            store.push("a", segment)
        snapshot = store.snapshot("a")
        reference = compress(stream, size=8, backend=backend)
        assert snapshot.segments == reference.segments
        assert snapshot.error == reference.error

    def test_chunk_push_counts(self):
        store = SessionStore(size=5)
        stream = stream_for("k", 30)
        assert store.push("k", stream[:20]) == 20
        assert store.push("k", stream[20]) == 1
        assert store.pushed("k") == 21
        assert store.stats().pushed_segments == 21

    def test_separate_keys_are_independent(self):
        store = SessionStore(size=6)
        a, b = stream_for("a", 40), stream_for("b", 40)
        store.push("a", a)
        store.push("b", b)
        assert store.snapshot("a").segments == compress(a, size=6).segments
        assert store.snapshot("b").segments == compress(b, size=6).segments
        assert sorted(store.keys()) == ["a", "b"]
        assert len(store) == 2

    def test_generation_bumps_on_push_only(self):
        store = SessionStore(size=5)
        store.push("k", stream_for("k", 10))
        first = store.generation("k")
        store.snapshot("k")
        assert store.generation("k") == first  # reads do not invalidate
        store.push("k", stream_for("k", 5, start=1000))
        assert store.generation("k") > first

    def test_unknown_key_raises(self):
        store = SessionStore(size=5)
        with pytest.raises(ServiceError, match="unknown stream key"):
            store.snapshot("nope")
        with pytest.raises(ServiceError, match="unknown stream key"):
            store.generation("nope")

    def test_budget_validation_is_eager(self):
        with pytest.raises(ValueError, match="exactly one"):
            SessionStore()
        with pytest.raises(ValueError, match="exactly one"):
            SessionStore(size=3, max_error=0.5)
        with pytest.raises(ServiceError, match="not both"):
            SessionStore(
                size=3, eviction=LRUTTLEviction(max_sessions=2),
                max_sessions=2,
            )

    def test_failing_session_factory_leaves_no_phantom_key(self):
        def boom(key: str) -> Compressor:
            raise RuntimeError("factory down")

        store = SessionStore(session_factory=boom)
        with pytest.raises(RuntimeError, match="factory down"):
            store.push("k", stream_for("k", 3))
        assert "k" not in store  # no phantom state to crash later reads
        with pytest.raises(ServiceError, match="unknown stream key"):
            store.snapshot("k")

        bad = SessionStore(session_factory=lambda key: object())  # type: ignore[arg-type,return-value]
        with pytest.raises(ServiceError, match="must return a Compressor"):
            bad.push("k", stream_for("k", 3))
        assert "k" not in bad

    def test_session_factory_per_key_budgets(self):
        def factory(key: str) -> Compressor:
            return Compressor(SizeBudget(4 if key == "small" else 16))

        store = SessionStore(session_factory=factory)
        small, large = stream_for("small", 50), stream_for("large", 50)
        store.push("small", small)
        store.push("large", large)
        # Each key got its own budget (gaps may keep size above the bound,
        # exactly as batch compression would).
        assert (
            store.snapshot("small").segments
            == compress(small, size=4).segments
        )
        assert (
            store.snapshot("large").segments
            == compress(large, size=16).segments
        )


# ----------------------------------------------------------------------
# Eviction
# ----------------------------------------------------------------------
class TestEviction:
    def test_lru_evicts_oldest_first_and_freezes(self):
        store = SessionStore(size=5, max_sessions=2)
        store.push("a", stream_for("a", 20))
        store.push("b", stream_for("b", 20))
        store.push("c", stream_for("c", 20))  # evicts "a"
        assert len(store) == 2
        assert not store.is_live("a")
        assert store.is_live("b") and store.is_live("c")
        stats = store.stats()
        assert stats == StoreStats(
            live_sessions=2, frozen_summaries=1,
            pushed_segments=60, evictions=1,
        )
        # The frozen summary is still queryable and loses nothing.
        frozen = store.frozen("a")
        assert len(frozen) == 1
        assert frozen[0].input_size == 20
        assert store.snapshot("a").segments == frozen[0].segments

    def test_lru_order_updated_by_push(self):
        store = SessionStore(size=5, max_sessions=2)
        store.push("a", stream_for("a", 10))
        store.push("b", stream_for("b", 10))
        store.push("a", stream_for("a", 10, start=1000))  # refresh "a"
        store.push("c", stream_for("c", 10))  # evicts "b", not "a"
        assert store.is_live("a") and store.is_live("c")
        assert not store.is_live("b")

    def test_ttl_eviction_with_injected_clock(self):
        clock = FakeClock()
        store = SessionStore(size=5, ttl=10.0, clock=clock)
        store.push("a", stream_for("a", 15))
        clock.advance(5.0)
        store.push("b", stream_for("b", 15))
        clock.advance(6.0)  # "a" idle 11s, "b" idle 6s
        assert store.evict_idle() == ["a"]
        assert not store.is_live("a") and store.is_live("b")
        assert store.stats().evictions == 1

    def test_ttl_runs_on_push_too(self):
        clock = FakeClock()
        store = SessionStore(size=5, ttl=10.0, clock=clock)
        store.push("a", stream_for("a", 15))
        clock.advance(11.0)
        store.push("b", stream_for("b", 15))  # triggers the sweep
        assert not store.is_live("a")

    def test_eviction_never_loses_pushed_tuples(self):
        store = SessionStore(size=6, max_sessions=1)
        stream = stream_for("k", 60)
        store.push("k", stream[:30])
        store.freeze("k")  # manual epoch boundary
        store.push("k", stream[30:])  # new epoch on the same key
        snapshot = store.snapshot("k")
        # Every pushed tuple is accounted for across frozen + live parts.
        assert snapshot.input_size == 60
        assert store.pushed("k") == 60
        covered = sum(segment.length for segment in snapshot.segments)
        assert covered == sum(segment.length for segment in stream)
        # The two epochs individually match batch compression of their part.
        frozen = store.frozen("k")[0]
        assert frozen.segments == compress(stream[:30], size=6).segments
        live_part = snapshot.segments[len(frozen.segments):]
        assert live_part == compress(stream[30:], size=6).segments

    def test_freeze_requires_live_session(self):
        store = SessionStore(size=5)
        store.push("k", stream_for("k", 10))
        store.freeze("k")
        with pytest.raises(ServiceError, match="no live session"):
            store.freeze("k")

    def test_generation_bumps_on_eviction(self):
        store = SessionStore(size=5)
        store.push("k", stream_for("k", 10))
        before = store.generation("k")
        store.freeze("k")
        assert store.generation("k") > before


# ----------------------------------------------------------------------
# The policy object in isolation
# ----------------------------------------------------------------------
class TestLRUTTLPolicy:
    def test_validation(self):
        with pytest.raises(ServiceError, match="max_sessions"):
            LRUTTLEviction(max_sessions=0)
        with pytest.raises(ServiceError, match="ttl"):
            LRUTTLEviction(ttl=0.0)

    def test_ttl_and_lru_compose(self):
        policy = LRUTTLEviction(max_sessions=2, ttl=10.0)
        from collections import OrderedDict

        last_access = OrderedDict(
            [("old", 0.0), ("mid", 50.0), ("new1", 95.0), ("new2", 99.0)]
        )
        # "old" exceeds the TTL at t=100; of the remaining three, the
        # least recently used ("mid") goes to satisfy max_sessions=2.
        assert policy.select(100.0, last_access) == ["old", "mid"]

    def test_disabled_knobs_select_nothing(self):
        from collections import OrderedDict

        policy = LRUTTLEviction()
        assert policy.select(1e9, OrderedDict([("a", 0.0)])) == []
