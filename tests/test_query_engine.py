"""QueryEngine: snapshot queries, caching, and batch bit-identity.

The acceptance criterion (ISSUE 4): for randomized streams on both heap
backends, every ``value_at`` / ``range_agg`` answer served from the live
store is **bit-identical** to computing the same query on the batch
``compress`` output of the same prefix.  Snapshots are bit-identical to
batch summaries (the PR 3 session contract) and the query arithmetic is
shared (:class:`repro.service.SnapshotIndex` on both sides), so equality
is exact, not approximate.

A separate class checks the query arithmetic itself against a naive
per-chronon reference evaluation.
"""

from __future__ import annotations

import random

import pytest

from repro import Interval, compress
from repro.api import ExecutionPolicy
from repro.core import AggregateSegment
from repro.service import (
    QueryEngine,
    ServiceError,
    SessionStore,
    SnapshotIndex,
)

BACKENDS = ["python", "numpy"]


def random_stream(
    count: int,
    seed: int,
    gap_probability: float = 0.15,
    groups: int = 1,
    dimensions: int = 1,
) -> list[AggregateSegment]:
    rng = random.Random(seed)
    stream: list[AggregateSegment] = []
    for g in range(groups):
        group = (f"g{g}",) if groups > 1 else ()
        time = rng.randrange(0, 5)
        for _ in range(count // groups):
            length = rng.randrange(1, 4)
            values = tuple(rng.uniform(0.0, 100.0) for _ in range(dimensions))
            stream.append(
                AggregateSegment(group, values, Interval(time, time + length - 1))
            )
            time += length
            if rng.random() < gap_probability:
                time += rng.randrange(1, 4)
    return stream


def span_of(stream: list[AggregateSegment]) -> tuple[int, int]:
    return (
        min(s.interval.start for s in stream),
        max(s.interval.end for s in stream),
    )


def reference_answers(
    batch_segments: list[AggregateSegment],
    instants: list[int],
    ranges: list[tuple[int, int, str]],
    group=None,
):
    """The same queries, computed on batch compress output."""
    index = SnapshotIndex(batch_segments).resolve(group)
    return (
        [index.value_at(t) for t in instants],
        [index.range_agg(t1, t2, fn) for t1, t2, fn in ranges],
    )


# ----------------------------------------------------------------------
# Acceptance: bit-identity with batch compress on every prefix
# ----------------------------------------------------------------------
class TestBatchBitIdentity:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_size_bounded_prefix_grid(self, backend):
        stream = random_stream(90, seed=21)
        rng = random.Random(121)
        store = SessionStore(size=11, policy=ExecutionPolicy(backend=backend))
        engine = QueryEngine(store)
        for length, segment in enumerate(stream, start=1):
            store.push("k", segment)
            if length % 9 and length != len(stream):
                continue
            prefix = stream[:length]
            lo, hi = span_of(prefix)
            instants = [rng.randrange(lo - 1, hi + 2) for _ in range(8)]
            ranges = []
            for fn in ("avg", "sum", "min", "max"):
                a = rng.randrange(lo - 1, hi + 1)
                b = rng.randrange(a, hi + 2)
                ranges.append((a, b, fn))
            live_values = [engine.value_at("k", t) for t in instants]
            live_ranges = [
                engine.range_agg("k", t1, t2, fn) for t1, t2, fn in ranges
            ]
            batch = compress(prefix, size=11, backend=backend)
            ref_values, ref_ranges = reference_answers(
                batch.segments, instants, ranges
            )
            assert live_values == ref_values  # exact float equality
            assert live_ranges == ref_ranges

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_error_bounded_multi_dimensional(self, backend):
        stream = random_stream(80, seed=22, dimensions=3)
        rng = random.Random(122)
        store = SessionStore(
            max_error=0.4, policy=ExecutionPolicy(backend=backend)
        )
        engine = QueryEngine(store)
        for start in range(0, len(stream), 16):
            store.push("k", stream[start : start + 16])
            prefix = stream[: min(start + 16, len(stream))]
            lo, hi = span_of(prefix)
            instants = [rng.randrange(lo, hi + 1) for _ in range(6)]
            ranges = [
                (lo, hi, "avg"),
                (lo + (hi - lo) // 3, hi - (hi - lo) // 3, "sum"),
            ]
            batch = compress(iter(prefix), max_error=0.4, backend=backend)
            ref_values, ref_ranges = reference_answers(
                batch.segments, instants, ranges
            )
            assert [engine.value_at("k", t) for t in instants] == ref_values
            assert [
                engine.range_agg("k", t1, t2, fn) for t1, t2, fn in ranges
            ] == ref_ranges

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_grouped_stream_with_group_parameter(self, backend):
        stream = random_stream(90, seed=23, groups=3, dimensions=2)
        store = SessionStore(size=15, policy=ExecutionPolicy(backend=backend))
        engine = QueryEngine(store)
        store.push("k", stream)
        batch = compress(stream, size=15, backend=backend)
        for g in range(3):
            group = (f"g{g}",)
            members = [s for s in stream if s.group == group]
            lo, hi = span_of(members)
            ref_values, ref_ranges = reference_answers(
                batch.segments, [lo, (lo + hi) // 2, hi],
                [(lo, hi, "avg")], group=group,
            )
            assert [
                engine.value_at("k", t, group=group)
                for t in (lo, (lo + hi) // 2, hi)
            ] == ref_values
            assert [engine.range_agg("k", lo, hi, "avg", group=group)] \
                == ref_ranges


# ----------------------------------------------------------------------
# Query arithmetic against a naive per-chronon evaluation
# ----------------------------------------------------------------------
class TestQueryCorrectness:
    def build(self, segments):
        store = SessionStore(size=len(segments) + 1)
        store.push("k", segments)
        return QueryEngine(store)

    def test_value_at_gaps_return_none(self):
        engine = self.build(
            [
                AggregateSegment((), (1.0,), Interval(0, 2)),
                AggregateSegment((), (2.0,), Interval(5, 6)),
            ]
        )
        assert engine.value_at("k", 1) == (1.0,)
        assert engine.value_at("k", 3) is None
        assert engine.value_at("k", 4) is None
        assert engine.value_at("k", 5) == (2.0,)
        assert engine.value_at("k", 7) is None
        assert engine.value_at("k", -1) is None

    def test_range_agg_matches_per_chronon_reference(self):
        stream = random_stream(60, seed=24, dimensions=2)
        engine = self.build(stream)
        by_chronon: dict[int, tuple[float, ...]] = {}
        for segment in stream:
            for t in segment.interval:
                by_chronon[t] = segment.values
        lo, hi = span_of(stream)
        rng = random.Random(42)
        for _ in range(25):
            t1 = rng.randrange(lo - 2, hi + 1)
            t2 = rng.randrange(t1, hi + 3)
            covered = [by_chronon[t] for t in range(t1, t2 + 1)
                       if t in by_chronon]
            answer = engine.range_agg("k", t1, t2, "avg")
            if not covered:
                assert answer is None
                continue
            for d in range(2):
                expected = sum(v[d] for v in covered) / len(covered)
                assert answer[d] == pytest.approx(expected, rel=1e-12)
            total = engine.range_agg("k", t1, t2, "sum")
            for d in range(2):
                assert total[d] == pytest.approx(
                    sum(v[d] for v in covered), rel=1e-12
                )
            low = engine.range_agg("k", t1, t2, "min")
            high = engine.range_agg("k", t1, t2, "max")
            for d in range(2):
                assert low[d] == min(v[d] for v in covered)
                assert high[d] == max(v[d] for v in covered)

    def test_partial_boundary_segments_are_clipped(self):
        engine = self.build(
            [
                AggregateSegment((), (10.0,), Interval(0, 9)),
                AggregateSegment((), (20.0,), Interval(10, 19)),
            ]
        )
        # [5, 14]: five chronons at 10.0, five at 20.0.
        assert engine.range_agg("k", 5, 14, "avg") == (15.0,)
        assert engine.range_agg("k", 5, 14, "sum") == (150.0,)

    def test_window_sweep(self):
        engine = self.build(
            [
                AggregateSegment((), (4.0,), Interval(0, 3)),
                AggregateSegment((), (8.0,), Interval(8, 11)),
            ]
        )
        buckets = engine.window("k", 0, 11, 4)
        assert [(b.start, b.end) for b in buckets] == [
            (0, 3), (4, 7), (8, 11),
        ]
        assert buckets[0].values == (4.0,)
        assert buckets[1].values is None  # entirely inside the gap
        assert buckets[2].values == (8.0,)
        # Last bucket clips to t2.
        assert engine.window("k", 0, 9, 4)[-1].end == 9

    def test_validation(self):
        engine = self.build([AggregateSegment((), (1.0,), Interval(0, 0))])
        with pytest.raises(ServiceError, match="fn must be"):
            engine.range_agg("k", 0, 1, "median")
        with pytest.raises(ServiceError, match="empty range"):
            engine.range_agg("k", 5, 4)
        with pytest.raises(ServiceError, match="stride"):
            engine.window("k", 0, 5, 0)

    def test_multi_group_requires_group_argument(self):
        stream = random_stream(40, seed=25, groups=2)
        engine = self.build(stream)
        with pytest.raises(ServiceError, match="aggregation groups"):
            engine.value_at("k", 0)
        with pytest.raises(ServiceError, match="unknown group"):
            engine.value_at("k", 0, group=("nope",))
        assert sorted(engine.groups("k")) == [("g0",), ("g1",)]


# ----------------------------------------------------------------------
# Snapshot cache behaviour
# ----------------------------------------------------------------------
class TestSnapshotCache:
    def test_cache_reused_between_pushes(self):
        store = SessionStore(size=8)
        engine = QueryEngine(store)
        store.push("k", random_stream(30, seed=26))
        engine.value_at("k", 5)
        index_before = engine._index("k")
        engine.range_agg("k", 0, 20)
        assert engine._index("k") is index_before  # same generation, reused

    def test_cache_invalidated_by_push(self):
        store = SessionStore(size=8)
        engine = QueryEngine(store)
        stream = random_stream(40, seed=27, gap_probability=0.0)
        store.push("k", stream[:20])
        before = engine.range_agg("k", *span_of(stream[:20]))
        index_before = engine._index("k")
        store.push("k", stream[20:])
        assert engine._index("k") is not index_before
        after = engine.range_agg("k", *span_of(stream))
        assert engine.cache_info()["k"] == store.generation("k")
        assert before != after  # new data visible

    def test_cache_spans_frozen_epochs(self):
        store = SessionStore(size=6)
        engine = QueryEngine(store)
        stream = random_stream(40, seed=28, gap_probability=0.0)
        store.push("k", stream[:20])
        store.freeze("k")
        store.push("k", stream[20:])
        lo, hi = span_of(stream)
        # Queries see both the frozen epoch and the live one.
        assert engine.value_at("k", lo) is not None
        assert engine.value_at("k", hi) is not None
        assert engine.range_agg("k", lo, hi, "avg") is not None
