"""Parity tests: the NumPy kernel backend against the pure-Python reference.

The ``backend="numpy"`` code paths (:mod:`repro.core.kernels`) implement the
same recurrences with the same floating-point formulae and tie-breaking as
the loop-based reference, so DP and greedy reductions must come out
*identical* — same segments, same error (within floating-point tolerance) —
on the Fig. 1 running example and on randomized inputs.
"""

from __future__ import annotations

import math

import pytest

from repro.core import (
    DELTA_INFINITY,
    MergeHeap,
    NumpyMergeHeap,
    NumpyPrefixSums,
    gms_reduce_to_error,
    gms_reduce_to_size,
    greedy_reduce_to_error,
    greedy_reduce_to_size,
    make_merge_heap,
    max_error,
)
from repro.core.dp import optimal_error_curve, reduce_to_error, reduce_to_size
from repro.core.errors import PrefixSums
from repro.datasets import (
    synthetic_grouped_segments,
    synthetic_sequential_segments,
)

def assert_same_reduction(reference, candidate):
    """Both reductions must agree on structure exactly and on error closely."""
    assert len(reference.segments) == len(candidate.segments)
    for left, right in zip(reference.segments, candidate.segments):
        assert left.group == right.group
        assert left.interval == right.interval
        assert left.values == pytest.approx(right.values, rel=1e-9, abs=1e-9)
    assert candidate.error == pytest.approx(reference.error, rel=1e-9, abs=1e-9)
    assert reference.size == candidate.size


# ----------------------------------------------------------------------
# Prefix sums
# ----------------------------------------------------------------------
class TestNumpyPrefixSums:
    def test_matches_python_prefix_sums(self, proj_segments):
        python = PrefixSums(proj_segments)
        vectorized = NumpyPrefixSums(proj_segments)
        n = len(proj_segments)
        for first in range(n):
            for last in range(first, n):
                assert vectorized.sse(first, last) == pytest.approx(
                    python.sse(first, last)
                )
                assert vectorized.total_length(first, last) == pytest.approx(
                    python.total_length(first, last)
                )
                assert vectorized.merged_values(first, last) == pytest.approx(
                    python.merged_values(first, last)
                )

    def test_batched_run_errors_match_scalar(self, proj_segments):
        vectorized = NumpyPrefixSums(proj_segments)
        n = len(proj_segments)
        for i in range(1, n + 1):
            batch = vectorized.sse_run_batch(0, i)
            assert len(batch) == i
            for j in range(i):
                assert batch[j] == pytest.approx(vectorized.sse(j, i - 1))

    def test_weights_are_applied(self, proj_segments):
        weights = (2.5,)
        python = PrefixSums(proj_segments, weights)
        vectorized = NumpyPrefixSums(proj_segments, weights)
        assert vectorized.sse(0, len(proj_segments) - 1) == pytest.approx(
            python.sse(0, len(proj_segments) - 1)
        )


# ----------------------------------------------------------------------
# DP parity
# ----------------------------------------------------------------------
class TestDPParity:
    def test_running_example_all_sizes(self, proj_segments):
        # cmin = 3 for Fig. 1(c): groups A and B plus the gap inside B.
        for size in range(3, len(proj_segments) + 1):
            reference = reduce_to_size(proj_segments, size)
            candidate = reduce_to_size(proj_segments, size, backend="numpy")
            assert_same_reduction(reference, candidate)

    def test_running_example_error_bounds(self, proj_segments):
        for epsilon in (0.0, 0.1, 0.3, 0.5, 0.8, 1.0):
            reference = reduce_to_error(proj_segments, epsilon)
            candidate = reduce_to_error(proj_segments, epsilon, backend="numpy")
            assert_same_reduction(reference, candidate)

    @pytest.mark.parametrize("optimized", [True, False])
    @pytest.mark.parametrize("seed", [11, 12, 13])
    def test_randomized_sequential(self, seed, optimized):
        segments = synthetic_sequential_segments(120, dimensions=3, seed=seed)
        for size in (5, 17, 60):
            reference = reduce_to_size(segments, size, optimized=optimized)
            candidate = reduce_to_size(
                segments, size, optimized=optimized, backend="numpy"
            )
            assert_same_reduction(reference, candidate)

    @pytest.mark.parametrize("optimized", [True, False])
    @pytest.mark.parametrize("seed", [21, 22, 23])
    def test_randomized_grouped(self, seed, optimized):
        segments = synthetic_grouped_segments(6, 18, dimensions=2, seed=seed)
        for size in (6, 20, 55):
            reference = reduce_to_size(segments, size, optimized=optimized)
            candidate = reduce_to_size(
                segments, size, optimized=optimized, backend="numpy"
            )
            assert_same_reduction(reference, candidate)

    @pytest.mark.parametrize("seed", [31, 32])
    def test_randomized_error_bound(self, seed):
        segments = synthetic_grouped_segments(5, 15, dimensions=2, seed=seed)
        for epsilon in (0.05, 0.4, 0.9):
            reference = reduce_to_error(segments, epsilon)
            candidate = reduce_to_error(segments, epsilon, backend="numpy")
            assert_same_reduction(reference, candidate)

    def test_weighted_reduction(self, proj_segments):
        reference = reduce_to_size(proj_segments, 4, weights=(3.0,))
        candidate = reduce_to_size(
            proj_segments, 4, weights=(3.0,), backend="numpy"
        )
        assert_same_reduction(reference, candidate)

    def test_error_curve_parity(self):
        segments = synthetic_grouped_segments(4, 12, dimensions=2, seed=41)
        reference = optimal_error_curve(segments)
        candidate = optimal_error_curve(segments, backend="numpy")
        assert set(reference) == set(candidate)
        for k in reference:
            if math.isinf(reference[k]):
                assert math.isinf(candidate[k])
            else:
                assert candidate[k] == pytest.approx(reference[k])

    def test_unknown_backend_rejected(self, proj_segments):
        with pytest.raises(ValueError, match="backend"):
            reduce_to_size(proj_segments, 4, backend="fortran")


# ----------------------------------------------------------------------
# Merge heap parity
# ----------------------------------------------------------------------
class TestNumpyMergeHeap:
    def test_factory(self):
        assert isinstance(make_merge_heap(backend="python"), MergeHeap)
        assert isinstance(make_merge_heap(backend="numpy"), NumpyMergeHeap)
        with pytest.raises(ValueError, match="backend"):
            make_merge_heap(backend="jax")

    def test_insert_and_keys_match(self, proj_segments):
        reference = MergeHeap()
        vectorized = NumpyMergeHeap()
        for segment in proj_segments:
            left = reference.insert(segment)
            right = vectorized.insert(segment)
            assert left.id == right.id
            if math.isinf(left.key):
                assert math.isinf(right.key)
            else:
                assert right.key == pytest.approx(left.key)

    def test_insert_batch_matches_sequential(self, proj_segments):
        sequential = NumpyMergeHeap()
        for segment in proj_segments:
            sequential.insert(segment)
        batched = NumpyMergeHeap()
        batched.insert_batch(proj_segments)
        assert len(sequential) == len(batched)
        assert sequential.segments() == batched.segments()
        for left, right in zip(sequential, batched):
            assert left.key == pytest.approx(right.key)

    def test_merge_sequence_matches(self, proj_segments):
        reference = MergeHeap()
        vectorized = NumpyMergeHeap()
        for segment in proj_segments:
            reference.insert(segment)
            vectorized.insert(segment)
        while True:
            top_ref = reference.peek()
            top_vec = vectorized.peek()
            if top_ref is None or math.isinf(top_ref.key):
                assert top_vec is None or math.isinf(top_vec.key)
                break
            assert top_vec.key == pytest.approx(top_ref.key)
            reference.merge_top()
            vectorized.merge_top()
            assert reference.segments() == vectorized.segments()

    def test_adjacent_successor_count(self, proj_segments):
        reference = MergeHeap()
        vectorized = NumpyMergeHeap()
        nodes_ref = [reference.insert(s) for s in proj_segments]
        nodes_vec = [vectorized.insert(s) for s in proj_segments]
        for node_ref, node_vec in zip(nodes_ref, nodes_vec):
            for limit in (1, 2, 5):
                assert vectorized.adjacent_successor_count(
                    node_vec, limit
                ) == reference.adjacent_successor_count(node_ref, limit)


# ----------------------------------------------------------------------
# Greedy parity
# ----------------------------------------------------------------------
class TestGreedyParity:
    @pytest.mark.parametrize("delta", [0, 1, 2, DELTA_INFINITY])
    def test_online_size_bounded(self, proj_segments, delta):
        for size in (2, 3, 4, 6):
            reference = greedy_reduce_to_size(iter(proj_segments), size, delta)
            candidate = greedy_reduce_to_size(
                iter(proj_segments), size, delta, backend="numpy"
            )
            assert_same_reduction(reference, candidate)
            assert reference.max_heap_size == candidate.max_heap_size
            assert reference.merges == candidate.merges

    @pytest.mark.parametrize("seed", [51, 52, 53])
    def test_online_size_bounded_randomized(self, seed):
        segments = synthetic_grouped_segments(7, 14, dimensions=2, seed=seed)
        for delta in (0, 1, DELTA_INFINITY):
            reference = greedy_reduce_to_size(iter(segments), 20, delta)
            candidate = greedy_reduce_to_size(
                iter(segments), 20, delta, backend="numpy"
            )
            assert_same_reduction(reference, candidate)

    @pytest.mark.parametrize("seed", [61, 62])
    def test_online_error_bounded_randomized(self, seed):
        segments = synthetic_sequential_segments(90, dimensions=2, seed=seed)
        emax = max_error(segments)
        for epsilon in (0.1, 0.5, 0.9):
            reference = greedy_reduce_to_error(
                iter(segments), epsilon, 1, None, len(segments), emax
            )
            candidate = greedy_reduce_to_error(
                iter(segments), epsilon, 1, None, len(segments), emax,
                backend="numpy",
            )
            assert_same_reduction(reference, candidate)

    def test_gms_batch_variants(self, proj_segments):
        reference = gms_reduce_to_size(proj_segments, 4)
        candidate = gms_reduce_to_size(proj_segments, 4, backend="numpy")
        assert_same_reduction(reference, candidate)

        reference = gms_reduce_to_error(proj_segments, 0.5)
        candidate = gms_reduce_to_error(proj_segments, 0.5, backend="numpy")
        assert_same_reduction(reference, candidate)

    def test_long_stream_parity_across_compaction(self):
        # More inserts than the heap's initial capacity (1024), small live
        # size: exercises the in-place compaction path repeatedly and must
        # still match the reference backend exactly.
        segments = synthetic_sequential_segments(5000, dimensions=2, seed=81)
        reference = greedy_reduce_to_size(iter(segments), 40, 1)
        candidate = greedy_reduce_to_size(
            iter(segments), 40, 1, backend="numpy"
        )
        assert_same_reduction(reference, candidate)
        assert reference.max_heap_size == candidate.max_heap_size

    def test_stale_node_view_raises_after_compaction(self):
        # A node view held across a compacting insertion must fail loudly
        # instead of silently reading another tuple's data.
        segments = synthetic_sequential_segments(3000, dimensions=1, seed=83)
        heap = NumpyMergeHeap()
        heap.insert(segments[0])
        # The second tuple is merged away early; its slot is later reused.
        early = heap.insert(segments[1])
        for segment in segments[2:]:
            heap.insert(segment)
            while len(heap) > 10:
                top = heap.peek()
                if top is None or math.isinf(top.key):
                    break
                heap.merge_top()
        assert early.id == 2  # the stable id survives
        with pytest.raises(RuntimeError, match="compacted"):
            _ = early.key

    def test_plain_inserts_allowed_after_staged_chunk_and_compaction(self):
        # Regression: a fully consumed staged chunk leaves its staging
        # marker behind; a later compaction renumbers rows below it and the
        # stale marker must not make plain insert() believe tuples are
        # still pending.
        segments = synthetic_sequential_segments(4000, dimensions=1, seed=84)
        heap = NumpyMergeHeap()
        heap.stage_chunk(segments[:256])
        for _ in range(256):
            heap.insert_staged()
        for segment in segments[256:]:
            heap.insert(segment)  # must not raise across compactions
            while len(heap) > 10:
                top = heap.peek()
                if top is None or math.isinf(top.key):
                    break
                heap.merge_top()
        assert len(heap) == 10

    def test_streaming_memory_stays_bounded(self):
        # The array-backed heap must compact dead slots away: after
        # streaming 20k tuples through a c=50 reduction, the allocated
        # capacity must track the live heap size, not the input size.
        segments = synthetic_sequential_segments(20_000, dimensions=1, seed=82)
        heap = NumpyMergeHeap()
        size = 50
        for segment in segments:
            heap.insert(segment)
            while len(heap) > size:
                top = heap.peek()
                if top is None or math.isinf(top.key):
                    break
                heap.merge_top()
        assert len(heap) == size
        assert heap._capacity <= 2048, (
            f"dead slots were never reclaimed: capacity {heap._capacity} "
            f"for {len(heap)} live tuples"
        )

    def test_weighted_greedy(self):
        segments = synthetic_sequential_segments(40, dimensions=2, seed=71)
        weights = (1.0, 4.0)
        reference = greedy_reduce_to_size(iter(segments), 10, 1, weights)
        candidate = greedy_reduce_to_size(
            iter(segments), 10, 1, weights, backend="numpy"
        )
        assert_same_reduction(reference, candidate)
