"""Unit tests for the Interval value type."""

import pytest

from repro import Interval
from repro.temporal import span


class TestConstruction:
    def test_valid_interval(self):
        interval = Interval(3, 7)
        assert interval.start == 3
        assert interval.end == 7

    def test_single_chronon(self):
        assert Interval(5, 5).length == 1

    def test_end_before_start_rejected(self):
        with pytest.raises(ValueError):
            Interval(4, 2)

    def test_non_integer_rejected(self):
        with pytest.raises(TypeError):
            Interval(1.5, 2)

    def test_instant_constructor(self):
        assert Interval.instant(9) == Interval(9, 9)

    def test_negative_chronons_allowed(self):
        assert Interval(-5, -1).length == 5


class TestGeometry:
    def test_length_inclusive(self):
        assert Interval(1, 4).length == 4

    def test_len_dunder(self):
        assert len(Interval(2, 6)) == 5

    def test_contains_chronon(self):
        interval = Interval(2, 4)
        assert 2 in interval
        assert 4 in interval
        assert 5 not in interval

    def test_iteration_yields_all_chronons(self):
        assert list(Interval(3, 6)) == [3, 4, 5, 6]


class TestRelationships:
    def test_overlap_partial(self):
        assert Interval(1, 4).overlaps(Interval(3, 6))

    def test_overlap_touching_endpoint(self):
        assert Interval(1, 4).overlaps(Interval(4, 8))

    def test_disjoint(self):
        assert not Interval(1, 3).overlaps(Interval(5, 8))

    def test_intersect(self):
        assert Interval(1, 5).intersect(Interval(3, 9)) == Interval(3, 5)

    def test_intersect_disjoint_returns_none(self):
        assert Interval(1, 2).intersect(Interval(4, 5)) is None

    def test_meets(self):
        assert Interval(1, 4).meets(Interval(5, 8))
        assert not Interval(1, 4).meets(Interval(6, 8))
        assert not Interval(1, 4).meets(Interval(4, 8))

    def test_precedes(self):
        assert Interval(1, 3).precedes(Interval(4, 6))
        assert not Interval(1, 4).precedes(Interval(4, 6))

    def test_contains_interval(self):
        assert Interval(1, 10).contains_interval(Interval(3, 7))
        assert not Interval(3, 7).contains_interval(Interval(1, 10))

    def test_adjacent_or_overlapping(self):
        assert Interval(1, 2).adjacent_or_overlapping(Interval(3, 4))
        assert Interval(3, 4).adjacent_or_overlapping(Interval(1, 2))
        assert not Interval(1, 2).adjacent_or_overlapping(Interval(4, 5))


class TestUnionAndSplit:
    def test_union_of_meeting_intervals(self):
        assert Interval(1, 2).union(Interval(3, 5)) == Interval(1, 5)

    def test_union_of_overlapping_intervals(self):
        assert Interval(1, 4).union(Interval(2, 9)) == Interval(1, 9)

    def test_union_with_gap_raises(self):
        with pytest.raises(ValueError):
            Interval(1, 2).union(Interval(5, 6))

    def test_split(self):
        left, right = Interval(1, 6).split_at(3)
        assert left == Interval(1, 3)
        assert right == Interval(4, 6)

    def test_split_at_end_raises(self):
        with pytest.raises(ValueError):
            Interval(1, 6).split_at(6)

    def test_span(self):
        assert span([Interval(3, 4), Interval(1, 2), Interval(8, 9)]) == Interval(1, 9)

    def test_span_empty_raises(self):
        with pytest.raises(ValueError):
            span([])


class TestOrdering:
    def test_sorts_by_start_then_end(self):
        intervals = [Interval(3, 9), Interval(1, 5), Interval(1, 2)]
        assert sorted(intervals) == [Interval(1, 2), Interval(1, 5), Interval(3, 9)]

    def test_equality_and_hash(self):
        assert Interval(1, 2) == Interval(1, 2)
        assert len({Interval(1, 2), Interval(1, 2), Interval(1, 3)}) == 2
