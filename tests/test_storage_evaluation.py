"""Unit tests for the storage substrate and the evaluation harness."""

import math

import pytest

from repro import Interval, TemporalRelation
from repro.evaluation import (
    ExperimentLog,
    best_of,
    error_curve_normalized,
    feasible_sizes,
    format_series,
    format_table,
    reduction_ratio,
    relative_error,
    size_for_reduction_ratio,
    speedup,
    summarize_error_ratios,
    timed,
)
from repro.core import merge
from repro.storage import Table, read_relation, write_relation


class TestTable:
    def test_insert_and_scan(self):
        table = Table("t", ["a", "b"])
        table.insert_many([(1, "x"), (2, "y")])
        assert len(table) == 2
        assert list(table.scan(lambda row: row["a"] == 2)) == [{"a": 2, "b": "y"}]

    def test_select_projection(self):
        table = Table("t", ["a", "b", "c"])
        table.insert((1, 2, 3))
        assert table.select(["c", "a"]) == [(3, 1)]

    def test_arity_and_schema_validation(self):
        with pytest.raises(ValueError):
            Table("t", [])
        with pytest.raises(ValueError):
            Table("t", ["a", "a"])
        table = Table("t", ["a"])
        with pytest.raises(ValueError):
            table.insert((1, 2))

    def test_temporal_round_trip(self, proj_relation):
        table = Table.from_temporal_relation("proj", proj_relation)
        assert len(table) == len(proj_relation)
        back = table.to_temporal_relation(
            proj_relation.schema.columns, "t_start", "t_end"
        )
        assert back == proj_relation


class TestCSV:
    def test_round_trip(self, tmp_path, proj_relation):
        path = tmp_path / "proj.csv"
        write_relation(proj_relation, path)
        loaded = read_relation(path, numeric_columns=["sal"])
        assert len(loaded) == len(proj_relation)
        assert loaded[0]["sal"] == 800.0
        assert loaded[0].interval == Interval(1, 4)

    def test_rejects_non_temporal_csv(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(ValueError):
            read_relation(path)

    def test_empty_relation_round_trip(self, tmp_path):
        relation = TemporalRelation.from_records(columns=("x",), records=[])
        path = tmp_path / "empty.csv"
        write_relation(relation, path)
        assert len(read_relation(path)) == 0


class TestMetrics:
    def test_reduction_ratio(self):
        assert reduction_ratio(100, 10) == 90.0
        assert reduction_ratio(100, 100) == 0.0
        with pytest.raises(ValueError):
            reduction_ratio(0, 0)

    def test_size_for_reduction_ratio(self):
        assert size_for_reduction_ratio(100, 90.0) == 10
        assert size_for_reduction_ratio(100, 0.0) == 100
        assert size_for_reduction_ratio(10, 99.9) == 1
        with pytest.raises(ValueError):
            size_for_reduction_ratio(100, 120.0)

    def test_relative_error_bounds(self, proj_segments):
        reduced = [
            merge(proj_segments[0], proj_segments[1]),
            proj_segments[2],
            merge(proj_segments[3], proj_segments[4]),
            proj_segments[5],
            proj_segments[6],
        ]
        value = relative_error(proj_segments, reduced)
        assert 0.0 < value < 100.0
        assert relative_error(proj_segments, proj_segments) == 0.0

    def test_summarize_error_ratios(self):
        summary = summarize_error_ratios([1.0, 1.2, 1.4])
        assert summary.mean_ratio == pytest.approx(1.2)
        assert summary.count == 3
        assert summarize_error_ratios([2.0]).standard_error == 0.0
        assert math.isnan(summarize_error_ratios([]).mean_ratio)

    def test_feasible_sizes(self, proj_segments):
        sizes = feasible_sizes(proj_segments, count=4)
        assert all(3 <= size <= 7 for size in sizes)
        assert sizes == sorted(sizes)

    def test_error_curve_normalized(self):
        points = error_curve_normalized({5: 10.0, 2: 50.0, 1: float("inf")},
                                        input_size=10, maximum_error=100.0)
        assert points == [(50.0, 10.0), (80.0, 50.0)]


class TestRunnerAndReporting:
    def test_timed(self):
        result = timed(sum, [1, 2, 3])
        assert result.value == 6
        assert result.seconds >= 0.0
        assert result.runs == 1
        assert result.mean_seconds == result.seconds

    def test_best_of_reports_variance(self):
        result = best_of(sum, [1, 2, 3], repeats=5)
        assert result.value == 6
        assert result.runs == 5
        assert result.mean_seconds >= result.seconds  # min <= mean
        assert result.spread_seconds >= 0.0

    def test_best_of_rejects_zero_repeats(self):
        with pytest.raises(ValueError, match="repeats"):
            best_of(sum, [1], repeats=0)

    def test_speedup_ratios(self):
        assert speedup(2.0, 1.0) == 2.0
        assert speedup(1.0, 2.0) == 0.5

    def test_speedup_zero_duration_guards(self):
        # Kernels faster than the clock resolution must not divide by zero:
        # zero candidate vs positive baseline is inf, zero vs zero is a
        # neutral 1.0 instead of 0/0.
        assert speedup(1.0, 0.0) == math.inf
        assert speedup(0.0, 1.0) == 0.0
        assert speedup(0.0, 0.0) == 1.0

    def test_experiment_log_table_and_series(self):
        log = ExperimentLog("demo")
        log.record(n=10, algorithm="dp", seconds=0.5)
        log.record(n=20, algorithm="dp", seconds=1.0)
        log.record(n=10, algorithm="greedy", seconds=0.1)
        headers, rows = log.as_table()
        assert headers == ["n", "algorithm", "seconds"]
        assert len(rows) == 3
        series = log.series("n", "seconds", split_by="algorithm")
        assert set(series) == {"dp", "greedy"}
        assert series["dp"] == [(10, 0.5), (20, 1.0)]

    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1.0], ["bb", 123456.0]],
                            title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1]
        assert len(lines) == 5

    def test_format_series(self):
        text = format_series({"s": [(1, 2.0)]}, "x", "y", title="t")
        assert "## series: s" in text
        assert "1\t2.000" in text
