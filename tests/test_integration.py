"""Integration tests: full pipelines across substrate, core and baselines."""

import numpy as np
import pytest

from repro import ita, iter_ita, pta, reduce_ita
from repro.baselines import atc, paa, series_from_segments
from repro.core import (
    AggregateSegment,
    cmin,
    gms_reduce_to_size,
    greedy_reduce_to_size,
    max_error,
    reduce_to_size,
    segments_from_relation,
    sse_between,
)
from repro.datasets import (
    generate_etds,
    generate_incumbents,
    synthetic_relation,
    table1_catalogue,
    value_columns,
)
from repro.evaluation import reduction_ratio, relative_error
from repro.storage import Table, read_relation, write_relation


@pytest.fixture(scope="module")
def catalogue():
    return table1_catalogue("tiny")


class TestEndToEndPipelines:
    def test_etds_pipeline_dp_vs_greedy(self):
        relation = generate_etds(employees=80, months=72, seed=21)
        aggregates = {"avg_salary": ("avg", "salary")}
        ita_result = ita(relation, [], aggregates)
        segments = segments_from_relation(ita_result, [], ["avg_salary"])
        size = max(len(segments) // 10, cmin(segments))
        optimal = reduce_to_size(segments, size)
        greedy = gms_reduce_to_size(segments, size)
        assert optimal.size == size
        assert optimal.error <= greedy.error + 1e-9
        assert reduction_ratio(len(segments), size) > 80.0

    def test_incumbents_pipeline_with_groups(self):
        relation = generate_incumbents(
            departments=4, projects_per_department=3,
            incumbents_per_project=5, months=150, seed=3,
        )
        aggregates = {"avg_salary": ("avg", "salary")}
        result = pta(relation, ["dept", "proj"], aggregates, size=None,
                     error=0.1)
        ita_result = ita(relation, ["dept", "proj"], aggregates)
        assert len(result) <= len(ita_result)
        original = segments_from_relation(
            ita_result, ["dept", "proj"], ["avg_salary"]
        )
        reduced = segments_from_relation(
            result, ["dept", "proj"], ["avg_salary"]
        )
        assert sse_between(original, reduced) <= 0.1 * max_error(original) + 1e-6

    def test_streaming_greedy_matches_batch_greedy_on_etds(self):
        relation = generate_etds(employees=60, months=60, seed=5)
        aggregates = {"avg_salary": ("avg", "salary")}
        ita_result = ita(relation, ["dept"], aggregates)
        segments = segments_from_relation(ita_result, ["dept"], ["avg_salary"])
        size = max(cmin(segments), len(segments) // 4)

        stream = (
            AggregateSegment(group, values, interval)
            for group, values, interval in iter_ita(relation, ["dept"], aggregates)
        )
        online = greedy_reduce_to_size(stream, size, delta=1)
        batch = gms_reduce_to_size(segments, size)
        # With a small read-ahead the online result stays close to batch GMS.
        if batch.error > 0:
            assert online.error <= batch.error * 1.5
        assert online.input_size == len(segments)

    def test_catalogue_queries_reduce_cleanly(self, catalogue):
        for case in catalogue.values():
            size = max(case.cmin, case.ita_size // 5)
            result = reduce_to_size(case.segments, size)
            assert result.size == size
            assert 0.0 <= relative_error(case.segments, result.segments) <= 100.0

    def test_baselines_against_pta_on_t1(self, catalogue):
        case = catalogue["T1"]
        series = series_from_segments(case.segments)
        size = 15
        optimal = reduce_to_size(case.segments, size)
        assert optimal.error <= paa(np.asarray(series), size).error + 1e-9

    def test_atc_runs_on_grouped_query(self, catalogue):
        case = catalogue["I1"]
        bound = max_error(case.segments) / len(case.segments)
        result = atc(case.segments, bound)
        assert case.cmin <= result.size <= case.ita_size

    def test_persistence_round_trip_through_storage(self, tmp_path):
        relation = synthetic_relation(120, dimensions=1, groups=3, seed=8)
        aggregates = {"m": ("avg", "v0")}
        summary = pta(relation, ["grp"], aggregates, size=None, error=0.2)

        path = tmp_path / "summary.csv"
        write_relation(summary, path)
        loaded = read_relation(path, numeric_columns=["m"])
        assert len(loaded) == len(summary)

        table = Table.from_temporal_relation("summary", summary)
        assert len(table) == len(summary)

    def test_reduce_ita_on_multichannel_series(self, catalogue):
        case = catalogue["T3"]
        from repro.core import segments_to_relation

        relation = segments_to_relation(
            case.segments, case.group_columns, case.value_columns
        )
        reduced = reduce_ita(
            relation, case.group_columns, case.value_columns,
            size=max(case.cmin, 10),
        )
        assert len(reduced) == max(case.cmin, 10)

    def test_pta_greedy_and_dp_agree_on_reduction_quality(self):
        relation = synthetic_relation(300, dimensions=2, groups=4, seed=13)
        aggregates = {name: ("avg", name) for name in value_columns(2)}
        ita_result = ita(relation, ["grp"], aggregates)
        original = segments_from_relation(
            ita_result, ["grp"], list(aggregates)
        )
        size = cmin(original) + 10
        dp_result = pta(relation, ["grp"], aggregates, size=size)
        greedy_result = pta(relation, ["grp"], aggregates, size=size,
                            method="greedy")
        dp_segments = segments_from_relation(dp_result, ["grp"], list(aggregates))
        greedy_segments = segments_from_relation(
            greedy_result, ["grp"], list(aggregates)
        )
        assert sse_between(original, dp_segments) <= sse_between(
            original, greedy_segments
        ) + 1e-9
