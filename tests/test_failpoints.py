"""The failpoint framework itself: arming, budgets, seeds, propagation.

The fault-injection suites (``test_fault_injection.py``,
``test_chaos.py``) lean entirely on these semantics, so they are pinned
here first: zero-cost when disabled, deterministic under a seed, bounded
by ``times=``, owner-safe for :class:`Exit`, and re-armable from the
environment in spawned children.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time

import pytest

from repro.util import failpoints
from repro.util.failpoints import (
    Delay,
    ENV_VAR,
    Exit,
    FailpointError,
    Raise,
    Return,
    activated,
)


class TestDisabled:
    def test_fail_is_a_noop_without_activation(self):
        assert not failpoints.is_active()
        assert failpoints.fail("anything.at.all") is None

    def test_counters_read_zero_without_activation(self):
        assert failpoints.evaluations("x") == 0
        assert failpoints.firings("x") == 0

    def test_unarmed_site_inside_activation_is_a_noop(self):
        with activated({"a": Raise()}):
            assert failpoints.fail("b") is None
            assert failpoints.evaluations("b") == 1
            assert failpoints.firings("b") == 0


class TestActions:
    def test_raise_defaults_to_failpoint_error_naming_the_site(self):
        with activated({"s": Raise()}):
            with pytest.raises(FailpointError, match="'s'"):
                failpoints.fail("s")

    def test_raise_rethrows_the_given_instance(self):
        error = OSError(28, "No space left on device")
        with activated({"s": Raise(error)}):
            with pytest.raises(OSError) as excinfo:
                failpoints.fail("s")
            assert excinfo.value is error

    def test_raise_calls_a_factory_per_firing(self):
        with activated({"s": Raise(lambda: OSError(5, "I/O error"))}):
            first = pytest.raises(OSError, failpoints.fail, "s")
            second = pytest.raises(OSError, failpoints.fail, "s")
            assert first.value is not second.value

    def test_return_hands_back_the_injected_value(self):
        with activated({"s": Return({"injected": True})}):
            assert failpoints.fail("s") == {"injected": True}

    def test_delay_sleeps_roughly_the_requested_time(self):
        with activated({"s": Delay(0.05)}):
            begin = time.monotonic()
            failpoints.fail("s")
            assert time.monotonic() - begin >= 0.04

    def test_exit_never_fires_in_the_owner_process(self):
        with activated({"s": Exit(code=7)}):
            assert failpoints.fail("s") is None  # still alive
            assert failpoints.firings("s") == 0


class TestBudgetsAndSeeds:
    def test_times_caps_firings(self):
        with activated({"s": Raise(times=2)}):
            for _ in range(2):
                with pytest.raises(FailpointError):
                    failpoints.fail("s")
            assert failpoints.fail("s") is None  # budget spent → heal
            assert failpoints.firings("s") == 2
            assert failpoints.evaluations("s") == 3

    def test_times_zero_never_fires(self):
        with activated({"s": Raise(times=0)}):
            assert failpoints.fail("s") is None

    def test_probability_draws_are_a_pure_function_of_the_seed(self):
        def schedule(seed: int) -> list[bool]:
            fired = []
            with activated({"s": Raise(probability=0.5)}, seed=seed):
                for _ in range(32):
                    try:
                        failpoints.fail("s")
                        fired.append(False)
                    except FailpointError:
                        fired.append(True)
            return fired

        assert schedule(7) == schedule(7)
        assert schedule(7) != schedule(8)
        assert any(schedule(7)) and not all(schedule(7))

    def test_nested_activation_is_refused(self):
        with activated({"s": Raise()}):
            with pytest.raises(RuntimeError, match="already active"):
                with activated({"t": Raise()}):
                    pass  # pragma: no cover

    def test_activation_is_disarmed_on_exit_even_after_errors(self):
        with pytest.raises(ZeroDivisionError):
            with activated({"s": Raise()}):
                1 / 0
        assert not failpoints.is_active()
        assert failpoints.fail("s") is None

    def test_invalid_parameters_are_rejected(self):
        with pytest.raises(ValueError):
            Raise(probability=1.5)
        with pytest.raises(ValueError):
            Raise(times=-1)
        with pytest.raises(ValueError):
            Delay(-0.1)
        with pytest.raises(ValueError):
            Exit(limit=-1)


class TestPropagation:
    def test_propagate_mirrors_and_restores_the_environment(self):
        assert os.environ.get(ENV_VAR) is None
        with activated(
            {"s": Raise(OSError(28, "No space left on device"), times=3)},
            seed=5,
            propagate=True,
        ):
            payload = json.loads(os.environ[ENV_VAR])
            assert payload["owner_pid"] == os.getpid()
            assert payload["seed"] == 5
            assert payload["sites"]["s"]["mode"] == "raise"
            assert payload["sites"]["s"]["exception"] == "OSError"
        assert os.environ.get(ENV_VAR) is None

    def test_non_builtin_exceptions_refuse_to_propagate(self):
        class Custom(Exception):
            pass

        with pytest.raises(NotImplementedError):
            with activated({"s": Raise(Custom())}, propagate=True):
                pass  # pragma: no cover

    def test_spawned_child_rearms_from_the_environment(self):
        """A fresh interpreter with ENV_VAR set fires the armed site."""
        spec = json.dumps(
            {
                "owner_pid": 999999999,  # not us: the child must re-arm
                "seed": 0,
                "sites": {
                    "child.site": {
                        "mode": "raise",
                        "probability": 1.0,
                        "times": None,
                        "exception": "OSError",
                        "args": [28, "No space left on device"],
                    }
                },
            }
        )
        env = dict(os.environ)
        env[ENV_VAR] = spec
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, ["src", env.get("PYTHONPATH")])
        )
        code = (
            "from repro.util import failpoints\n"
            "assert failpoints.is_active()\n"
            "try:\n"
            "    failpoints.fail('child.site')\n"
            "except OSError as error:\n"
            "    print('fired', error.errno)\n"
        )
        done = subprocess.run(
            [sys.executable, "-c", code],
            env=env,
            capture_output=True,
            text=True,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        assert done.returncode == 0, done.stderr
        assert "fired 28" in done.stdout

    def test_owner_process_ignores_its_own_environment_spec(self):
        """_activate_from_env is a no-op when the pid matches the owner."""
        raw = json.dumps(
            {"owner_pid": os.getpid(), "seed": 0, "sites": {}}
        )
        os.environ[ENV_VAR] = raw
        try:
            failpoints._activate_from_env()
            assert not failpoints.is_active()
        finally:
            os.environ.pop(ENV_VAR, None)

    def test_malformed_environment_spec_never_raises(self):
        os.environ[ENV_VAR] = "{not json"
        try:
            failpoints._activate_from_env()
            assert not failpoints.is_active()
        finally:
            os.environ.pop(ENV_VAR, None)
